//! # MAGIK-rs — Complete Approximations of Incomplete Queries
//!
//! A from-scratch Rust implementation of the system described in
//! *Complete Approximations of Incomplete Queries* (Corman, Nutt,
//! Savković; the MAGIK demo appeared in PVLDB 6(12), VLDB 2013).
//!
//! Databases are often *partially complete*: the available state misses
//! facts of the (unknown) ideal state. **Table-completeness statements**
//! declare which parts are guaranteed complete. Given such statements and
//! a conjunctive query, this library answers three questions:
//!
//! 1. **Is the query complete?** — every ideal answer is available
//!    ([`is_complete`]).
//! 2. If not, **what is its best complete generalization?** — the
//!    *minimal complete generalization* (MCG), unique up to equivalence
//!    ([`mcg`]).
//! 3. And **what are its best complete specializations?** — the *maximal
//!    complete specializations* within a bounded size (k-MCS,
//!    [`k_mcs`]), via *maximal complete instantiations* ([`mcis`]).
//!
//! # Crate map
//!
//! | module (re-export of) | contents |
//! |---|---|
//! | [`relalg`] | terms, atoms, queries, instances, copy-on-write snapshots, evaluation, containment, minimization |
//! | [`runtime`] | shared work-stealing thread pool: panic-isolated workers, fork-join helpers |
//! | [`exec`] | compiled query-execution layer: plan IR, compiled queries/rule bodies, plan cache, pluggable executor, explain output |
//! | [`unify`] | unification, MGUs, renaming apart |
//! | [`datalog`] | forward-chaining Datalog engine (naive + semi-naive) |
//! | [`prolog`] | SLD resolution engine over compound terms |
//! | [`completeness`] | TCSs, `T_C`/`G_C`, completeness check, MCG, MCI, k-MCS; finite-domain + key constraints, answering with guarantees, explanations, lints; certificate emission |
//! | [`cert`] | trusted certificate checker: validates completeness verdicts, repairs and derivation trees by direct definition-checking, sharing no reasoning code with the engine |
//! | [`parser`] | text syntax for queries, statements and facts, with byte-span tracking |
//! | [`analyze`] | span-aware static analysis: `M0xx` diagnostics over statements, queries, facts and the Datalog encoding |
//! | [`server`] | concurrent completeness service: session engine, verdict cache, TCP front end, optional durability |
//! | [`storage`] | write-ahead log + snapshot checkpoints: CRC-framed segments, atomic checkpoint images, crash recovery |
//! | [`workload`] | paper workloads, synthetic data, random generators |
//!
//! The most common items are re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use magik::{parse_document, is_complete, mcg, k_mcs, KMcsOptions, DisplayWith, Vocabulary};
//!
//! let mut vocab = Vocabulary::new();
//! let doc = parse_document(
//!     "compl school(S, primary, D) ; true.
//!      compl pupil(N, C, S) ; school(S, T, merano).
//!      compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).
//!      query q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).",
//!     &mut vocab,
//! ).unwrap();
//!
//! let q = &doc.queries[0];
//! assert!(!is_complete(q, &doc.tcs));
//!
//! // Best complete query from above: drop the learns atom.
//! let general = mcg(q, &doc.tcs).unwrap();
//! assert_eq!(general.display(&vocab).to_string(),
//!            "q(N) :- pupil(N, C, S), school(S, primary, merano)");
//!
//! // Best complete query from below: restrict to English learners.
//! let special = k_mcs(q, &doc.tcs, &mut vocab, KMcsOptions::new(0));
//! assert_eq!(special.queries.len(), 1);
//! assert_eq!(special.queries[0].display(&vocab).to_string(),
//!            "q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, english)");
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use magik_analyze as analyze;
pub use magik_cert as cert;
pub use magik_completeness as completeness;
pub use magik_datalog as datalog;
pub use magik_exec as exec;
pub use magik_parser as parser;
pub use magik_prolog as prolog;
pub use magik_relalg as relalg;
pub use magik_runtime as runtime;
pub use magik_server as server;
pub use magik_storage as storage;
pub use magik_unify as unify;
pub use magik_workload as workload;

pub use magik_analyze::{
    allow_directives, analyze_check, analyze_document, analyze_state, apply_edits, explain_code,
    filter_suppressed, fix_source, render_json, render_report, render_sarif, severity_profile,
    summary_line, AllowDirective, Applicability, Baseline, Code, Diagnostic, Fingerprint,
    FixReport, SarifFile, Severity, SourceFile, Suggestion, CATALOGUE,
};
pub use magik_cert::{
    check_certificate, check_complete, check_derivation, check_incomplete, check_repair, CertError,
    CertRule, CertStatement, Certificate, CompleteCert, DerivationNode, FactDerivation,
    IncompleteCert, RepairCert,
};
pub use magik_completeness::{
    answering, cert_statements, certify, chase_query, classify_answers, complete_unifiers,
    constraints, count_bounds, counterexample, explain, explain_check, g_op, is_complete,
    is_complete_under, is_complete_via_datalog, is_instantiation_of, is_mcg, is_mci, k_mcs,
    k_mcs_certified, k_mcs_on, lint, mcg, mcg_certified, mcg_under, mcg_with_stats, mcis,
    mcis_bounded, publishable_counts, render_counterexample, render_explanation,
    render_explanation_with_locations, repair_suggestions, semantics, tc_apply, tc_apply_datalog,
    tc_encoding, AnswerReport, CanonTerm, CanonicalQuery, ChaseOutcome, CheckExplanation,
    ConstraintSet, CountBounds, FiniteDomain, GuaranteeWitness, KMcsEngine, KMcsOptions,
    KMcsOutcome, KMcsStats, Key, KeyViolation, Lint, McgStats, PublishableCount, TcSet,
    TcStatement,
};
pub use magik_datalog::{
    DerivationTree, Justification, MaterializeError, Materialized, Provenance, RetractStats,
};
pub use magik_exec::{
    available_parallelism, explain_json, explain_text, CompiledBody, CompiledQuery, ExecStats,
    Executor, Plan, PlanCache, PoolCounters, ThreadPool,
};
pub use magik_parser::{
    parse_atom, parse_document, parse_instance, parse_query, parse_rules, parse_tcs,
    print_document, print_domain, print_instance, print_key, print_query, print_tcs, Document,
    LineIndex, ParseError,
};
pub use magik_relalg::{
    answers, are_equivalent, canonical_database, has_answer, has_answer_witness, is_contained_in,
    is_strictly_contained_in, minimize, Atom, Cst, DisplayWith, Fact, Instance, Pred, Query,
    Snapshot, StoreView, Substitution, Term, Var, Vocabulary, Witness, WitnessStep,
};
pub use magik_server::{
    initial_sync, run_replica, DurabilityOptions, Engine, RecoveryReport, ReplicaStatus, Server,
    ServerConfig,
};
pub use magik_storage::{
    CheckpointImage, FsyncPolicy, StorageError, Store, StoreOptions, WalRecord,
};
