# Build stage: compile the CLI (which bundles the server, the replica
# front end, and every offline tool) with the release profile.
FROM rust:1-slim AS builder
WORKDIR /build
COPY Cargo.toml Cargo.lock ./
COPY src ./src
COPY crates ./crates
COPY vendor ./vendor
COPY examples ./examples
COPY tests ./tests
COPY testdata ./testdata
RUN cargo build --release -p magik-cli

# Runtime stage: just the static-ish binary on a slim base. The data
# directory is a volume so WAL segments and checkpoints outlive the
# container; `docker-compose.yml` wires a primary and two replicas.
FROM debian:stable-slim
COPY --from=builder /build/target/release/magik /usr/local/bin/magik
RUN useradd --system --home /data magik && mkdir -p /data && chown magik /data
USER magik
VOLUME /data
EXPOSE 7171 7172
ENTRYPOINT ["magik"]
CMD ["serve", "--addr", "0.0.0.0:7171", "--data-dir", "/data"]
