#!/usr/bin/env bash
# Source hygiene: every crate root must forbid unsafe code and deny
# missing docs. Run from the repository root; exits non-zero listing
# the offending files.
set -u

fail=0
roots=(src/lib.rs crates/*/src/lib.rs crates/*/src/main.rs vendor/*/src/lib.rs)

for root in "${roots[@]}"; do
  [ -f "$root" ] || continue
  if [ "$root" = "crates/runtime/src/lib.rs" ]; then
    # magik-runtime is the one crate allowed unsafe code — the epoll
    # backend of its poller module — so its root denies (not forbids)
    # unsafe_code and the exception is policed below.
    if ! grep -q '^#!\[deny(unsafe_code)\]$' "$root"; then
      echo "hygiene: $root is missing #![deny(unsafe_code)]" >&2
      fail=1
    fi
  elif ! grep -q '^#!\[forbid(unsafe_code)\]$' "$root"; then
    echo "hygiene: $root is missing #![forbid(unsafe_code)]" >&2
    fail=1
  fi
  if ! grep -q '^#!\[deny(missing_docs)\]$' "$root"; then
    echo "hygiene: $root is missing #![deny(missing_docs)]" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "hygiene: add the attributes at the crate root (see DESIGN.md)" >&2
  exit 1
fi

# Unsafe confinement: the only `unsafe` in the workspace is the epoll
# backend of `magik-runtime`'s poller (raw syscall declarations a
# std-only event loop cannot avoid). Anywhere else it is a regression.
unsafe_leaks=$(grep -rln 'unsafe \(fn\|impl\|extern\)\|unsafe {' crates src vendor --include='*.rs' 2>/dev/null \
  | grep -v '^crates/runtime/src/poller.rs$' || true)
if [ -n "$unsafe_leaks" ]; then
  echo "hygiene: unsafe code outside crates/runtime/src/poller.rs:" >&2
  echo "$unsafe_leaks" >&2
  exit 1
fi
if ! grep -q '^#\[allow(unsafe_code)\]$' crates/runtime/src/poller.rs; then
  echo "hygiene: poller.rs must scope its unsafe allowance to the epoll backend" >&2
  exit 1
fi

# Durability boundary: the fsync primitives (`sync_all`/`sync_data`)
# must live only inside magik-storage. Everything above it — server,
# CLI, benches — goes through `Store`, so the WAL/checkpoint ordering
# invariants (data before rename, rename before directory) cannot be
# bypassed.
leaks=$(grep -rln 'sync_all\|sync_data' crates --include='*.rs' | grep -v '^crates/storage/' || true)
if [ -n "$leaks" ]; then
  echo "hygiene: fsync primitives outside crates/storage:" >&2
  echo "$leaks" >&2
  exit 1
fi

# Diagnostic catalogue: every stable M0xx code defined in diag.rs must
# have a `### M0xx` entry in ANALYSES.md, so `magik analyze --explain`
# always has something to print and the docs cannot silently lag the
# analyzer.
missing=""
for code in $(grep -o '=> "M0[0-9][0-9]"' crates/analyze/src/diag.rs | grep -o 'M0[0-9][0-9]' | sort -u); do
  if ! grep -q "^### $code " ANALYSES.md; then
    missing="$missing $code"
  fi
done
if [ -n "$missing" ]; then
  echo "hygiene: diagnostic codes without an ANALYSES.md entry:$missing" >&2
  exit 1
fi

# Trusted-checker boundary: magik-cert audits the engine's certificates
# by direct definition-checking, so it must share zero reasoning code
# with the crates it audits. Only the shared data model (magik-relalg)
# is allowed; a dep edge on completeness/datalog/exec would let an
# engine bug validate itself.
forbidden=$(grep -En '^(magik-completeness|magik-datalog|magik-exec)[ ".=]' crates/cert/Cargo.toml || true)
if [ -n "$forbidden" ]; then
  echo "hygiene: crates/cert/Cargo.toml depends on an engine crate:" >&2
  echo "$forbidden" >&2
  exit 1
fi

echo "hygiene: all crate roots forbid unsafe_code and deny missing_docs"
echo "hygiene: unsafe code is confined to the runtime poller's epoll backend"
echo "hygiene: fsync primitives are confined to crates/storage"
echo "hygiene: every M0xx code is catalogued in ANALYSES.md"
echo "hygiene: magik-cert has no dependency on the engine crates"
