#!/usr/bin/env bash
# Source hygiene: every crate root must forbid unsafe code and deny
# missing docs. Run from the repository root; exits non-zero listing
# the offending files.
set -u

fail=0
roots=(src/lib.rs crates/*/src/lib.rs crates/*/src/main.rs vendor/*/src/lib.rs)

for root in "${roots[@]}"; do
  [ -f "$root" ] || continue
  if ! grep -q '^#!\[forbid(unsafe_code)\]$' "$root"; then
    echo "hygiene: $root is missing #![forbid(unsafe_code)]" >&2
    fail=1
  fi
  if ! grep -q '^#!\[deny(missing_docs)\]$' "$root"; then
    echo "hygiene: $root is missing #![deny(missing_docs)]" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "hygiene: add the attributes at the crate root (see DESIGN.md)" >&2
  exit 1
fi
echo "hygiene: all crate roots forbid unsafe_code and deny missing_docs"
