//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *minimal* API surface it actually uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over integer `Range`/`RangeInclusive`
//! * [`Rng::gen_bool`]
//!
//! The generator is SplitMix64 (Steele, Lea, Flood 2014): tiny, fast,
//! passes BigCrush when used as a 64-bit stream, and more than adequate
//! for deterministic workload generation. It is **not** the same stream
//! as the real `rand::StdRng` (ChaCha12), so seeds produce different —
//! but equally deterministic — workloads.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high-quality bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; same trait surface, different
    /// (but fixed) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u8);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0..=0usize);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        // A fair coin lands on both sides within 1000 tosses.
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(heads > 300 && heads < 700);
    }
}
