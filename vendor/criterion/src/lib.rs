//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API surface its benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_with_input, finish}`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `Throughput`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Instead of criterion's statistical machinery this harness measures the
//! median of a handful of timed samples, each auto-sized to run for a few
//! milliseconds, and prints one line per benchmark:
//!
//! ```text
//! group/function/param    median 12.345 µs  (7 samples x 210 iters)  421.3 Kelem/s
//! ```
//!
//! When the binary is invoked with `--test` (as `cargo test --benches`
//! does) every benchmark body runs exactly once, unmeasured, so CI can
//! smoke-test benches cheaply.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; ignored by this harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times one benchmark body.
pub struct Bencher<'a> {
    mode: Mode,
    /// Median duration of one iteration, filled by `iter`/`iter_batched`.
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    per_iter: Duration,
    samples: usize,
    iters: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run once, no measurement (`--test`).
    Test,
    /// Measure.
    Measure { samples: usize },
}

const TARGET_SAMPLE: Duration = Duration::from_millis(20);

impl Bencher<'_> {
    /// Measures `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Measures `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let samples = match self.mode {
            Mode::Test => {
                let input = setup();
                black_box(routine(input));
                *self.result = None;
                return;
            }
            Mode::Measure { samples } => samples,
        };
        // Size the iteration count so one sample takes ~TARGET_SAMPLE.
        let probe_input = setup();
        let probe_start = Instant::now();
        black_box(routine(probe_input));
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let iters = (TARGET_SAMPLE.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;

        let mut timings: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            timings.push(start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
        }
        timings.sort();
        *self.result = Some(Sample {
            per_iter: timings[timings.len() / 2],
            samples,
            iters,
        });
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut result = None;
        let mut b = Bencher {
            mode: if self.criterion.test_mode {
                Mode::Test
            } else {
                Mode::Measure {
                    samples: self.sample_size,
                }
            },
            result: &mut result,
        };
        f(&mut b, input);
        report(&full, result, self.throughput);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(BenchmarkId::from_parameter(name.into()), &(), |b, ()| f(b))
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, sample: Option<Sample>, throughput: Option<Throughput>) {
    let Some(s) = sample else {
        println!("{name:<56} test-run ok");
        return;
    };
    let nanos = s.per_iter.as_nanos().max(1);
    let human = if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Kelem/s", n as f64 / (nanos as f64 / 1e9) / 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / (nanos as f64 / 1e9) / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!(
        "{name:<56} median {human}  ({} samples x {} iters){rate}",
        s.samples, s.iters
    );
}

/// The harness entry point handed to `criterion_group!` functions.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        // `cargo bench -- <filter>`; flags from cargo's harness protocol
        // (`--bench`, `--test`) are recognized, the rest ignored.
        let mut test_mode = false;
        let mut filter = None;
        for arg in &args {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" => {}
                other if !other.starts_with('-') && filter.is_none() => {
                    filter = Some(other.to_owned());
                }
                _ => {}
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 7,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.benchmark_group(name.clone())
            .bench_function(name, &mut f);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut result = None;
        let mut b = Bencher {
            mode: Mode::Measure { samples: 3 },
            result: &mut result,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        let s = result.expect("measured");
        assert!(s.per_iter.as_nanos() > 0);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut calls = 0;
        let mut result = None;
        let mut b = Bencher {
            mode: Mode::Test,
            result: &mut result,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(result.is_none());
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
