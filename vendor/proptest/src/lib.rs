//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the proptest API its test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! * integer-range strategies, tuple strategies, [`strategy::Just`],
//!   [`prop_oneof!`], [`collection::vec`], and regex-subset string
//!   strategies (`"[a-z]{0,40}"`, `"\\PC*"`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Semantics deliberately differ from real proptest in two ways: cases
//! are generated from a seed derived *deterministically* from the test's
//! module path and name (reproducible across runs, no persistence files),
//! and there is **no shrinking** — a failing case panics with the
//! generated values printed by the standard assertion message.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod test_runner {
    //! Configuration and the per-test random source.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's `ProptestConfig`: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic seed derived from a test's fully qualified name
    /// (FNV-1a), so every test gets its own reproducible stream.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from `0..n` (`n` must be positive).
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform draw from `lo..=hi`.
        pub fn between(&mut self, lo: usize, hi: usize) -> usize {
            lo + self.below(hi - lo + 1)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking:
    /// `new_value` directly produces one random value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.new_value(rng)).new_value(rng)
        }
    }

    trait DynStrategy {
        type Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.dyn_new_value(rng)
        }
    }

    /// Weighted choice between type-erased alternatives ([`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Creates a uniform union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Self::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
        }

        /// Creates a weighted union; panics if `arms` is empty or all
        /// weights are zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = arms.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! needs at least one arm with positive weight"
            );
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut draw = rng.next_u64() % self.total_weight;
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if draw < weight {
                    return arm.new_value(rng);
                }
                draw -= weight;
            }
            unreachable!("weights sum to total_weight")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for bool {
        type Value = bool;
        fn new_value(&self, _rng: &mut TestRng) -> bool {
            *self
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0.0)
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
        (S0.0, S1.1, S2.2, S3.3, S4.4)
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    }

    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or an interval.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length, inclusive.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.between(self.size.min, self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod string {
    //! String generation from a small regex subset.
    //!
    //! Supported syntax (the patterns this workspace uses):
    //! `[...]` character classes with literal chars and `a-z` ranges,
    //! `\PC` (any printable, non-control char), escaped literals, and the
    //! quantifiers `*`, `+`, `?`, `{m}`, `{m,n}` — applied to the
    //! preceding item. Everything else is a literal character.

    use crate::test_runner::TestRng;

    enum Chars {
        Literal(char),
        Class(Vec<(char, char)>),
        AnyPrintable,
    }

    struct Item {
        chars: Chars,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Item> {
        let mut chars = pattern.chars().peekable();
        let mut items: Vec<Item> = Vec::new();
        while let Some(c) = chars.next() {
            let piece = match c {
                '\\' => match chars.next() {
                    Some('P') => {
                        // `\PC`: any char outside the Unicode Control class.
                        let class = chars.next();
                        assert_eq!(class, Some('C'), "only \\PC is supported");
                        Chars::AnyPrintable
                    }
                    Some(other) => Chars::Literal(other),
                    None => Chars::Literal('\\'),
                },
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        match chars.next() {
                            None => panic!("unterminated character class"),
                            Some(']') => break,
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    let hi = chars.next().expect("unterminated range");
                                    ranges.push((lo, hi));
                                } else {
                                    ranges.push((lo, lo));
                                }
                            }
                        }
                    }
                    Chars::Class(ranges)
                }
                other => Chars::Literal(other),
            };
            // Quantifier, if any.
            let (min, max) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0, 32)
                }
                Some('+') => {
                    chars.next();
                    (1, 32)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut bounds = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        bounds.push(c);
                    }
                    match bounds.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad quantifier"),
                            n.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = bounds.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            items.push(Item {
                chars: piece,
                min,
                max,
            });
        }
        items
    }

    /// A spread of printable chars: ASCII plus a few multi-byte code
    /// points, so byte-oriented bugs (slicing, lengths) get exercised.
    const EXOTIC: [char; 8] = ['é', 'Ω', 'ß', '語', '☃', '𝄞', '¡', '\u{200b}'];

    fn draw(chars: &Chars, rng: &mut TestRng) -> char {
        match chars {
            Chars::Literal(c) => *c,
            Chars::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len())];
                char::from_u32(rng.between(lo as usize, hi as usize) as u32).unwrap_or(lo)
            }
            Chars::AnyPrintable => {
                if rng.below(8) == 0 {
                    EXOTIC[rng.below(EXOTIC.len())]
                } else {
                    char::from(rng.between(0x20, 0x7e) as u8)
                }
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for item in parse(pattern) {
            let count = rng.between(item.min, item.max);
            for _ in 0..count {
                out.push(draw(&item.chars, rng));
            }
        }
        out
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::seed_from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(
                        __seed ^ u64::from(__case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Choice between strategies with a common value type; arms are uniform
/// (`strategy, ...`) or weighted (`weight => strategy, ...`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vec() {
        let mut rng = TestRng::from_seed(1);
        let strat = crate::collection::vec((0..4u8, 10..=12usize), 2..5);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            for (a, b) in v {
                assert!(a < 4);
                assert!((10..=12).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let mut rng = TestRng::from_seed(2);
        let strat = prop_oneof![
            (0..3u8).prop_map(|x| x as i32),
            Just(-1i32),
            (5..6u8).prop_map(|x| i32::from(x) * 10),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            seen.insert(strat.new_value(&mut rng));
        }
        assert!(seen.contains(&-1));
        assert!(seen.contains(&50));
        assert!(seen.iter().any(|&x| (0..3).contains(&x)));
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = crate::string::generate("[a-c]{2,4}", &mut rng);
            assert!(s.chars().count() >= 2 && s.chars().count() <= 4);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let any = crate::string::generate("\\PC*", &mut rng);
            assert!(any.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, flat_map, trailing comma.
        #[test]
        fn macro_roundtrip((a, b) in (0..5u8, 1..3u8), v in crate::collection::vec(0..2u8, 0..4),) {
            prop_assert!(a < 5);
            prop_assert_ne!(b, 0);
            prop_assert_eq!(v.iter().filter(|&&x| x > 1).count(), 0);
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1..4usize).prop_flat_map(|n| crate::collection::vec(0..10u8, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
