//! The seed backtracking evaluator, preserved as an oracle.
//!
//! This is the dynamic-ordering search that `magik-relalg` shipped with
//! before plans existed: at every search node it re-picks the most
//! constrained remaining atom and re-chooses an access path under the
//! current partial assignment, with `HashMap` bindings and an explicit
//! undo trail. It is kept verbatim for two jobs: the proptest equivalence
//! suite checks planned execution against it on randomized inputs, and the
//! `exec_plans` bench measures the planned executor's speedup over it.
//! Production code paths must not call it.

use std::collections::{BTreeSet, HashMap};

use magik_relalg::{
    Answer, AnswerSet, Atom, Cst, EvalError, Fact, Instance, Query, RowRef, Substitution, Term, Var,
};

/// Partial assignment during search.
type Bindings = HashMap<Var, Cst>;

/// Tries to extend `bind` so that the atom matches the stored row. On
/// success returns the list of variables newly bound (the trail); on
/// failure returns `None` and leaves `bind` exactly as it was.
fn match_atom(atom: &Atom, row: RowRef<'_>, bind: &mut Bindings) -> Option<Vec<Var>> {
    let mut trail = Vec::new();
    for (col, &t) in atom.args.iter().enumerate() {
        let c = row.get(col);
        let ok = match t {
            Term::Cst(tc) => tc == c,
            Term::Var(v) => match bind.get(&v) {
                Some(&bound) => bound == c,
                None => {
                    bind.insert(v, c);
                    trail.push(v);
                    true
                }
            },
        };
        if !ok {
            for v in trail {
                bind.remove(&v);
            }
            return None;
        }
    }
    Some(trail)
}

/// Estimated number of candidate tuples for `atom` under `bind`, and the
/// best access path: `Some((col, cst))` to use the column index, `None`
/// for a full scan.
fn plan_atom(atom: &Atom, db: &Instance, bind: &Bindings) -> (usize, Option<(usize, Cst)>) {
    let Some(rel) = db.relation(atom.pred) else {
        return (0, None);
    };
    let mut best = (rel.len(), None);
    for (col, &t) in atom.args.iter().enumerate() {
        let value = match t {
            Term::Cst(c) => Some(c),
            Term::Var(v) => bind.get(&v).copied(),
        };
        if let Some(c) = value {
            let n = rel.matches(col, c).map_or(0, <[u32]>::len);
            if n < best.0 {
                best = (n, Some((col, c)));
            }
        }
    }
    best
}

/// Depth-first search over the remaining atoms. `visit` returns `true` to
/// continue enumerating and `false` to stop early. Returns `false` iff the
/// search was stopped early.
fn search(
    remaining: &mut Vec<&Atom>,
    db: &Instance,
    bind: &mut Bindings,
    visit: &mut dyn FnMut(&Bindings) -> bool,
) -> bool {
    if remaining.is_empty() {
        return visit(bind);
    }
    // Pick the most constrained atom (fewest candidates).
    let mut best_i = 0;
    let mut best = (usize::MAX, None);
    for (i, atom) in remaining.iter().enumerate() {
        let plan = plan_atom(atom, db, bind);
        if plan.0 < best.0 {
            best_i = i;
            best = plan;
            if best.0 == 0 {
                return true; // dead branch, nothing to enumerate
            }
        }
    }
    let atom = remaining.swap_remove(best_i);
    let rel = db.relation(atom.pred).expect("plan found candidates");
    let mut keep_going = true;
    let mut try_tuple =
        |row: RowRef<'_>, remaining: &mut Vec<&Atom>, bind: &mut Bindings| -> bool {
            if let Some(trail) = match_atom(atom, row, bind) {
                let cont = search(remaining, db, bind, visit);
                for v in trail {
                    bind.remove(&v);
                }
                cont
            } else {
                true
            }
        };
    match best.1 {
        Some((col, c)) => {
            let positions = rel.matches(col, c).unwrap_or(&[]);
            for &pos in positions {
                if !try_tuple(rel.row(pos), remaining, bind) {
                    keep_going = false;
                    break;
                }
            }
        }
        None => {
            for row in rel.iter() {
                if !try_tuple(row, remaining, bind) {
                    keep_going = false;
                    break;
                }
            }
        }
    }
    remaining.push(atom);
    keep_going
}

/// Enumerates satisfying assignments of `body` over `db` extending `seed`,
/// calling `visit` for each; `visit` returns `false` to stop.
fn for_each_model(
    body: &[Atom],
    db: &Instance,
    seed: Bindings,
    visit: &mut dyn FnMut(&Bindings) -> bool,
) -> bool {
    let mut remaining: Vec<&Atom> = body.iter().collect();
    let mut bind = seed;
    search(&mut remaining, db, &mut bind, visit)
}

/// Reference `answers`: identical contract to
/// [`magik_relalg::answers`], computed by the seed search.
pub fn answers(q: &Query, db: &Instance) -> Result<AnswerSet, EvalError> {
    let body_vars = q.body_vars();
    if let Some(v) = q.head_vars().into_iter().find(|v| !body_vars.contains(v)) {
        return Err(EvalError::UnsafeQuery(v));
    }
    let mut out = AnswerSet::new();
    for_each_model(&q.body, db, Bindings::new(), &mut |bind| {
        let tuple: Answer = q
            .head
            .iter()
            .map(|&t| match t {
                Term::Cst(c) => c,
                Term::Var(v) => bind[&v],
            })
            .collect();
        out.insert(tuple);
        true
    });
    Ok(out)
}

/// Reference `has_answer`: identical contract to
/// [`magik_relalg::has_answer`], computed by the seed search.
pub fn has_answer(q: &Query, db: &Instance, target: &[Cst]) -> bool {
    if q.head.len() != target.len() {
        return false;
    }
    let mut seed = Bindings::new();
    for (&t, &c) in q.head.iter().zip(target) {
        match t {
            Term::Cst(tc) => {
                if tc != c {
                    return false;
                }
            }
            Term::Var(v) => match seed.get(&v) {
                Some(&bound) => {
                    if bound != c {
                        return false;
                    }
                }
                None => {
                    seed.insert(v, c);
                }
            },
        }
    }
    let mut found = false;
    for_each_model(&q.body, db, seed, &mut |_| {
        found = true;
        false
    });
    found
}

/// Reference `homomorphisms`: identical contract to
/// [`magik_relalg::homomorphisms`], computed by the seed search.
pub fn homomorphisms(body: &[Atom], db: &Instance) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_model(body, db, Bindings::new(), &mut |bind| {
        out.push(Substitution::from_pairs(
            bind.iter().map(|(&v, &c)| (v, Term::Cst(c))),
        ));
        true
    });
    out
}

/// Reference naive fixpoint over positive rules `(head, body)`: applies
/// every rule against the whole model until nothing new derives. The
/// oracle for the semi-naive equivalence tests and the seed baseline for
/// the fixpoint benches (it re-plans each body at every search node of
/// every round, exactly as the pre-plan Datalog engine did).
pub fn naive_fixpoint(rules: &[(Atom, Vec<Atom>)], edb: &Instance) -> Instance {
    let mut model = edb.clone();
    loop {
        let mut new_facts: Vec<Fact> = Vec::new();
        for (head, body) in rules {
            for_each_model(body, &model, Bindings::new(), &mut |bind| {
                let args: Vec<Cst> = head
                    .args
                    .iter()
                    .map(|&t| match t {
                        Term::Cst(c) => c,
                        Term::Var(v) => bind[&v],
                    })
                    .collect();
                let fact = Fact::new(head.pred, args);
                if !model.contains(&fact) {
                    new_facts.push(fact);
                }
                true
            });
        }
        let mut grew = false;
        for fact in new_facts {
            grew |= model.insert(fact);
        }
        if !grew {
            return model;
        }
    }
}

/// The set of variables of `body` (helper for tests comparing
/// homomorphism domains).
pub fn body_vars(body: &[Atom]) -> BTreeSet<Var> {
    body.iter().flat_map(Atom::vars).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::Vocabulary;

    #[test]
    fn reference_agrees_with_planned_on_a_join() {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let mut db = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "c")] {
            db.insert(Fact::new(e, vec![v.cst(a), v.cst(b)]));
        }
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x), Term::Var(z)],
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
            ],
        );
        assert_eq!(
            answers(&q, &db).unwrap(),
            magik_relalg::answers(&q, &db).unwrap()
        );
        let ab = [v.cst("a"), v.cst("c")];
        assert_eq!(
            has_answer(&q, &db, &ab),
            magik_relalg::has_answer(&q, &db, &ab)
        );
        assert_eq!(
            homomorphisms(&q.body, &db).len(),
            magik_relalg::homomorphisms(&q.body, &db).len()
        );
    }

    #[test]
    fn naive_fixpoint_computes_transitive_closure() {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let t = v.pred("t", 2);
        let mut edb = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            edb.insert(Fact::new(e, vec![v.cst(a), v.cst(b)]));
        }
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let rules = vec![
            (
                Atom::new(t, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(e, vec![Term::Var(x), Term::Var(y)])],
            ),
            (
                Atom::new(t, vec![Term::Var(x), Term::Var(z)]),
                vec![
                    Atom::new(t, vec![Term::Var(x), Term::Var(y)]),
                    Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
                ],
            ),
        ];
        let model = naive_fixpoint(&rules, &edb);
        let paths = model.relation(t).map_or(0, magik_relalg::Relation::len);
        assert_eq!(paths, 6); // ab ac ad bc bd cd
    }
}
