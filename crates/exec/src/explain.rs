//! `explain-plan` rendering: human- and machine-readable views of a
//! compiled plan and (optionally) the counters from executing it.
//!
//! The conventions follow `magik analyze`: a compact fixed-layout text
//! form for terminals, and a hand-rolled single-object JSON form (the
//! workspace has no serde) with stable key names for tooling.

use std::fmt::Write as _;

use magik_relalg::exec::{Access, ColAction, ExecStats, Key};
use magik_relalg::{DisplayWith, Vocabulary};

use crate::compiled::CompiledQuery;

fn key_text(key: Key, slots: &[magik_relalg::Var], vocab: &Vocabulary) -> String {
    match key {
        Key::Const(c) => format!("{}", c.display(vocab)),
        Key::Slot(s) => format!("?{}", vocab.var_name(slots[s])),
    }
}

/// Renders a plan as indented text: the chosen atom order, each op's
/// access path (scan vs index probe), its per-column actions, the
/// planner's estimate, and — when `stats` is given — the op's runtime
/// counters, followed by the aggregate totals.
pub fn explain_text(cq: &CompiledQuery, stats: Option<&ExecStats>, vocab: &Vocabulary) -> String {
    let plan = cq.plan();
    let batch = cq.batch_plan();
    let q = cq.query();
    let slots = plan.slots();
    let mut out = String::new();
    let _ = writeln!(out, "query {}", q.display(vocab));
    let slot_names: Vec<&str> = slots.iter().map(|&v| vocab.var_name(v)).collect();
    let _ = writeln!(
        out,
        "plan: {} ops, slots [{}] ({} seed)",
        plan.ops().len(),
        slot_names.join(", "),
        plan.seed_slots()
    );
    for (i, op) in plan.ops().iter().enumerate() {
        let access = match op.access {
            Access::Scan => "scan".to_string(),
            Access::Probe { col, key } => {
                format!("probe col {} = {}", col, key_text(key, slots, vocab))
            }
        };
        // The batch executor's join-operator choice for this op (only
        // join ops carry one; scans and pure filters do not).
        let bop = &batch.ops()[i];
        let join = if bop.join_keys().is_empty() {
            String::new()
        } else {
            format!("  join={}", bop.strategy.name())
        };
        let _ = writeln!(
            out,
            "  op {}: {}  {}  est={}{}",
            i + 1,
            q.body[op.atom].display(vocab),
            access,
            op.est,
            join
        );
        let actions: Vec<String> = op
            .actions
            .iter()
            .map(|&a| match a {
                ColAction::CheckConst { col, value } => {
                    format!("check col {} = {}", col, value.display(vocab))
                }
                ColAction::CheckSlot { col, slot } => {
                    format!("check col {} = ?{}", col, vocab.var_name(slots[slot]))
                }
                ColAction::Bind { col, slot } => {
                    format!("bind ?{} <- col {}", vocab.var_name(slots[slot]), col)
                }
            })
            .collect();
        if !actions.is_empty() {
            let _ = writeln!(out, "        {}", actions.join(", "));
        }
        if let Some(stats) = stats {
            if let Some(c) = stats.per_op.get(i) {
                let _ = writeln!(
                    out,
                    "        entered={} probes={} scanned={} matched={}",
                    c.entered, c.probes, c.scanned, c.matched
                );
            }
        }
    }
    if let Some(s) = stats {
        let _ = writeln!(
            out,
            "totals: probes={} scanned={} backtracks={} rows={}",
            s.probes, s.scanned, s.backtracks, s.rows
        );
        let _ = writeln!(
            out,
            "batch: batches={} rows={} joins nested={} hash={} merge={}",
            s.batches, s.batch_rows, s.join_nested, s.join_hash, s.join_merge
        );
    }
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a plan as one JSON object with stable keys: `query`, `slots`,
/// `seed_slots`, `ops` (each with `atom`, `pred`, `access`, `est`,
/// `join` for join ops, `actions`, and `counters` when `stats` is given),
/// and `totals` plus `batch` (also only with `stats`).
pub fn explain_json(cq: &CompiledQuery, stats: Option<&ExecStats>, vocab: &Vocabulary) -> String {
    let plan = cq.plan();
    let batch = cq.batch_plan();
    let q = cq.query();
    let slots = plan.slots();
    let mut out = String::from("{");
    let _ = write!(
        out,
        r#""query":"{}","slots":[{}],"seed_slots":{},"ops":["#,
        json_escape(&format!("{}", q.display(vocab))),
        slots
            .iter()
            .map(|&v| format!("\"{}\"", json_escape(vocab.var_name(v))))
            .collect::<Vec<_>>()
            .join(","),
        plan.seed_slots()
    );
    for (i, op) in plan.ops().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let access = match op.access {
            Access::Scan => r#"{"kind":"scan"}"#.to_string(),
            Access::Probe { col, key } => {
                let key = match key {
                    Key::Const(c) => format!(
                        r#"{{"const":"{}"}}"#,
                        json_escape(&format!("{}", c.display(vocab)))
                    ),
                    Key::Slot(s) => format!(
                        r#"{{"slot":{},"var":"{}"}}"#,
                        s,
                        json_escape(vocab.var_name(slots[s]))
                    ),
                };
                format!(r#"{{"kind":"probe","col":{col},"key":{key}}}"#)
            }
        };
        let actions: Vec<String> = op
            .actions
            .iter()
            .map(|&a| match a {
                ColAction::CheckConst { col, value } => format!(
                    r#"{{"kind":"check_const","col":{},"value":"{}"}}"#,
                    col,
                    json_escape(&format!("{}", value.display(vocab)))
                ),
                ColAction::CheckSlot { col, slot } => format!(
                    r#"{{"kind":"check_slot","col":{},"slot":{},"var":"{}"}}"#,
                    col,
                    slot,
                    json_escape(vocab.var_name(slots[slot]))
                ),
                ColAction::Bind { col, slot } => format!(
                    r#"{{"kind":"bind","col":{},"slot":{},"var":"{}"}}"#,
                    col,
                    slot,
                    json_escape(vocab.var_name(slots[slot]))
                ),
            })
            .collect();
        let _ = write!(
            out,
            r#"{{"atom":{},"pred":"{}","access":{},"est":{},"actions":[{}]"#,
            op.atom,
            json_escape(vocab.pred_name(op.pred)),
            access,
            op.est,
            actions.join(",")
        );
        let bop = &batch.ops()[i];
        if !bop.join_keys().is_empty() {
            let _ = write!(out, r#","join":"{}""#, bop.strategy.name());
        }
        if let Some(stats) = stats {
            if let Some(c) = stats.per_op.get(i) {
                let _ = write!(
                    out,
                    r#","counters":{{"entered":{},"probes":{},"scanned":{},"matched":{}}}"#,
                    c.entered, c.probes, c.scanned, c.matched
                );
            }
        }
        out.push('}');
    }
    out.push(']');
    if let Some(s) = stats {
        let _ = write!(
            out,
            r#","totals":{{"probes":{},"scanned":{},"backtracks":{},"rows":{}}}"#,
            s.probes, s.scanned, s.backtracks, s.rows
        );
        let _ = write!(
            out,
            r#","batch":{{"batches":{},"rows":{},"join_nested":{},"join_hash":{},"join_merge":{}}}"#,
            s.batches, s.batch_rows, s.join_nested, s.join_hash, s.join_merge
        );
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::{Atom, Fact, Instance, Query, Term};

    fn setup() -> (Vocabulary, Instance, CompiledQuery) {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let mut db = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c")] {
            db.insert(Fact::new(e, vec![v.cst(a), v.cst(b)]));
        }
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x), Term::Var(z)],
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
            ],
        );
        let cq = CompiledQuery::compile(&q, Some(&db)).unwrap();
        (v, db, cq)
    }

    #[test]
    fn text_lists_ops_and_totals() {
        let (v, db, cq) = setup();
        let mut stats = ExecStats::default();
        cq.answers(&db, &mut stats);
        let text = explain_text(&cq, Some(&stats), &v);
        assert!(text.contains("plan: 2 ops"), "{text}");
        assert!(text.contains("probe col 0 = ?Y"), "{text}");
        assert!(text.contains("totals: probes="), "{text}");
        // The join op shows its chosen operator; batch counters follow
        // the totals.
        assert!(text.contains("join=nested_loop"), "{text}");
        assert!(text.contains("batch: batches=1"), "{text}");
        // Without stats, no counter lines appear (but the operator choice
        // is a compile-time fact and stays).
        let bare = explain_text(&cq, None, &v);
        assert!(!bare.contains("totals:"), "{bare}");
        assert!(!bare.contains("entered="), "{bare}");
        assert!(!bare.contains("batch:"), "{bare}");
        assert!(bare.contains("join=nested_loop"), "{bare}");
    }

    #[test]
    fn json_has_stable_keys() {
        let (v, db, cq) = setup();
        let mut stats = ExecStats::default();
        cq.answers(&db, &mut stats);
        let json = explain_json(&cq, Some(&stats), &v);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains(r#""seed_slots":0"#), "{json}");
        assert!(json.contains(r#""kind":"probe""#), "{json}");
        assert!(json.contains(r#""kind":"bind""#), "{json}");
        assert!(json.contains(r#""totals":{"probes":"#), "{json}");
        assert!(json.contains(r#""join":"nested_loop""#), "{json}");
        assert!(json.contains(r#""batch":{"batches":1"#), "{json}");
        let bare = explain_json(&cq, None, &v);
        assert!(!bare.contains("totals"), "{bare}");
        assert!(!bare.contains("counters"), "{bare}");
        assert!(!bare.contains(r#""batch""#), "{bare}");
        assert!(bare.contains(r#""join":"nested_loop""#), "{bare}");
    }
}
