//! Compiled query-execution layer for MAGIK-rs.
//!
//! Every reasoning layer of the system — query evaluation, the
//! Chandra–Merlin containment checks, the completeness engine's searches
//! over the frozen canonical database, and the semi-naive Datalog fixpoints
//! behind the Section 5 encoding — reduces to matching a conjunctive body
//! against an [`Instance`](magik_relalg::Instance). The plan IR itself (planner, executor,
//! projections, counters) lives in [`magik_relalg::exec`] because it is
//! inseparable from the data model; this crate re-exports it and adds the
//! layers the *callers* share:
//!
//! * [`CompiledQuery`] — a safety-checked query compiled to a plan plus a
//!   head projection, executable repeatedly against evolving instances;
//! * [`CompiledBody`] — a rule-shaped body (positive atoms, stratified
//!   negation, declared-bound pivot variables) compiled for full or
//!   delta-mode execution, the building block of the Datalog engine;
//! * [`match_ground`] — pivot matching: unifies a ground fact with an atom
//!   pattern to produce the seed bindings of a delta run;
//! * [`PlanCache`] — a small LRU of shared [`CompiledQuery`]s with
//!   hit/miss counters, used by the server engine keyed on canonical query
//!   forms;
//! * [`explain_text`] / [`explain_json`] — human- and machine-readable
//!   renderings of a plan and its execution counters, backing the CLI's
//!   `explain-plan` command;
//! * [`Executor`] — the pluggable parallel executor (sequential, or
//!   fork-join over the shared work-stealing `magik-runtime` pool) that
//!   the Datalog fixpoints, the k-MCS search, and the server fan out on;
//! * [`reference`] — the seed backtracking evaluator, preserved verbatim
//!   as the oracle for equivalence tests and the baseline for benches.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
mod compiled;
mod executor;
mod explain;
pub mod reference;

pub use cache::PlanCache;
pub use compiled::{match_ground, CompiledBody, CompiledQuery};
pub use executor::{available_parallelism, partition, Executor, PoolCounters, ThreadPool};
pub use explain::{explain_json, explain_text};
pub use magik_relalg::batch::{Batch, BatchOp, BatchPlan, JoinStrategy};
pub use magik_relalg::exec::{
    Access, ColAction, ExecStats, Key, OpCounters, Plan, PlanOp, Projection, Row,
};
