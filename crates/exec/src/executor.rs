//! The pluggable parallel executor: sequential or pooled fork-join.
//!
//! Every parallel consumer in the workspace — the semi-naive Datalog
//! rounds, the k-MCS candidate fan-out, the server's request evaluation —
//! takes an [`Executor`] and stays agnostic about where (or whether)
//! threads exist. [`Executor::Sequential`] runs everything inline with
//! zero overhead; [`Executor::Pooled`] fans out over a shared
//! work-stealing [`ThreadPool`] from `magik-runtime`.
//!
//! Tasks must be `'static` (the pool has no scoped API in safe code), so
//! callers ship shared state in `Arc`s — the relalg
//! [`Snapshot`](magik_relalg::Snapshot) exists precisely to make that
//! cheap.

use std::sync::Arc;

pub use magik_runtime::{available_parallelism, partition, PoolCounters, ThreadPool};

/// A pluggable fork-join executor.
#[derive(Debug, Clone, Default)]
pub enum Executor {
    /// Run every task inline on the calling thread.
    #[default]
    Sequential,
    /// Fan tasks out over a shared work-stealing pool. Cloning shares the
    /// pool (and its counters).
    Pooled(Arc<ThreadPool>),
}

impl Executor {
    /// An executor with `threads` workers: [`Executor::Sequential`] when
    /// `threads <= 1`, a fresh pooled executor otherwise.
    pub fn with_threads(threads: usize) -> Executor {
        if threads <= 1 {
            Executor::Sequential
        } else {
            Executor::Pooled(Arc::new(ThreadPool::new(threads)))
        }
    }

    /// The degree of parallelism: 1 for sequential, the pool size
    /// otherwise.
    pub fn threads(&self) -> usize {
        match self {
            Executor::Sequential => 1,
            Executor::Pooled(pool) => pool.threads(),
        }
    }

    /// The underlying pool's counters (all zero for sequential).
    pub fn counters(&self) -> PoolCounters {
        match self {
            Executor::Sequential => PoolCounters::default(),
            Executor::Pooled(pool) => pool.counters(),
        }
    }

    /// Applies `f` to every item, returning results **in input order**.
    ///
    /// Sequentially this is a plain loop; pooled it is a fork-join on the
    /// shared pool (the calling thread assists while waiting, so nesting
    /// is safe). Results are deterministic in *order* either way; callers
    /// needing deterministic *content* must keep `f` free of cross-task
    /// effects.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        match self {
            Executor::Sequential => items.into_iter().map(f).collect(),
            Executor::Pooled(pool) => pool.run_map(items, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_pooled_agree() {
        let items: Vec<u32> = (0..100).collect();
        let seq = Executor::Sequential.map(items.clone(), |x| x * x);
        let par = Executor::with_threads(4).map(items, |x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn with_threads_one_is_sequential() {
        assert!(matches!(Executor::with_threads(1), Executor::Sequential));
        assert_eq!(Executor::with_threads(1).threads(), 1);
        assert_eq!(Executor::with_threads(4).threads(), 4);
    }

    #[test]
    fn pooled_counters_accumulate() {
        let ex = Executor::with_threads(2);
        ex.map((0..10u32).collect(), |x| x);
        assert!(ex.counters().tasks >= 10);
        assert_eq!(Executor::Sequential.counters(), PoolCounters::default());
    }
}
