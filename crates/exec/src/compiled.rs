//! Compiled queries and rule bodies: the execution units shared by the
//! evaluation, containment, Datalog, and server layers.

use std::collections::BTreeSet;

use magik_relalg::batch::{Batch, BatchPlan, JoinStrategy};
use magik_relalg::exec::{ExecStats, Plan, Projection};
use magik_relalg::{AnswerSet, Atom, Cst, EvalError, Fact, Pred, Query, StoreView, Term, Var};

/// A safety-checked conjunctive query compiled to a [`Plan`] plus a head
/// [`Projection`].
///
/// Compilation fixes the atom order and access paths against the supplied
/// statistics instance; the compiled form can then be executed any number
/// of times, against the same instance or later versions of it (statistics
/// drift affects only speed, never results). This is what the server's
/// plan cache stores.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    query: Query,
    plan: Plan,
    batch: BatchPlan,
    head: Projection,
}

impl CompiledQuery {
    /// Compiles `q` using the statistics of `stats` for atom ordering.
    ///
    /// Returns [`EvalError::UnsafeQuery`] if a head variable does not
    /// occur in the body, exactly like
    /// [`answers`](magik_relalg::answers).
    pub fn compile(q: &Query, stats: Option<&dyn StoreView>) -> Result<CompiledQuery, EvalError> {
        let body_vars = q.body_vars();
        if let Some(v) = q.head_vars().into_iter().find(|v| !body_vars.contains(v)) {
            return Err(EvalError::UnsafeQuery(v));
        }
        let plan = Plan::compile(&q.body, &BTreeSet::new(), stats);
        let batch = BatchPlan::compile(&plan, stats, 1);
        let head = Projection::compile(&q.head, &plan).map_err(EvalError::UnsafeQuery)?;
        Ok(CompiledQuery {
            query: q.clone(),
            plan,
            batch,
            head,
        })
    }

    /// Evaluates the compiled query over `db` in batch mode, accumulating
    /// execution counters into `stats`.
    pub fn answers<S: StoreView + ?Sized>(&self, db: &S, stats: &mut ExecStats) -> AnswerSet {
        let out = self
            .batch
            .run(db, Batch::from_seeds(&self.plan, &[Vec::new()]), stats);
        let mut ans = AnswerSet::new();
        for r in 0..out.len() {
            ans.insert(self.head.emit_with(&mut |s| out.value(s, r)));
        }
        ans
    }

    /// `true` iff the query has at least one answer over `db`.
    pub fn has_any_answer<S: StoreView + ?Sized>(&self, db: &S, stats: &mut ExecStats) -> bool {
        self.plan.first_match(db, &[], stats)
    }

    /// The source query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The compiled plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The batch recompilation of [`CompiledQuery::plan`] (join-strategy
    /// choices live here).
    pub fn batch_plan(&self) -> &BatchPlan {
        &self.batch
    }

    /// The join strategies of the plan's join ops, in op order — what the
    /// server's plan cache records per entry. Ops without join keys
    /// (scans, pure filters) are skipped.
    pub fn join_strategies(&self) -> Vec<JoinStrategy> {
        self.batch
            .ops()
            .iter()
            .filter(|op| !op.join_keys().is_empty())
            .map(|op| op.strategy)
            .collect()
    }
}

/// A rule-shaped body compiled for full or delta-mode execution: positive
/// atoms as a [`Plan`], a head template as a [`Projection`], and ground
/// templates for stratified negated atoms.
///
/// For **full** execution compile with an empty `bound` set and run with an
/// empty seed. For **delta** execution compile the body *minus* the pivot
/// atom with the pivot's variables declared `bound`, then seed each run
/// from a delta fact via [`match_ground`]. Either way the plan is compiled
/// once and reused across fixpoint rounds and increments.
#[derive(Debug, Clone)]
pub struct CompiledBody {
    plan: Plan,
    batch: BatchPlan,
    head: Projection,
    /// Negated atoms as `(pred, ground template)`: a derivation survives
    /// iff none of the grounded facts is present in the instance.
    neg: Vec<(Pred, Projection)>,
}

/// Nominal delta-batch size assumed when choosing join strategies for
/// delta-mode bodies: a round's (rule, pivot) group is seeded with all the
/// round's matching delta facts at once, so the planner should not assume
/// single-row batches.
const NOMINAL_DELTA_BATCH: usize = 64;

impl CompiledBody {
    /// Compiles a rule body.
    ///
    /// `head_args` is the head template (any term list over the rule's
    /// variables), `body` the positive atoms, `negative` the negated atoms
    /// (their variables must be covered by `body` ∪ `bound` —
    /// range-restriction, which the Datalog layer validates), and `bound`
    /// the variables that will be seeded at run time. Fails with the first
    /// variable that no slot covers.
    pub fn compile(
        head_args: &[Term],
        body: &[Atom],
        negative: &[Atom],
        bound: &BTreeSet<Var>,
        stats: Option<&dyn StoreView>,
    ) -> Result<CompiledBody, Var> {
        let plan = Plan::compile(body, bound, stats);
        let expected = if bound.is_empty() {
            1
        } else {
            NOMINAL_DELTA_BATCH
        };
        let batch = BatchPlan::compile(&plan, stats, expected);
        let head = Projection::compile(head_args, &plan)?;
        let neg = negative
            .iter()
            .map(|a| Ok((a.pred, Projection::compile(&a.args, &plan)?)))
            .collect::<Result<_, _>>()?;
        Ok(CompiledBody {
            plan,
            batch,
            head,
            neg,
        })
    }

    /// Enumerates the head tuples derivable over `db` from assignments
    /// extending `seed`, skipping rows blocked by a negated atom. Head
    /// tuples are handed to `emit` (duplicates are possible; callers
    /// dedupe on insertion).
    pub fn for_each_derivation<S: StoreView + ?Sized>(
        &self,
        db: &S,
        seed: &[(Var, Cst)],
        stats: &mut ExecStats,
        emit: &mut dyn FnMut(Vec<Cst>),
    ) {
        self.plan.run(db, seed, stats, &mut |row| {
            let blocked = self
                .neg
                .iter()
                .any(|(pred, proj)| db.contains(&Fact::new(*pred, proj.emit(row))));
            if !blocked {
                emit(self.head.emit(row));
            }
            true
        });
    }

    /// `true` iff at least one derivation extends `seed` over `db`
    /// (first-match mode: stops at the first row no negated atom blocks).
    ///
    /// This is the *support check* of DRed re-derivation: with the rule's
    /// head variables declared bound and seeded from an over-deleted
    /// fact, it answers "does some surviving rule instantiation still
    /// derive this fact?" without enumerating the instantiations.
    pub fn has_derivation<S: StoreView + ?Sized>(
        &self,
        db: &S,
        seed: &[(Var, Cst)],
        stats: &mut ExecStats,
    ) -> bool {
        let mut found = false;
        self.plan.run(db, seed, stats, &mut |row| {
            let blocked = self
                .neg
                .iter()
                .any(|(pred, proj)| db.contains(&Fact::new(*pred, proj.emit(row))));
            if blocked {
                return true; // keep searching past a blocked row
            }
            found = true;
            false
        });
        found
    }

    /// Batched [`CompiledBody::for_each_derivation`]: runs the whole
    /// `seeds` batch through the plan in one pass — one seed row per
    /// delta fact of a (rule, pivot) group — and emits every surviving
    /// head tuple. Derives exactly the tuples that per-seed calls to
    /// `for_each_derivation` would (order within the batch unspecified;
    /// callers dedupe on insertion).
    pub fn derive_batch<S: StoreView + ?Sized>(
        &self,
        db: &S,
        seeds: &[Vec<(Var, Cst)>],
        stats: &mut ExecStats,
        emit: &mut dyn FnMut(Vec<Cst>),
    ) {
        if seeds.is_empty() {
            return;
        }
        let out = self
            .batch
            .run(db, Batch::from_seeds(&self.plan, seeds), stats);
        for r in 0..out.len() {
            let mut get = |s: usize| out.value(s, r);
            let blocked = self
                .neg
                .iter()
                .any(|(pred, proj)| db.contains(&Fact::new(*pred, proj.emit_with(&mut get))));
            if !blocked {
                emit(self.head.emit_with(&mut get));
            }
        }
    }

    /// The compiled plan over the positive atoms.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The batch recompilation of the plan (join-strategy choices).
    pub fn batch_plan(&self) -> &BatchPlan {
        &self.batch
    }
}

/// Matches a ground tuple against an atom pattern: the pivot step of delta
/// execution. Returns the variable bindings induced by the match, or
/// `None` if a constant disagrees or a repeated variable would need two
/// values. The bindings seed a delta-mode [`CompiledBody`] run.
pub fn match_ground(atom: &Atom, args: &[Cst]) -> Option<Vec<(Var, Cst)>> {
    if atom.args.len() != args.len() {
        return None;
    }
    let mut seed: Vec<(Var, Cst)> = Vec::with_capacity(args.len());
    for (&t, &c) in atom.args.iter().zip(args) {
        match t {
            Term::Cst(tc) => {
                if tc != c {
                    return None;
                }
            }
            Term::Var(v) => match seed.iter().find(|&&(sv, _)| sv == v) {
                Some(&(_, bound)) => {
                    if bound != c {
                        return None;
                    }
                }
                None => seed.push((v, c)),
            },
        }
    }
    Some(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::{Instance, Vocabulary};

    fn fact(v: &mut Vocabulary, p: Pred, args: &[&str]) -> Fact {
        Fact::new(p, args.iter().map(|s| v.cst(s)).collect())
    }

    #[test]
    fn compiled_query_matches_answers() {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let mut db = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c")] {
            db.insert(fact(&mut v, e, &[a, b]));
        }
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x), Term::Var(z)],
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
            ],
        );
        let cq = CompiledQuery::compile(&q, Some(&db)).unwrap();
        let mut stats = ExecStats::default();
        let ans = cq.answers(&db, &mut stats);
        assert_eq!(ans, magik_relalg::answers(&q, &db).unwrap());
        assert!(stats.rows >= 1);
        assert!(cq.has_any_answer(&db, &mut stats));

        // Same compiled plan, later instance version: still correct.
        db.insert(fact(&mut v, e, &["c", "d"]));
        let ans2 = cq.answers(&db, &mut ExecStats::default());
        assert_eq!(ans2, magik_relalg::answers(&q, &db).unwrap());
        assert_eq!(ans2.len(), 2);
    }

    #[test]
    fn compiled_query_rejects_unsafe_heads() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(y)],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        assert_eq!(
            CompiledQuery::compile(&q, None).err(),
            Some(EvalError::UnsafeQuery(y))
        );
    }

    #[test]
    fn delta_body_derives_only_from_the_seed() {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let p = v.pred("p", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a", "b"]));
        db.insert(fact(&mut v, p, &["x", "y"]));
        db.insert(fact(&mut v, e, &["b", "c"]));
        let (xv, yv, zv) = (v.var("X"), v.var("Y"), v.var("Z"));
        // p(X,Z) ← p(X,Y), e(Y,Z), with p(X,Y) as the pivot.
        let pivot = Atom::new(p, vec![Term::Var(xv), Term::Var(yv)]);
        let rest = vec![Atom::new(e, vec![Term::Var(yv), Term::Var(zv)])];
        let bound: BTreeSet<Var> = [xv, yv].into_iter().collect();
        let body = CompiledBody::compile(
            &[Term::Var(xv), Term::Var(zv)],
            &rest,
            &[],
            &bound,
            Some(&db),
        )
        .unwrap();
        let seed = match_ground(&pivot, &[v.cst("a"), v.cst("b")]).unwrap();
        let mut derived = Vec::new();
        body.for_each_derivation(&db, &seed, &mut ExecStats::default(), &mut |t| {
            derived.push(t);
        });
        assert_eq!(derived, vec![vec![v.cst("a"), v.cst("c")]]);
        // A delta fact that matches nothing downstream derives nothing.
        let seed = match_ground(&pivot, &[v.cst("x"), v.cst("y")]).unwrap();
        let mut none = Vec::new();
        body.for_each_derivation(&db, &seed, &mut ExecStats::default(), &mut |t| {
            none.push(t);
        });
        assert!(none.is_empty());
    }

    #[test]
    fn derive_batch_matches_per_seed_derivations() {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let p = v.pred("p", 2);
        let blocked = v.pred("blocked", 2);
        let mut db = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("b", "d"), ("c", "c")] {
            db.insert(fact(&mut v, e, &[a, b]));
        }
        db.insert(fact(&mut v, blocked, &["a", "d"]));
        let (xv, yv, zv) = (v.var("X"), v.var("Y"), v.var("Z"));
        // p(X,Z) ← p(X,Y), e(Y,Z), ¬blocked(X,Z), pivot p(X,Y).
        let pivot = Atom::new(p, vec![Term::Var(xv), Term::Var(yv)]);
        let rest = vec![Atom::new(e, vec![Term::Var(yv), Term::Var(zv)])];
        let neg = vec![Atom::new(blocked, vec![Term::Var(xv), Term::Var(zv)])];
        let bound: BTreeSet<Var> = [xv, yv].into_iter().collect();
        let body = CompiledBody::compile(
            &[Term::Var(xv), Term::Var(zv)],
            &rest,
            &neg,
            &bound,
            Some(&db),
        )
        .unwrap();
        let deltas = [
            [v.cst("a"), v.cst("b")],
            [v.cst("q"), v.cst("b")],
            [v.cst("z"), v.cst("nope")],
        ];
        let seeds: Vec<Vec<(Var, Cst)>> = deltas
            .iter()
            .filter_map(|d| match_ground(&pivot, d))
            .collect();
        // Oracle: one for_each_derivation call per seed.
        let mut expect = Vec::new();
        for seed in &seeds {
            body.for_each_derivation(&db, seed, &mut ExecStats::default(), &mut |t| {
                expect.push(t);
            });
        }
        expect.sort();
        // (a,b) reaches c but not the blocked d; (q,b) reaches both.
        assert_eq!(
            expect,
            vec![
                vec![v.cst("a"), v.cst("c")],
                vec![v.cst("q"), v.cst("c")],
                vec![v.cst("q"), v.cst("d")],
            ]
        );
        let mut stats = ExecStats::default();
        let mut got = Vec::new();
        body.derive_batch(&db, &seeds, &mut stats, &mut |t| got.push(t));
        got.sort();
        assert_eq!(got, expect);
        assert_eq!(stats.batches, 1, "one batch for the whole seed group");
        body.derive_batch(&db, &[], &mut stats, &mut |_| panic!("no seeds"));
    }

    #[test]
    fn negated_atoms_block_derivations() {
        let mut v = Vocabulary::new();
        let node = v.pred("node", 1);
        let reach = v.pred("reach", 1);
        let mut db = Instance::new();
        for n in ["a", "b"] {
            db.insert(fact(&mut v, node, &[n]));
        }
        db.insert(fact(&mut v, reach, &["a"]));
        let x = v.var("X");
        // unreach(X) ← node(X), ¬reach(X).
        let body = CompiledBody::compile(
            &[Term::Var(x)],
            &[Atom::new(node, vec![Term::Var(x)])],
            &[Atom::new(reach, vec![Term::Var(x)])],
            &BTreeSet::new(),
            Some(&db),
        )
        .unwrap();
        let mut out = Vec::new();
        body.for_each_derivation(&db, &[], &mut ExecStats::default(), &mut |t| {
            out.push(t);
        });
        assert_eq!(out, vec![vec![v.cst("b")]]);
    }

    #[test]
    fn has_derivation_checks_support_under_bound_heads() {
        let mut v = Vocabulary::new();
        let e = v.pred("e", 2);
        let p = v.pred("p", 2);
        let blocked = v.pred("blocked", 2);
        let mut db = Instance::new();
        db.insert(fact(&mut v, p, &["a", "b"]));
        db.insert(fact(&mut v, e, &["b", "c"]));
        let (xv, yv, zv) = (v.var("X"), v.var("Y"), v.var("Z"));
        // p(X,Z) ← p(X,Y), e(Y,Z): is a given p-fact one-step derivable?
        let head = Atom::new(p, vec![Term::Var(xv), Term::Var(zv)]);
        let body = vec![
            Atom::new(p, vec![Term::Var(xv), Term::Var(yv)]),
            Atom::new(e, vec![Term::Var(yv), Term::Var(zv)]),
        ];
        let bound: BTreeSet<Var> = [xv, zv].into_iter().collect();
        let support = CompiledBody::compile(&head.args, &body, &[], &bound, Some(&db)).unwrap();
        let mut stats = ExecStats::default();
        let seed = match_ground(&head, &[v.cst("a"), v.cst("c")]).unwrap();
        assert!(support.has_derivation(&db, &seed, &mut stats));
        let seed = match_ground(&head, &[v.cst("a"), v.cst("z")]).unwrap();
        assert!(!support.has_derivation(&db, &seed, &mut stats));
        // A negated atom blocks the only supporting row.
        let neg = vec![Atom::new(blocked, vec![Term::Var(xv), Term::Var(zv)])];
        let guarded = CompiledBody::compile(&head.args, &body, &neg, &bound, Some(&db)).unwrap();
        let seed = match_ground(&head, &[v.cst("a"), v.cst("c")]).unwrap();
        assert!(guarded.has_derivation(&db, &seed, &mut stats));
        db.insert(fact(&mut v, blocked, &["a", "c"]));
        assert!(!guarded.has_derivation(&db, &seed, &mut stats));
    }

    #[test]
    fn match_ground_handles_constants_and_repeats() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 3);
        let x = v.var("X");
        let (a, b) = (v.cst("a"), v.cst("b"));
        let atom = Atom::new(p, vec![Term::Var(x), Term::Cst(a), Term::Var(x)]);
        assert_eq!(match_ground(&atom, &[b, a, b]), Some(vec![(x, b)]));
        assert_eq!(match_ground(&atom, &[b, b, b]), None); // constant mismatch
        assert_eq!(match_ground(&atom, &[a, a, b]), None); // repeat mismatch
        assert_eq!(match_ground(&atom, &[a, a]), None); // arity mismatch
    }
}
