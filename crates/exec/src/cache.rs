//! An LRU cache of compiled plans.
//!
//! Compiling a plan is cheap but not free (greedy ordering is quadratic in
//! the body size), and on hot paths — the server answering the same
//! canonical query under churning data epochs, fixpoints re-entered per
//! increment — the same body is compiled over and over. The cache stores
//! [`CompiledQuery`]s behind [`Arc`] so hits share one allocation, and
//! counts hits/misses so the server can export a plan-cache hit rate next
//! to its verdict- and answer-cache rates.
//!
//! # Invalidation
//!
//! A cached plan stays *correct* under data changes — statistics drive
//! only atom ordering — so data-epoch bumps do not clear the cache; the
//! entry ages out through normal LRU pressure. Keys must capture
//! everything answer-relevant (the server keys on the canonical query
//! form, whose equality implies query equivalence), and the owner must
//! [`clear`](PlanCache::clear) on events that remap interned ids, e.g. the
//! server's TCS/vocabulary epoch bumps.

use std::hash::Hash;
use std::sync::Arc;

use crate::compiled::CompiledQuery;

/// An exact LRU cache of shared compiled queries, with hit/miss counters.
///
/// Eviction scans for the minimum recency stamp — O(capacity), the same
/// trade the server's verdict caches make: at a few hundred entries the
/// scan is far cheaper than one plan compilation it saves.
#[derive(Debug, Clone)]
pub struct PlanCache<K> {
    cap: usize,
    tick: u64,
    map: std::collections::HashMap<K, (Arc<CompiledQuery>, u64)>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone> PlanCache<K> {
    /// Creates a cache holding at most `cap` plans (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            cap: cap.max(1),
            tick: 0,
            map: std::collections::HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key`, refreshing its recency and counting a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<Arc<CompiledQuery>> {
        self.tick += 1;
        let tick = self.tick;
        let found = self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = tick;
            Arc::clone(v)
        });
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Inserts `key → plan`, evicting the least recently used entry if the
    /// cache is full.
    pub fn insert(&mut self, key: K, plan: Arc<CompiledQuery>) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (plan, self.tick));
    }

    /// Iterates the cached entries (unspecified order) without touching
    /// recency or the hit/miss counters — the server's plan-introspection
    /// endpoint walks this to report each entry's operator choices.
    pub fn entries(&self) -> impl Iterator<Item = (&K, &Arc<CompiledQuery>)> {
        self.map.iter().map(|(k, (v, _))| (k, v))
    }

    /// The number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit count (hits survive [`clear`](PlanCache::clear)).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached plan, keeping the hit/miss counters. Call on
    /// events that remap interned ids (vocabulary or TCS epoch bumps).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::{Query, Vocabulary};

    fn trivial_plan(v: &mut Vocabulary, name: &str) -> Arc<CompiledQuery> {
        let q = Query::boolean(v.sym(name), vec![]);
        Arc::new(CompiledQuery::compile(&q, None).unwrap())
    }

    #[test]
    fn counts_hits_and_misses_and_evicts_lru() {
        let mut v = Vocabulary::new();
        let mut c = PlanCache::new(2);
        assert!(c.get(&"a").is_none());
        c.insert("a", trivial_plan(&mut v, "qa"));
        c.insert("b", trivial_plan(&mut v, "qb"));
        assert!(c.get(&"a").is_some()); // refresh "a"; "b" is now LRU
        c.insert("c", trivial_plan(&mut v, "qc"));
        assert!(c.get(&"b").is_none());
        assert!(c.get(&"c").is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut v = Vocabulary::new();
        let mut c = PlanCache::new(4);
        c.insert("a", trivial_plan(&mut v, "qa"));
        assert!(c.get(&"a").is_some());
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&"a").is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }
}
