//! Equivalence suite: planned execution against the seed evaluator.
//!
//! Random conjunctive queries and ground instances over a small fixed
//! schema; each property asserts that the compiled-plan executor and the
//! preserved dynamic-ordering oracle in [`magik_exec::reference`] compute
//! exactly the same thing — answer sets, boolean `has_answer` probes,
//! homomorphism sets, and errors for unsafe heads.

use std::collections::BTreeSet;

use proptest::prelude::*;

use magik_exec::reference;
use magik_exec::{CompiledQuery, ExecStats};
use magik_relalg::batch::{Batch, BatchPlan, JoinStrategy};
use magik_relalg::exec::{Plan, Projection};
use magik_relalg::{
    answers, freeze_atom, has_answer, homomorphisms, AnswerSet, Atom, Cst, Instance, Query,
    Substitution, Term, Vocabulary,
};

/// Abstract term: materialized against a vocabulary later.
#[derive(Debug, Clone, Copy)]
enum ATerm {
    Var(u8),
    Cst(u8),
}

#[derive(Debug, Clone)]
struct AAtom {
    pred: u8,
    args: Vec<ATerm>,
}

#[derive(Debug, Clone)]
struct AQuery {
    head: Vec<ATerm>,
    body: Vec<AAtom>,
}

const NUM_PREDS: u8 = 3;
const NUM_VARS: u8 = 5;
const NUM_CSTS: u8 = 3;

fn pred_arity(p: u8) -> usize {
    [1, 2, 3][p as usize % 3]
}

fn aterm() -> impl Strategy<Value = ATerm> {
    prop_oneof![
        (0..NUM_VARS).prop_map(ATerm::Var),
        (0..NUM_CSTS).prop_map(ATerm::Cst),
    ]
}

fn aatom() -> impl Strategy<Value = AAtom> {
    (0..NUM_PREDS).prop_flat_map(|p| {
        proptest::collection::vec(aterm(), pred_arity(p))
            .prop_map(move |args| AAtom { pred: p, args })
    })
}

fn aquery(max_body: usize) -> impl Strategy<Value = AQuery> {
    (
        proptest::collection::vec(aterm(), 0..3),
        proptest::collection::vec(aatom(), 0..=max_body),
    )
        .prop_map(|(head, body)| AQuery { head, body })
}

struct Ctx {
    vocab: Vocabulary,
}

impl Ctx {
    fn new() -> Self {
        Ctx {
            vocab: Vocabulary::new(),
        }
    }

    fn term(&mut self, t: ATerm) -> Term {
        match t {
            ATerm::Var(i) => Term::Var(self.vocab.var(&format!("X{i}"))),
            ATerm::Cst(i) => Term::Cst(self.vocab.cst(&format!("c{i}"))),
        }
    }

    fn atom(&mut self, a: &AAtom) -> Atom {
        let pred = self.vocab.pred(&format!("p{}", a.pred), pred_arity(a.pred));
        let args = a.args.iter().map(|&t| self.term(t)).collect();
        Atom::new(pred, args)
    }

    fn query(&mut self, q: &AQuery) -> Query {
        let name = self.vocab.sym("q");
        let head = q.head.iter().map(|&t| self.term(t)).collect();
        let body = q.body.iter().map(|a| self.atom(a)).collect();
        Query::new(name, head, body)
    }

    /// Materializes a ground instance by freezing variables into
    /// constants (gives ground, varied instances).
    fn instance(&mut self, atoms: &[AAtom]) -> Instance {
        atoms
            .iter()
            .map(|a| {
                let atom = self.atom(a);
                freeze_atom(&atom)
            })
            .collect()
    }

    /// The constant pool tuples of a given arity: every candidate target
    /// for a `has_answer` probe (plus the frozen constants the instance
    /// materializer introduces are covered by the answer tuples
    /// themselves).
    fn all_tuples(&mut self, arity: usize) -> Vec<Vec<Cst>> {
        let pool: Vec<Cst> = (0..NUM_CSTS)
            .map(|i| self.vocab.cst(&format!("c{i}")))
            .collect();
        let mut out = vec![Vec::new()];
        for _ in 0..arity {
            out = out
                .into_iter()
                .flat_map(|t| {
                    pool.iter().map(move |&c| {
                        let mut t = t.clone();
                        t.push(c);
                        t
                    })
                })
                .collect();
        }
        out
    }
}

/// Makes a safe variant of a query: drop head terms whose variable is
/// not in the body.
fn safe_head(q: &Query) -> Query {
    let body_vars = q.body_vars();
    let head = q
        .head
        .iter()
        .copied()
        .filter(|t| t.as_var().is_none_or(|v| body_vars.contains(&v)))
        .collect();
    Query::new(q.name, head, q.body.clone())
}

/// Canonical, order-insensitive rendering of a homomorphism set.
fn hom_set(homs: &[Substitution]) -> BTreeSet<String> {
    homs.iter()
        .map(|s| {
            let mut pairs: Vec<(magik_relalg::Var, Term)> = s.iter().collect();
            pairs.sort_by_key(|&(v, _)| v);
            format!("{pairs:?}")
        })
        .collect()
}

/// All three join operators a batch plan can choose from.
const STRATEGIES: [JoinStrategy; 3] = [
    JoinStrategy::NestedLoop,
    JoinStrategy::HashJoin,
    JoinStrategy::MergeJoin,
];

/// Evaluates `query` over `db` through a batch plan with every join op
/// forced to `strategy`, projecting rows through the head exactly like
/// `CompiledQuery::answers` — the harness for operator-equivalence
/// properties.
fn forced_answers(query: &Query, db: &Instance, strategy: JoinStrategy) -> AnswerSet {
    let plan = Plan::compile(&query.body, &BTreeSet::new(), Some(db));
    let head = Projection::compile(&query.head, &plan).unwrap();
    let batch = BatchPlan::with_strategy(&plan, strategy);
    let mut stats = ExecStats::default();
    let out = batch.run(db, Batch::from_seeds(&plan, &[Vec::new()]), &mut stats);
    let mut ans = AnswerSet::new();
    for r in 0..out.len() {
        ans.insert(head.emit_with(&mut |s| out.value(s, r)));
    }
    ans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `magik_relalg::answers` (a compiled plan per call) computes the
    /// seed evaluator's answer set — including the error for unsafe
    /// heads.
    #[test]
    fn planned_answers_match_reference(q in aquery(4), d in proptest::collection::vec(aatom(), 0..8)) {
        let mut ctx = Ctx::new();
        let query = ctx.query(&q);
        let db = ctx.instance(&d);
        match (answers(&query, &db), reference::answers(&query, &db)) {
            (Ok(planned), Ok(oracle)) => prop_assert_eq!(planned, oracle),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (planned, oracle) => prop_assert!(false, "planned {planned:?} vs oracle {oracle:?}"),
        }
    }

    /// A `CompiledQuery` compiled once keeps computing the reference
    /// answer set as the instance it runs over changes (plans fix the
    /// strategy, never the semantics).
    #[test]
    fn compiled_query_matches_reference_across_instances(
        q in aquery(4),
        d1 in proptest::collection::vec(aatom(), 0..6),
        d2 in proptest::collection::vec(aatom(), 0..6),
    ) {
        let mut ctx = Ctx::new();
        let query = safe_head(&ctx.query(&q));
        let small = ctx.instance(&d1);
        let mut big = small.clone();
        big.extend_from(&ctx.instance(&d2));
        // Compile against the small instance's statistics, execute on both.
        let cq = CompiledQuery::compile(&query, Some(&small)).unwrap();
        let mut stats = ExecStats::default();
        prop_assert_eq!(cq.answers(&small, &mut stats), reference::answers(&query, &small).unwrap());
        prop_assert_eq!(cq.answers(&big, &mut stats), reference::answers(&query, &big).unwrap());
        // And a stats-less (shape-heuristic) plan agrees too.
        let blind = CompiledQuery::compile(&query, None).unwrap();
        prop_assert_eq!(blind.answers(&big, &mut stats), reference::answers(&query, &big).unwrap());
    }

    /// `has_answer` (first-match mode over a seeded plan) agrees with the
    /// oracle on *every* candidate tuple over the constant pool, answers
    /// and non-answers alike, plus each actual answer tuple.
    #[test]
    fn has_answer_matches_reference_on_all_candidates(q in aquery(3), d in proptest::collection::vec(aatom(), 0..6)) {
        let mut ctx = Ctx::new();
        let query = safe_head(&ctx.query(&q));
        let db = ctx.instance(&d);
        for tuple in ctx.all_tuples(query.head.len()) {
            prop_assert_eq!(
                has_answer(&query, &db, &tuple),
                reference::has_answer(&query, &db, &tuple),
                "tuple {:?}", tuple
            );
        }
        for tuple in &answers(&query, &db).unwrap() {
            prop_assert!(has_answer(&query, &db, tuple));
        }
    }

    /// The homomorphism enumeration (what containment and the
    /// completeness engine consume) yields the same set of substitutions.
    #[test]
    fn homomorphisms_match_reference(q in aquery(4), d in proptest::collection::vec(aatom(), 0..8)) {
        let mut ctx = Ctx::new();
        let query = ctx.query(&q);
        let db = ctx.instance(&d);
        let planned = homomorphisms(&query.body, &db);
        let oracle = reference::homomorphisms(&query.body, &db);
        prop_assert_eq!(planned.len(), oracle.len());
        prop_assert_eq!(hom_set(&planned), hom_set(&oracle));
    }

    /// Hash join, merge join, and nested loop — each forced across a
    /// whole plan — all compute the reference answer set, and hence agree
    /// with each other and with the cost-model-chosen plan. The small
    /// constant pool makes duplicate-heavy join columns the common case,
    /// and the generators routinely produce empty relations (atoms over
    /// predicates with no facts) and all-constants atoms.
    #[test]
    fn forced_join_strategies_match_reference(
        q in aquery(4),
        d in proptest::collection::vec(aatom(), 0..8),
    ) {
        let mut ctx = Ctx::new();
        let query = safe_head(&ctx.query(&q));
        let db = ctx.instance(&d);
        let oracle = reference::answers(&query, &db).unwrap();
        for strategy in STRATEGIES {
            prop_assert_eq!(
                forced_answers(&query, &db, strategy),
                oracle.clone(),
                "strategy {:?}",
                strategy
            );
        }
    }
}

/// The shapes most likely to break a join operator, pinned
/// deterministically: a join against an *empty* relation, a join on a
/// *duplicate-heavy* column (every build row shares the key), and an
/// *all-constants* atom (no binds, pure existence filter). All three
/// operators must agree with the oracle on each.
#[test]
fn forced_strategies_cover_edge_shapes() {
    let mut v = Vocabulary::new();
    let e = v.pred("e", 2);
    let none = v.pred("none", 2);
    let (a, b) = (v.cst("a"), v.cst("b"));
    let mut db = Instance::new();
    // Column 0 of `e` holds a single value — maximal duplication.
    db.insert(magik_relalg::Fact::new(e, vec![a, b]));
    for i in 0..12 {
        db.insert(magik_relalg::Fact::new(e, vec![a, v.cst(&format!("t{i}"))]));
    }
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let queries = [
        // Duplicate-heavy self-join on the constant column.
        Query::new(
            v.sym("dup"),
            vec![Term::Var(y), Term::Var(z)],
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(e, vec![Term::Var(x), Term::Var(z)]),
            ],
        ),
        // Join into a relation with no facts at all: zero answers.
        Query::new(
            v.sym("empty"),
            vec![Term::Var(x)],
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(none, vec![Term::Var(y), Term::Var(z)]),
            ],
        ),
        // All-constants atom alongside a bound join.
        Query::new(
            v.sym("consts"),
            vec![Term::Var(y)],
            vec![
                Atom::new(e, vec![Term::Cst(a), Term::Cst(b)]),
                Atom::new(e, vec![Term::Cst(a), Term::Var(y)]),
            ],
        ),
    ];
    for query in &queries {
        let oracle = reference::answers(query, &db).unwrap();
        for strategy in STRATEGIES {
            assert_eq!(
                forced_answers(query, &db, strategy),
                oracle,
                "query {:?} strategy {strategy:?}",
                query.name
            );
        }
    }
}
