//! Equivalence suite: planned execution against the seed evaluator.
//!
//! Random conjunctive queries and ground instances over a small fixed
//! schema; each property asserts that the compiled-plan executor and the
//! preserved dynamic-ordering oracle in [`magik_exec::reference`] compute
//! exactly the same thing — answer sets, boolean `has_answer` probes,
//! homomorphism sets, and errors for unsafe heads.

use std::collections::BTreeSet;

use proptest::prelude::*;

use magik_exec::reference;
use magik_exec::{CompiledQuery, ExecStats};
use magik_relalg::{
    answers, freeze_atom, has_answer, homomorphisms, Atom, Cst, Instance, Query, Substitution,
    Term, Vocabulary,
};

/// Abstract term: materialized against a vocabulary later.
#[derive(Debug, Clone, Copy)]
enum ATerm {
    Var(u8),
    Cst(u8),
}

#[derive(Debug, Clone)]
struct AAtom {
    pred: u8,
    args: Vec<ATerm>,
}

#[derive(Debug, Clone)]
struct AQuery {
    head: Vec<ATerm>,
    body: Vec<AAtom>,
}

const NUM_PREDS: u8 = 3;
const NUM_VARS: u8 = 5;
const NUM_CSTS: u8 = 3;

fn pred_arity(p: u8) -> usize {
    [1, 2, 3][p as usize % 3]
}

fn aterm() -> impl Strategy<Value = ATerm> {
    prop_oneof![
        (0..NUM_VARS).prop_map(ATerm::Var),
        (0..NUM_CSTS).prop_map(ATerm::Cst),
    ]
}

fn aatom() -> impl Strategy<Value = AAtom> {
    (0..NUM_PREDS).prop_flat_map(|p| {
        proptest::collection::vec(aterm(), pred_arity(p))
            .prop_map(move |args| AAtom { pred: p, args })
    })
}

fn aquery(max_body: usize) -> impl Strategy<Value = AQuery> {
    (
        proptest::collection::vec(aterm(), 0..3),
        proptest::collection::vec(aatom(), 0..=max_body),
    )
        .prop_map(|(head, body)| AQuery { head, body })
}

struct Ctx {
    vocab: Vocabulary,
}

impl Ctx {
    fn new() -> Self {
        Ctx {
            vocab: Vocabulary::new(),
        }
    }

    fn term(&mut self, t: ATerm) -> Term {
        match t {
            ATerm::Var(i) => Term::Var(self.vocab.var(&format!("X{i}"))),
            ATerm::Cst(i) => Term::Cst(self.vocab.cst(&format!("c{i}"))),
        }
    }

    fn atom(&mut self, a: &AAtom) -> Atom {
        let pred = self.vocab.pred(&format!("p{}", a.pred), pred_arity(a.pred));
        let args = a.args.iter().map(|&t| self.term(t)).collect();
        Atom::new(pred, args)
    }

    fn query(&mut self, q: &AQuery) -> Query {
        let name = self.vocab.sym("q");
        let head = q.head.iter().map(|&t| self.term(t)).collect();
        let body = q.body.iter().map(|a| self.atom(a)).collect();
        Query::new(name, head, body)
    }

    /// Materializes a ground instance by freezing variables into
    /// constants (gives ground, varied instances).
    fn instance(&mut self, atoms: &[AAtom]) -> Instance {
        atoms
            .iter()
            .map(|a| {
                let atom = self.atom(a);
                freeze_atom(&atom)
            })
            .collect()
    }

    /// The constant pool tuples of a given arity: every candidate target
    /// for a `has_answer` probe (plus the frozen constants the instance
    /// materializer introduces are covered by the answer tuples
    /// themselves).
    fn all_tuples(&mut self, arity: usize) -> Vec<Vec<Cst>> {
        let pool: Vec<Cst> = (0..NUM_CSTS)
            .map(|i| self.vocab.cst(&format!("c{i}")))
            .collect();
        let mut out = vec![Vec::new()];
        for _ in 0..arity {
            out = out
                .into_iter()
                .flat_map(|t| {
                    pool.iter().map(move |&c| {
                        let mut t = t.clone();
                        t.push(c);
                        t
                    })
                })
                .collect();
        }
        out
    }
}

/// Makes a safe variant of a query: drop head terms whose variable is
/// not in the body.
fn safe_head(q: &Query) -> Query {
    let body_vars = q.body_vars();
    let head = q
        .head
        .iter()
        .copied()
        .filter(|t| t.as_var().is_none_or(|v| body_vars.contains(&v)))
        .collect();
    Query::new(q.name, head, q.body.clone())
}

/// Canonical, order-insensitive rendering of a homomorphism set.
fn hom_set(homs: &[Substitution]) -> BTreeSet<String> {
    homs.iter()
        .map(|s| {
            let mut pairs: Vec<(magik_relalg::Var, Term)> = s.iter().collect();
            pairs.sort_by_key(|&(v, _)| v);
            format!("{pairs:?}")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `magik_relalg::answers` (a compiled plan per call) computes the
    /// seed evaluator's answer set — including the error for unsafe
    /// heads.
    #[test]
    fn planned_answers_match_reference(q in aquery(4), d in proptest::collection::vec(aatom(), 0..8)) {
        let mut ctx = Ctx::new();
        let query = ctx.query(&q);
        let db = ctx.instance(&d);
        match (answers(&query, &db), reference::answers(&query, &db)) {
            (Ok(planned), Ok(oracle)) => prop_assert_eq!(planned, oracle),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (planned, oracle) => prop_assert!(false, "planned {planned:?} vs oracle {oracle:?}"),
        }
    }

    /// A `CompiledQuery` compiled once keeps computing the reference
    /// answer set as the instance it runs over changes (plans fix the
    /// strategy, never the semantics).
    #[test]
    fn compiled_query_matches_reference_across_instances(
        q in aquery(4),
        d1 in proptest::collection::vec(aatom(), 0..6),
        d2 in proptest::collection::vec(aatom(), 0..6),
    ) {
        let mut ctx = Ctx::new();
        let query = safe_head(&ctx.query(&q));
        let small = ctx.instance(&d1);
        let mut big = small.clone();
        big.extend_from(&ctx.instance(&d2));
        // Compile against the small instance's statistics, execute on both.
        let cq = CompiledQuery::compile(&query, Some(&small)).unwrap();
        let mut stats = ExecStats::default();
        prop_assert_eq!(cq.answers(&small, &mut stats), reference::answers(&query, &small).unwrap());
        prop_assert_eq!(cq.answers(&big, &mut stats), reference::answers(&query, &big).unwrap());
        // And a stats-less (shape-heuristic) plan agrees too.
        let blind = CompiledQuery::compile(&query, None).unwrap();
        prop_assert_eq!(blind.answers(&big, &mut stats), reference::answers(&query, &big).unwrap());
    }

    /// `has_answer` (first-match mode over a seeded plan) agrees with the
    /// oracle on *every* candidate tuple over the constant pool, answers
    /// and non-answers alike, plus each actual answer tuple.
    #[test]
    fn has_answer_matches_reference_on_all_candidates(q in aquery(3), d in proptest::collection::vec(aatom(), 0..6)) {
        let mut ctx = Ctx::new();
        let query = safe_head(&ctx.query(&q));
        let db = ctx.instance(&d);
        for tuple in ctx.all_tuples(query.head.len()) {
            prop_assert_eq!(
                has_answer(&query, &db, &tuple),
                reference::has_answer(&query, &db, &tuple),
                "tuple {:?}", tuple
            );
        }
        for tuple in &answers(&query, &db).unwrap() {
            prop_assert!(has_answer(&query, &db, tuple));
        }
    }

    /// The homomorphism enumeration (what containment and the
    /// completeness engine consume) yields the same set of substitutions.
    #[test]
    fn homomorphisms_match_reference(q in aquery(4), d in proptest::collection::vec(aatom(), 0..8)) {
        let mut ctx = Ctx::new();
        let query = ctx.query(&q);
        let db = ctx.instance(&d);
        let planned = homomorphisms(&query.body, &db);
        let oracle = reference::homomorphisms(&query.body, &db);
        prop_assert_eq!(planned.len(), oracle.len());
        prop_assert_eq!(hom_set(&planned), hom_set(&oracle));
    }
}
