//! Shared helpers for the benchmark harness.
//!
//! The actual experiments live in `benches/` (criterion microbenchmarks,
//! one per experiment id of `DESIGN.md`) and in `src/bin/table1.rs` (the
//! end-to-end reproduction of the paper's Table 1).
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

use magik::{k_mcs, KMcsEngine, KMcsOptions, KMcsOutcome, Query, TcSet, Vocabulary};

/// One row cell of the Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct KMcsMeasurement {
    /// The k that was run.
    pub k: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Full outcome (result queries + search statistics).
    pub outcome: KMcsOutcome,
}

/// Runs the k-MCS computation once and measures it.
pub fn measure_k_mcs(
    q: &Query,
    tcs: &TcSet,
    vocab: &mut Vocabulary,
    k: usize,
    engine: KMcsEngine,
    max_unify_calls: u64,
) -> KMcsMeasurement {
    let start = Instant::now();
    let outcome = k_mcs(
        q,
        tcs,
        vocab,
        KMcsOptions {
            engine,
            max_unify_calls,
            ..KMcsOptions::new(k)
        },
    );
    KMcsMeasurement {
        k,
        elapsed: start.elapsed(),
        outcome,
    }
}

/// Formats a duration the way the harness tables print it.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 100.0 {
        format!("{secs:.0}")
    } else if secs >= 1.0 {
        format!("{secs:.1}")
    } else if secs >= 0.001 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{:.0}us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_duration_picks_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(1.23)), "1.2");
        assert_eq!(fmt_duration(Duration::from_secs(500)), "500");
    }

    #[test]
    fn measure_reports_outcome() {
        let mut w = magik::workload::paper::table1();
        let m = measure_k_mcs(
            &w.q_l,
            &w.tcs,
            &mut w.vocab,
            0,
            KMcsEngine::Optimized,
            u64::MAX,
        );
        assert!(m.outcome.complete_search);
        assert!(m.outcome.queries.is_empty());
    }
}
