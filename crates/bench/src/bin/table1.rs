//! Reproduction of **Table 1** of *Complete Approximations of Incomplete
//! Queries*: "Time required for the specialization algorithm to compute
//! k-MCS of query Q_l", k = 0 … 7.
//!
//! The paper ran its (optimized) SWI-Prolog implementation on a 2013
//! Core i7 and reported 0, 0, 0, 0, 0, 8, 725, 9083 seconds — exponential
//! growth in k. Absolute numbers are not comparable across substrates and
//! hardware; the reproduction target is the *shape*: runtime multiplying
//! by roughly the signature size |Σ_C| per unit of k for the naive
//! engine, with the Section 5 optimizations flattening the curve.
//!
//! ```text
//! table1 [--max-k N] [--budget CALLS] [--compare] [--satisfiable]
//!   --max-k N      sweep k = 0..=N (default 7)
//!   --budget M     abort a run after M unification calls (default unlimited)
//!   --compare      also run the optimized engine (ablation A4)
//!   --satisfiable  use the satisfiable workload variant (MCSs exist)
//! ```

use std::process::ExitCode;

use magik::workload::paper::{table1, table1_satisfiable};
use magik::KMcsEngine;
use magik_bench::{fmt_duration, measure_k_mcs, KMcsMeasurement};

struct Args {
    max_k: usize,
    budget: u64,
    compare: bool,
    satisfiable: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        max_k: 7,
        budget: u64::MAX,
        compare: false,
        satisfiable: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-k" => {
                args.max_k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-k needs an integer")?;
            }
            "--budget" => {
                args.budget = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--budget needs an integer")?;
            }
            "--compare" => args.compare = true,
            "--satisfiable" => args.satisfiable = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn print_row(label: &str, cells: &[String]) {
    print!("| {label:<22} |");
    for c in cells {
        print!(" {c:>8} |");
    }
    println!();
}

fn run_engine(label: &str, engine: KMcsEngine, args: &Args) -> Vec<KMcsMeasurement> {
    let mut out = Vec::new();
    for k in 0..=args.max_k {
        let mut w = if args.satisfiable {
            table1_satisfiable()
        } else {
            table1()
        };
        let m = measure_k_mcs(&w.q_l, &w.tcs, &mut w.vocab, k, engine, args.budget);
        eprintln!(
            "[{label}] k = {k}: {} ({} extensions, {} unify calls, {} candidates, {} results{})",
            fmt_duration(m.elapsed),
            m.outcome.stats.extensions,
            m.outcome.stats.unify_calls,
            m.outcome.stats.candidates,
            m.outcome.queries.len(),
            if m.outcome.complete_search {
                ""
            } else {
                ", TRUNCATED"
            }
        );
        out.push(m);
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("table1: {e}");
            return ExitCode::from(1);
        }
    };

    println!(
        "Table 1 reproduction — k-MCS of Q_l(N) :- learns(N, L) over the \
         Section 5 statement set{}",
        if args.satisfiable {
            " (satisfiable variant)"
        } else {
            ""
        }
    );
    println!();

    let ks: Vec<String> = (0..=args.max_k).map(|k| k.to_string()).collect();
    print_row("k-MCS", &ks);

    // Paper-reported row, for side-by-side comparison.
    let paper = [0, 0, 0, 0, 0, 8, 725, 9083];
    let paper_cells: Vec<String> = (0..=args.max_k)
        .map(|k| {
            paper
                .get(k)
                .map_or_else(|| "-".to_owned(), std::string::ToString::to_string)
        })
        .collect();
    if !args.satisfiable {
        print_row("paper CPU time (s)", &paper_cells);
    }

    let naive = run_engine("naive", KMcsEngine::Naive, &args);
    print_row(
        "naive engine (this)",
        &naive
            .iter()
            .map(|m| {
                let mut s = fmt_duration(m.elapsed);
                if !m.outcome.complete_search {
                    s.push('*');
                }
                s
            })
            .collect::<Vec<_>>(),
    );
    print_row(
        "  unify calls",
        &naive
            .iter()
            .map(|m| m.outcome.stats.unify_calls.to_string())
            .collect::<Vec<_>>(),
    );
    print_row(
        "  results",
        &naive
            .iter()
            .map(|m| m.outcome.queries.len().to_string())
            .collect::<Vec<_>>(),
    );

    if args.compare {
        let optimized = run_engine("optimized", KMcsEngine::Optimized, &args);
        print_row(
            "optimized engine",
            &optimized
                .iter()
                .map(|m| {
                    let mut s = fmt_duration(m.elapsed);
                    if !m.outcome.complete_search {
                        s.push('*');
                    }
                    s
                })
                .collect::<Vec<_>>(),
        );
        print_row(
            "  unify calls",
            &optimized
                .iter()
                .map(|m| m.outcome.stats.unify_calls.to_string())
                .collect::<Vec<_>>(),
        );
        print_row(
            "  results",
            &optimized
                .iter()
                .map(|m| m.outcome.queries.len().to_string())
                .collect::<Vec<_>>(),
        );

        // The two engines must agree on the number of k-MCSs.
        for (n, o) in naive.iter().zip(&optimized) {
            if n.outcome.complete_search
                && o.outcome.complete_search
                && n.outcome.queries.len() != o.outcome.queries.len()
            {
                eprintln!(
                    "table1: ENGINE MISMATCH at k = {}: naive {} vs optimized {}",
                    n.k,
                    n.outcome.queries.len(),
                    o.outcome.queries.len()
                );
                return ExitCode::from(2);
            }
        }
    }

    println!("\n(* = search truncated by --budget)");
    ExitCode::SUCCESS
}
