//! Experiment A13 — columnar batch execution vs the tuple-at-a-time
//! executor.
//!
//! Three comparisons, each batch-vs-tuple on identical inputs:
//!
//! * **mixed_traffic** — the workload crate's deterministic eval/churn
//!   stream (A7/A8 shape: the school instance, `Q_ppb`/`Q_pbl`, 90/10
//!   eval-to-churn) driven through [`ExecMode::Batch`] vs
//!   [`ExecMode::Tuple`].
//! * **delta_round/tc_chain** — one semi-naive delta round of the A9
//!   transitive-closure chain: the whole round's seeds through
//!   `CompiledBody::derive_batch` vs one `for_each_derivation` call per
//!   seed (the pre-vectorization inner loop).
//! * **delta_round/labeled_tc** — the same round shape on the A9 TC
//!   workload generalized to labeled edges (label-constrained
//!   reachability): the body joins `edge(Y, Z, L)` on the **two-column**
//!   key `(Y, L)`, where every single-column index bucket is large but
//!   the combined key is selective. This is where the batch executor's
//!   runtime-chosen hash join beats per-row bucket probing
//!   asymptotically — the ≥3x acceptance bar of ISSUE 8 is measured
//!   here.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use magik::exec::CompiledBody;
use magik::workload::traffic::{drive, school_traffic, ExecMode, TrafficConfig};
use magik::{Atom, Cst, ExecStats, Fact, Instance, Term, Var, Vocabulary};

fn bench_mixed_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_batch/mixed_traffic");
    let traffic = school_traffic(TrafficConfig::default());
    group.throughput(Throughput::Elements(traffic.ops.len() as u64));
    for mode in [ExecMode::Batch, ExecMode::Tuple] {
        let name = match mode {
            ExecMode::Batch => "batch",
            ExecMode::Tuple => "tuple",
        };
        group.bench_with_input(
            BenchmarkId::new(name, traffic.ops.len()),
            &traffic,
            |b, t| {
                b.iter(|| drive(t, mode).answers);
            },
        );
    }
    group.finish();
}

/// A delta-round fixture: a compiled rule body plus one round's seeds.
struct Round {
    body: CompiledBody,
    db: Instance,
    seeds: Vec<Vec<(Var, Cst)>>,
}

/// One semi-naive round of the A9 TC chain (`path(X,Z) :- path(X,Y),
/// edge(Y,Z)` pivoted on `path`): the delta is the `edge` relation
/// itself (round 1), each seed deriving at most one tuple.
fn tc_chain_round(n: usize) -> Round {
    let mut v = Vocabulary::new();
    let edge = v.pred("edge", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let mut db = Instance::new();
    for i in 0..n {
        db.insert(Fact::new(
            edge,
            vec![v.cst(&format!("n{i}")), v.cst(&format!("n{}", i + 1))],
        ));
    }
    let bound: BTreeSet<Var> = [x, y].into_iter().collect();
    let body = CompiledBody::compile(
        &[Term::Var(x), Term::Var(z)],
        &[Atom::new(edge, vec![Term::Var(y), Term::Var(z)])],
        &[],
        &bound,
        Some(&db),
    )
    .unwrap();
    let seeds = db
        .relation(edge)
        .unwrap()
        .iter()
        .map(|r| vec![(x, r.get(0)), (y, r.get(1))])
        .collect();
    Round { body, db, seeds }
}

/// One semi-naive round of label-constrained TC (`path(X,Z,L) :-
/// path(X,Y,L), edge(Y,Z,L)` pivoted on `path`): `nodes` nodes,
/// `labels` labels, `deg` out-edges per (node, label). The body joins
/// `edge` on the two-column key `(Y, L)`.
fn labeled_tc_round(nodes: usize, labels: usize, deg: usize) -> Round {
    let mut v = Vocabulary::new();
    let edge = v.pred("edge", 3);
    let (x, y, z, l) = (v.var("X"), v.var("Y"), v.var("Z"), v.var("L"));
    let mut db = Instance::new();
    for ni in 0..nodes {
        for li in 0..labels {
            for d in 0..deg {
                let dst = (ni * 7 + li * 3 + d + 1) % nodes;
                db.insert(Fact::new(
                    edge,
                    vec![
                        v.cst(&format!("n{ni}")),
                        v.cst(&format!("n{dst}")),
                        v.cst(&format!("l{li}")),
                    ],
                ));
            }
        }
    }
    let bound: BTreeSet<Var> = [x, y, l].into_iter().collect();
    let body = CompiledBody::compile(
        &[Term::Var(x), Term::Var(z), Term::Var(l)],
        &[Atom::new(
            edge,
            vec![Term::Var(y), Term::Var(z), Term::Var(l)],
        )],
        &[],
        &bound,
        Some(&db),
    )
    .unwrap();
    // The round-1 delta: path(X,Y,L) = the edges themselves.
    let seeds = db
        .relation(edge)
        .unwrap()
        .iter()
        .map(|r| vec![(x, r.get(0)), (y, r.get(1)), (l, r.get(2))])
        .collect();
    Round { body, db, seeds }
}

fn bench_round(group_name: &str, c: &mut Criterion, round: &Round) {
    let mut group = c.benchmark_group(group_name);
    group.throughput(Throughput::Elements(round.seeds.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("batch", round.seeds.len()),
        round,
        |b, rd| {
            b.iter(|| {
                let mut stats = ExecStats::default();
                let mut n = 0usize;
                rd.body
                    .derive_batch(&rd.db, &rd.seeds, &mut stats, &mut |_| n += 1);
                n
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("tuple", round.seeds.len()),
        round,
        |b, rd| {
            b.iter(|| {
                let mut stats = ExecStats::default();
                let mut n = 0usize;
                for seed in &rd.seeds {
                    rd.body
                        .for_each_derivation(&rd.db, seed, &mut stats, &mut |_| n += 1);
                }
                n
            });
        },
    );
    group.finish();
}

fn bench_delta_rounds(c: &mut Criterion) {
    let chain = tc_chain_round(4096);
    bench_round("columnar_batch/delta_round_tc_chain", c, &chain);
    // 64 nodes x 64 labels x 4 out-edges: 16384 edge facts; single-column
    // buckets of ~256 rows, combined (Y, L) buckets of ~4.
    let labeled = labeled_tc_round(64, 64, 4);
    bench_round("columnar_batch/delta_round_labeled_tc", c, &labeled);
}

criterion_group!(benches, bench_mixed_traffic, bench_delta_rounds);
criterion_main!(benches);
