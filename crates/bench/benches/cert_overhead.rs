//! Experiment A14 — certificate-emission overhead.
//!
//! Proof-carrying verdicts must not tax callers that never look at the
//! evidence. Three layers are measured:
//!
//! * **complete polarity** — the plain Theorem 3 decision
//!   (`is_complete`) against `certify` on a query every atom of which
//!   is covered, so the certificate is the witnessing binding plus one
//!   derivation tree per atom and no repair search runs. This is the
//!   pure emission overhead, expected within a small constant factor
//!   (≤2x) of the bare verdict, and against `certify` +
//!   `check_certificate` (emission plus independent re-validation by
//!   the trusted checker).
//! * **incomplete polarity** — the same pair on random workloads that
//!   fail the check. Here `certify` deliberately does more than decide:
//!   the greedy-then-minimize repair search costs up to 2·|C| extra
//!   Theorem 3 checks, so the measured factor tracks |C|, not the
//!   emission machinery. Reported separately so that cost is never
//!   confused with proof-recording overhead.
//! * **provenance** — the Datalog fixpoint with proofs off
//!   (`eval_semi_naive`, the allocation-free hot path) against the
//!   proof-recording run (`provenance`) on a transitive-closure chain.
//!   Proofs-off must be unaffected by the existence of the provenance
//!   machinery; proofs-on pays one justification per derived fact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use magik::datalog::{Program, Rule};
use magik::workload::random::{
    acyclic_tcs, covering_tcs, query, QueryShape, RandomQueryConfig, RandomTcsConfig,
};
use magik::{
    cert_statements, certify, check_certificate, is_complete, Atom, Certificate, Fact, Instance,
    Term, Vocabulary,
};

fn bench_polarity(
    c: &mut Criterion,
    name: &str,
    workloads: &[(usize, magik::Query, magik::TcSet)],
) {
    let mut group = c.benchmark_group(format!("cert_overhead/{name}"));
    for (size, q, tcs) in workloads {
        group.bench_with_input(BenchmarkId::new("plain", size), size, |b, _| {
            b.iter(|| is_complete(q, tcs));
        });
        group.bench_with_input(BenchmarkId::new("certify", size), size, |b, _| {
            b.iter(|| certify(q, tcs));
        });
        let cert_stmts = cert_statements(tcs);
        group.bench_with_input(BenchmarkId::new("certify_and_check", size), size, |b, _| {
            b.iter(|| {
                let cert = certify(q, tcs);
                check_certificate(q, &cert_stmts, &cert).expect("emitted certificate");
                cert
            });
        });
    }
    group.finish();
}

fn bench_complete_polarity(c: &mut Criterion) {
    let workloads: Vec<_> = [2usize, 4, 8]
        .into_iter()
        .map(|atoms| {
            let mut vocab = Vocabulary::new();
            let q = query(
                RandomQueryConfig {
                    shape: QueryShape::Chain,
                    atoms,
                    relations: atoms,
                    ..RandomQueryConfig::default()
                },
                &mut vocab,
            );
            let tcs = covering_tcs(atoms, atoms, &mut vocab);
            assert!(is_complete(&q, &tcs), "workload must be complete");
            (atoms, q, tcs)
        })
        .collect();
    bench_polarity(c, "complete", &workloads);
}

fn bench_incomplete_polarity(c: &mut Criterion) {
    let workloads: Vec<_> = [4usize, 16, 64]
        .into_iter()
        .map(|statements| {
            let mut vocab = Vocabulary::new();
            let q = query(
                RandomQueryConfig {
                    shape: QueryShape::Chain,
                    atoms: 8,
                    relations: 4,
                    ..RandomQueryConfig::default()
                },
                &mut vocab,
            );
            let tcs = acyclic_tcs(
                RandomTcsConfig {
                    statements,
                    relations: 4,
                    max_condition: 2,
                    seed: 3,
                },
                &mut vocab,
            );
            let cert = certify(&q, &tcs);
            assert!(
                matches!(cert, Certificate::Incomplete { .. }),
                "workload must be incomplete"
            );
            (statements, q, tcs)
        })
        .collect();
    bench_polarity(c, "incomplete", &workloads);
}

/// One transitive-closure chain of `len` edges: a model whose derived
/// paths grow quadratically, so proof recording has real work to do.
fn chain(len: usize) -> (Program, Instance) {
    let mut v = Vocabulary::new();
    let edge = v.pred("edge", 2);
    let path = v.pred("path", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let program = Program::new(vec![
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
        ),
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
            vec![
                Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(edge, vec![Term::Var(y), Term::Var(z)]),
            ],
        ),
    ])
    .unwrap();
    let mut edb = Instance::new();
    for i in 0..len {
        edb.insert(Fact::new(
            edge,
            vec![v.cst(&format!("n{i}")), v.cst(&format!("n{}", i + 1))],
        ));
    }
    (program, edb)
}

fn bench_provenance_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("cert_overhead/provenance");
    for len in [16usize, 64] {
        let (program, edb) = chain(len);
        let model_len = program.eval_semi_naive(&edb).model.len();
        group.throughput(Throughput::Elements(model_len as u64));
        group.bench_with_input(
            BenchmarkId::new("proofs_off", model_len),
            &model_len,
            |b, _| b.iter(|| program.eval_semi_naive(&edb)),
        );
        group.bench_with_input(
            BenchmarkId::new("proofs_on", model_len),
            &model_len,
            |b, _| b.iter(|| program.provenance(&edb)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_complete_polarity,
    bench_incomplete_polarity,
    bench_provenance_overhead
);
criterion_main!(benches);
