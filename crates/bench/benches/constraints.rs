//! Experiment A6 — finite-domain constraint reasoning (the CIKM'15
//! extension): cost of the case-split completeness check as a function of
//! the number of constrained variables and the domain size.
//!
//! The number of cases is `|dom|^(constrained vars)`; the bench verifies
//! the check stays usable in the regimes the paper's follow-up targets
//! (few constrained attributes, small enumerated domains).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use magik::{
    is_complete_under, Atom, ConstraintSet, FiniteDomain, Query, TcSet, TcStatement, Term,
    Vocabulary,
};

/// Builds a workload with `vars` constrained variables, each over a
/// domain of `dom` values: a chain of `vars` relations, each with one
/// statement per domain value (so the query is complete and the check
/// must visit every case).
fn workload(vars: usize, dom: usize) -> (Vocabulary, TcSet, Query, ConstraintSet) {
    let mut v = Vocabulary::new();
    let mut statements = Vec::new();
    let mut constraints = ConstraintSet::default();
    let mut body = Vec::new();
    for i in 0..vars {
        let pred = v.pred(&format!("r{i}"), 2);
        let x = v.var(&format!("K{i}"));
        let y = v.var(&format!("V{i}"));
        body.push(Atom::new(pred, vec![Term::Var(x), Term::Var(y)]));
        constraints.push(FiniteDomain {
            pred,
            column: 0,
            values: (0..dom).map(|d| v.cst(&format!("d{d}"))).collect(),
        });
        for d in 0..dom {
            let value = v.cst(&format!("d{d}"));
            let z = v.var(&format!("Z{i}_{d}"));
            statements.push(TcStatement::new(
                Atom::new(pred, vec![Term::Cst(value), Term::Var(z)]),
                vec![],
            ));
        }
    }
    let q = Query::boolean(v.sym("q"), body);
    (v, TcSet::new(statements), q, constraints)
}

fn bench_case_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraints/case_split");
    for vars in [1usize, 2, 4, 6] {
        for dom in [2usize, 3] {
            let (_v, tcs, q, constraints) = workload(vars, dom);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{vars}vars_x_{dom}dom")),
                &(),
                |b, ()| {
                    b.iter(|| {
                        assert!(is_complete_under(&q, &tcs, &constraints));
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_case_split);
criterion_main!(benches);
