//! Experiment A3 — containment checking (Proposition 6).
//!
//! The homomorphism search that underlies everything else: self-
//! containment of chain, star, cycle and random queries of growing size,
//! plus the hard cross-checks between cycles of coprime lengths (where
//! no homomorphism exists and the search must exhaust).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use magik::workload::random::{query, QueryShape, RandomQueryConfig};
use magik::{is_contained_in, Atom, Query, Term, Vocabulary};

fn bench_self_containment(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment/self");
    for shape in [
        QueryShape::Chain,
        QueryShape::Star,
        QueryShape::Cycle,
        QueryShape::Random,
    ] {
        for atoms in [4usize, 8, 16] {
            let mut vocab = Vocabulary::new();
            let q = query(
                RandomQueryConfig {
                    shape,
                    atoms,
                    relations: 2,
                    ..RandomQueryConfig::default()
                },
                &mut vocab,
            );
            group.bench_with_input(BenchmarkId::new(format!("{shape:?}"), atoms), &q, |b, q| {
                b.iter(|| assert!(is_contained_in(q, q)));
            });
        }
    }
    group.finish();
}

fn cycle_query(vocab: &mut Vocabulary, len: usize, tag: &str) -> Query {
    let conn = vocab.pred("conn", 2);
    let vars: Vec<_> = (0..len).map(|i| vocab.var(&format!("{tag}{i}"))).collect();
    let body = (0..len)
        .map(|i| {
            Atom::new(
                conn,
                vec![Term::Var(vars[i]), Term::Var(vars[(i + 1) % len])],
            )
        })
        .collect();
    Query::new(vocab.sym("q"), vec![Term::Var(vars[0])], body)
}

fn bench_coprime_cycles(c: &mut Criterion) {
    // No homomorphism between cycles of coprime length: worst case for
    // the backtracking search.
    let mut group = c.benchmark_group("containment/coprime_cycles");
    for (a, b) in [(3usize, 4usize), (5, 7), (7, 9), (9, 11)] {
        let mut vocab = Vocabulary::new();
        let qa = cycle_query(&mut vocab, a, "A");
        let qb = cycle_query(&mut vocab, b, "B");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{a}x{b}")),
            &(qa, qb),
            |bench, (qa, qb)| bench.iter(|| assert!(!is_contained_in(qa, qb))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_self_containment, bench_coprime_cycles);
criterion_main!(benches);
