//! Experiment A9 — compiled plan IR vs the seed dynamic-ordering
//! evaluator.
//!
//! Three comparisons, each planned-vs-reference on the same inputs:
//!
//! * **single_shot** — one `answers` call per iteration; the planned side
//!   pays compilation every time (the CLI `eval` path).
//! * **repeated** — the same query executed 32× per iteration; the
//!   planned side compiles once and reuses the plan (the server
//!   plan-cache hit path). This is where plans must earn >1.2×.
//! * **fixpoint** — semi-naive evaluation with per-(rule, pivot) compiled
//!   delta plans vs the seed naive fixpoint that re-plans each body at
//!   every search node of every round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use magik::datalog::{Program, Rule};
use magik::exec::reference;
use magik::workload::paper::school;
use magik::workload::synth::{school_instance, SchoolDataConfig};
use magik::{answers, Atom, CompiledQuery, ExecStats, Fact, Instance, Term, Vocabulary};

fn school_db(schools: usize) -> (magik::relalg::Query, Instance) {
    let w = school();
    let mut vocab = w.vocab.clone();
    let db = school_instance(
        &w,
        &mut vocab,
        SchoolDataConfig {
            schools,
            pupils_per_school: 20,
            learn_prob: 0.4,
            seed: 7,
        },
    );
    (w.q_pbl, db)
}

fn bench_single_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_plans/single_shot");
    for schools in [16usize, 64] {
        let (q, db) = school_db(schools);
        group.throughput(Throughput::Elements(db.len() as u64));
        group.bench_with_input(BenchmarkId::new("planned", db.len()), &db, |b, db| {
            b.iter(|| answers(&q, db).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("reference", db.len()), &db, |b, db| {
            b.iter(|| reference::answers(&q, db).unwrap());
        });
    }
    group.finish();
}

fn bench_repeated(c: &mut Criterion) {
    const REPS: usize = 32;
    let mut group = c.benchmark_group("exec_plans/repeated");
    for schools in [16usize, 64] {
        let (q, db) = school_db(schools);
        let compiled = CompiledQuery::compile(&q, Some(&db)).unwrap();
        group.throughput(Throughput::Elements(REPS as u64));
        group.bench_with_input(BenchmarkId::new("planned", db.len()), &db, |b, db| {
            b.iter(|| {
                let mut stats = ExecStats::default();
                let mut total = 0usize;
                for _ in 0..REPS {
                    total += compiled.answers(db, &mut stats).len();
                }
                total
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", db.len()), &db, |b, db| {
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..REPS {
                    total += reference::answers(&q, db).unwrap().len();
                }
                total
            });
        });
    }
    group.finish();
}

/// Transitive closure over a chain of `n` edges.
fn tc_workload(n: usize) -> (Program, Vec<(Atom, Vec<Atom>)>, Instance) {
    let mut v = Vocabulary::new();
    let edge = v.pred("edge", 2);
    let path = v.pred("path", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let rules = vec![
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
        ),
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
            vec![
                Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(edge, vec![Term::Var(y), Term::Var(z)]),
            ],
        ),
    ];
    let positive: Vec<(Atom, Vec<Atom>)> = rules
        .iter()
        .map(|r| (r.head.clone(), r.body.clone()))
        .collect();
    let program = Program::new(rules).unwrap();
    let mut edb = Instance::new();
    for i in 0..n {
        edb.insert(Fact::new(
            edge,
            vec![v.cst(&format!("n{i}")), v.cst(&format!("n{}", i + 1))],
        ));
    }
    (program, positive, edb)
}

fn bench_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_plans/fixpoint");
    for n in [16usize, 48] {
        let (program, positive, edb) = tc_workload(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("semi_naive", n), &edb, |b, edb| {
            b.iter(|| program.eval_semi_naive(edb).model.len());
        });
        group.bench_with_input(BenchmarkId::new("reference_naive", n), &edb, |b, edb| {
            b.iter(|| reference::naive_fixpoint(&positive, edb).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_shot, bench_repeated, bench_fixpoint);
criterion_main!(benches);
