//! Server throughput: requests/second over the real TCP front end.
//!
//! Three request mixes, each at 1, 2, 4 and 8 worker threads (with as
//! many concurrent client connections as workers, so the pool is always
//! saturated):
//!
//! * `cache_hit` — the same completeness check over and over; after the
//!   first request every reply comes from the canonical-form verdict
//!   cache.
//! * `cache_miss` — every check uses a fresh constant, so its canonical
//!   form is new and the full Theorem 3 check runs each time.
//! * `mixed_90_10` — 90 % cached checks, 10 % fact assertions (writes
//!   take the state write lock and bump the data epoch).
//!
//! Numbers are recorded in `EXPERIMENTS.md` (experiment A8).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use magik::{Engine, Server};

/// Requests per client per measured command batch.
const REQS_PER_CMD: usize = 50;

const TCS: [&str; 2] = [
    "compl school(S, primary, D) ; true.",
    "compl pupil(N, C, S) ; school(S, T, merano).",
];

const HOT_CHECK: &str = "check q(N) :- pupil(N, C, S), school(S, primary, merano).";

/// Global uniqueness source for cache-missing requests (the benchmark
/// harness may re-probe, so per-batch counters would repeat).
static UNIQUE: AtomicUsize = AtomicUsize::new(0);

#[derive(Clone, Copy)]
enum Scenario {
    CacheHit,
    CacheMiss,
    Mixed90_10,
}

fn request_line(scenario: Scenario) -> String {
    match scenario {
        Scenario::CacheHit => HOT_CHECK.to_string(),
        Scenario::CacheMiss => {
            let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
            format!("check q(N) :- pupil(N, C, S), school(S, primary, city{n}).")
        }
        Scenario::Mixed90_10 => {
            let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(10) {
                format!("assert pupil(p{n}, c1, hofer).")
            } else {
                HOT_CHECK.to_string()
            }
        }
    }
}

/// One persistent protocol connection driven by a dedicated thread:
/// `fire(m)` makes it issue `m` request/reply round trips.
struct LoadClient {
    cmd: Sender<usize>,
    done: Receiver<()>,
    thread: Option<JoinHandle<()>>,
}

impl LoadClient {
    fn spawn(addr: std::net::SocketAddr, scenario: Scenario) -> LoadClient {
        let (cmd_tx, cmd_rx) = channel::<usize>();
        let (done_tx, done_rx) = channel::<()>();
        let thread = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let mut reply = String::new();
            while let Ok(m) = cmd_rx.recv() {
                for _ in 0..m {
                    let line = request_line(scenario);
                    writer
                        .write_all(format!("{line}\n").as_bytes())
                        .expect("send");
                    reply.clear();
                    reader.read_line(&mut reply).expect("receive");
                    assert!(reply.starts_with("ok "), "request failed: {reply}");
                }
                done_tx.send(()).expect("report completion");
            }
        });
        LoadClient {
            cmd: cmd_tx,
            done: done_rx,
            thread: Some(thread),
        }
    }
}

/// A server plus one saturating client per worker thread.
struct Fleet {
    clients: Vec<LoadClient>,
    _server: Server,
}

impl Fleet {
    fn start(workers: usize, scenario: Scenario) -> Fleet {
        let server = Server::start(Arc::new(Engine::new()), "127.0.0.1:0", workers).expect("bind");
        let addr = server.local_addr();
        // Install the TCS on a throwaway connection, closed with `quit`
        // so it frees its worker before the load clients connect.
        {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let mut reply = String::new();
            for line in TCS.iter().chain([&HOT_CHECK, &"quit"]) {
                writer
                    .write_all(format!("{line}\n").as_bytes())
                    .expect("send");
                reply.clear();
                reader.read_line(&mut reply).expect("receive");
                assert!(reply.starts_with("ok"), "setup failed: {reply}");
            }
        }
        let clients = (0..workers)
            .map(|_| LoadClient::spawn(addr, scenario))
            .collect();
        Fleet {
            clients,
            _server: server,
        }
    }

    /// Every client performs `m` round trips; returns when all are done.
    fn fire(&self, m: usize) {
        for c in &self.clients {
            c.cmd.send(m).expect("client is live");
        }
        for c in &self.clients {
            c.done.recv().expect("client finished");
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for c in &mut self.clients {
            // Closing the command channel ends the client loop; the
            // dropped connection then frees its server worker.
            let (dead, _) = channel();
            c.cmd = dead;
            if let Some(t) = c.thread.take() {
                let _ = t.join();
            }
        }
    }
}

fn bench_server_throughput(c: &mut Criterion) {
    for (name, scenario) in [
        ("cache_hit", Scenario::CacheHit),
        ("cache_miss", Scenario::CacheMiss),
        ("mixed_90_10", Scenario::Mixed90_10),
    ] {
        let mut group = c.benchmark_group(format!("server_throughput/{name}"));
        for workers in [1usize, 2, 4, 8] {
            let fleet = Fleet::start(workers, scenario);
            group.throughput(Throughput::Elements((workers * REQS_PER_CMD) as u64));
            group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
                b.iter(|| fleet.fire(REQS_PER_CMD));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
