//! Experiment A1 — MCG fixed-point computation (Algorithm 1).
//!
//! Two axes:
//! * **cascade depth** — the Proposition 12(c) worst case, where every
//!   `G_C` application removes exactly one atom, so iterations scale
//!   linearly with the query size;
//! * **coverage** — chain queries of fixed size under statement sets
//!   covering 0 %, 50 % or 100 % of the relations (0 % converges in one
//!   step; 100 % means the query is already complete).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use magik::workload::random::{cascade, covering_tcs, query, QueryShape, RandomQueryConfig};
use magik::{mcg_with_stats, Vocabulary};

fn bench_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcg/cascade");
    for depth in [2usize, 4, 8, 16, 32, 64] {
        let mut vocab = Vocabulary::new();
        let (tcs, q) = cascade(depth, &mut vocab);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let (result, stats) = mcg_with_stats(&q, &tcs);
                assert_eq!(stats.iterations, depth + 1);
                result
            });
        });
    }
    group.finish();
}

fn bench_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcg/coverage");
    const RELATIONS: usize = 4;
    const ATOMS: usize = 16;
    for covered_pct in [0usize, 50, 100] {
        let mut vocab = Vocabulary::new();
        let q = query(
            RandomQueryConfig {
                shape: QueryShape::Chain,
                atoms: ATOMS,
                relations: RELATIONS,
                ..RandomQueryConfig::default()
            },
            &mut vocab,
        );
        let tcs = covering_tcs(RELATIONS, RELATIONS * covered_pct / 100, &mut vocab);
        group.bench_with_input(
            BenchmarkId::from_parameter(covered_pct),
            &covered_pct,
            |b, _| b.iter(|| mcg_with_stats(&q, &tcs)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cascade, bench_coverage);
criterion_main!(benches);
