//! Experiment A7 — the answering layer at data scale: certain-answer
//! classification and count bounds over school instances of growing size.
//!
//! The reasoning part (MCG + completeness check) is data-independent; the
//! per-query cost should therefore be dominated by two query evaluations
//! and scale linearly with the instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use magik::workload::paper::school;
use magik::workload::synth::{lossy_scenario, school_instance, SchoolDataConfig};
use magik::{classify_answers, count_bounds};

fn bench_answering(c: &mut Criterion) {
    let mut group = c.benchmark_group("answering");
    for schools in [8usize, 32, 128] {
        let w = school();
        let mut vocab = w.vocab.clone();
        let ideal = school_instance(
            &w,
            &mut vocab,
            SchoolDataConfig {
                schools,
                pupils_per_school: 25,
                learn_prob: 0.4,
                seed: 5,
            },
        );
        let db = lossy_scenario(ideal, &w.tcs, 0.5, 6);
        let size = db.available().len() as u64;
        group.throughput(Throughput::Elements(size));
        group.bench_with_input(
            BenchmarkId::new("classify", size),
            db.available(),
            |b, avail| b.iter(|| classify_answers(&w.q_pbl, &w.tcs, avail).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("bounds", size),
            db.available(),
            |b, avail| b.iter(|| count_bounds(&w.q_pbl, &w.tcs, avail).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_answering);
criterion_main!(benches);
