//! Durability costs: WAL append throughput per fsync policy, and crash
//! recovery latency with and without checkpoints (experiment A12).
//!
//! * `wal_append/{never,interval,always}` — single-record appends
//!   against a live [`Store`]; `always` pays one fsync per record, so
//!   the spread between the three policies is the price of the
//!   durability guarantee itself.
//! * `wal_recovery/{full_replay,checkpointed}` — time to recover a
//!   directory holding an N-op history (default 10 000 ops; override
//!   with `MAGIK_BENCH_WAL_OPS`). `full_replay` has no checkpoints, so
//!   every op re-executes through the engine; `checkpointed` seeds from
//!   the newest snapshot and replays only the short tail (≤ 512-op
//!   checkpoint cadence). Recovery runs through
//!   [`Engine::verify_recovery`], which does the exact work of
//!   `Engine::open_durable` without mutating the directory between
//!   iterations.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use magik::storage::OpKind;
use magik::{DurabilityOptions, Engine, FsyncPolicy, Store, StoreOptions, WalRecord};

fn scratch(name: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "magik-bench-wal-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn history_ops() -> usize {
    std::env::var("MAGIK_BENCH_WAL_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

/// Builds a durable history of one TCS plus `ops` asserts, then drops
/// the engine *without* a clean shutdown, exactly like a crash: the
/// recovery benchmarks below see whatever checkpoints the background
/// checkpointer managed plus the WAL tail.
fn build_history(name: &str, ops: usize, checkpoint_every: u64) -> PathBuf {
    let dir = scratch(name);
    let opts = DurabilityOptions {
        fsync: FsyncPolicy::Never,
        segment_bytes: 1 << 22,
        checkpoint_every,
    };
    let (engine, _) =
        Engine::open_durable(&dir, opts, magik::Executor::Sequential).expect("virgin dir opens");
    assert!(engine.handle("compl edge(X, Y) ; true.").starts_with("ok"));
    for i in 0..ops {
        let reply = engine.handle(&format!("assert edge(a{i}, b{}).", i % 97));
        assert!(reply.starts_with("ok"), "{reply}");
    }
    drop(engine);
    dir
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    let policies = [
        ("never", FsyncPolicy::Never),
        (
            "interval",
            FsyncPolicy::parse("interval:100").expect("valid policy"),
        ),
        ("always", FsyncPolicy::Always),
    ];
    for (label, policy) in policies {
        let dir = scratch(label);
        let (mut store, _) = Store::open(
            &dir,
            StoreOptions {
                fsync: policy,
                segment_bytes: 1 << 22,
                checkpoints_kept: 2,
            },
        )
        .expect("virgin dir opens");
        let mut epoch = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                epoch += 1;
                store
                    .append(&WalRecord::Op {
                        kind: OpKind::Assert,
                        text: format!("edge(a{epoch}, b)."),
                        tcs_epoch: 0,
                        data_epoch: epoch,
                    })
                    .expect("append")
            });
        });
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let ops = history_ops();
    let mut group = c.benchmark_group("wal_recovery");
    // Each sample replays the entire history; three medians of a
    // seconds-long deterministic workload beat ten of anything shorter.
    group.sample_size(3);
    group.throughput(Throughput::Elements(ops as u64));
    let shapes = [("full_replay", 0u64), ("checkpointed", 512)];
    for (label, checkpoint_every) in shapes {
        let dir = build_history(label, ops, checkpoint_every);
        group.bench_with_input(BenchmarkId::new(label, ops), &ops, |b, _| {
            b.iter(|| {
                Engine::verify_recovery(&dir, magik::Executor::Sequential).expect("recovers")
            });
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_append, bench_recovery);
criterion_main!(benches);
