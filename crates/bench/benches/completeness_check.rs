//! Experiment A5 — the Theorem 3 completeness check, scaling in |C| and
//! |Q|, with the direct and the Datalog-encoded `T_C` engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use magik::workload::random::{acyclic_tcs, query, QueryShape, RandomQueryConfig, RandomTcsConfig};
use magik::{is_complete, is_complete_via_datalog, Vocabulary};

fn bench_scaling_in_statements(c: &mut Criterion) {
    let mut group = c.benchmark_group("completeness_check/statements");
    for statements in [1usize, 4, 16, 64] {
        let mut vocab = Vocabulary::new();
        let q = query(
            RandomQueryConfig {
                shape: QueryShape::Chain,
                atoms: 8,
                relations: 4,
                ..RandomQueryConfig::default()
            },
            &mut vocab,
        );
        let tcs = acyclic_tcs(
            RandomTcsConfig {
                statements,
                relations: 4,
                max_condition: 2,
                seed: 3,
            },
            &mut vocab,
        );
        group.bench_with_input(
            BenchmarkId::new("direct", statements),
            &statements,
            |b, _| b.iter(|| is_complete(&q, &tcs)),
        );
        group.bench_with_input(
            BenchmarkId::new("datalog", statements),
            &statements,
            |b, _| {
                b.iter_batched(
                    || vocab.clone(),
                    |mut vocab| is_complete_via_datalog(&q, &tcs, &mut vocab),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_scaling_in_query_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("completeness_check/query_size");
    for atoms in [1usize, 4, 8, 16] {
        let mut vocab = Vocabulary::new();
        let q = query(
            RandomQueryConfig {
                shape: QueryShape::Chain,
                atoms,
                relations: 4,
                ..RandomQueryConfig::default()
            },
            &mut vocab,
        );
        let tcs = acyclic_tcs(
            RandomTcsConfig {
                statements: 8,
                relations: 4,
                max_condition: 2,
                seed: 3,
            },
            &mut vocab,
        );
        group.bench_with_input(BenchmarkId::from_parameter(atoms), &atoms, |b, _| {
            b.iter(|| is_complete(&q, &tcs));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling_in_statements,
    bench_scaling_in_query_size
);
criterion_main!(benches);
