//! Experiment A11 — DRed retraction vs full recomputation.
//!
//! The workload is a forest of disjoint transitive-closure chains: a
//! large materialized model in which any single EDB edge only supports
//! the paths of its own chain. Retracting a small fraction of the EDB
//! (one edge, or one edge per chain in a small batch) costs DRed work
//! proportional to the affected chain segments, while the retired
//! recompute strategy re-derives the entire forest.
//!
//! Two scenarios per size:
//!
//! * **sustained** — one long-lived `Materialized` absorbs a
//!   retract/re-insert cycle per iteration (the server writer's
//!   steady-state shape). This isolates the algorithm: no snapshot of the
//!   model is outstanding, so copy-on-write never forces a deep copy.
//! * **cold** — every iteration clones the base `Materialized` and
//!   retracts from the clone while the base still shares the relations.
//!   Both sides pay the worst-case copy-on-write cost a just-published
//!   snapshot inflicts, on top of their own maintenance work.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use magik::datalog::{Materialized, Program, Rule};
use magik::{Atom, Fact, Instance, Term, Vocabulary};

/// `chains` disjoint chains of `len` edges each, materialized under the
/// usual transitive-closure program. Returns the maintained model and the
/// victim edges: the middle edge of every chain.
fn chain_forest(chains: usize, len: usize) -> (Materialized, Vec<Fact>) {
    let mut v = Vocabulary::new();
    let edge = v.pred("edge", 2);
    let path = v.pred("path", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let program = Program::new(vec![
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
        ),
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
            vec![
                Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(edge, vec![Term::Var(y), Term::Var(z)]),
            ],
        ),
    ])
    .unwrap();
    let mut edb = Instance::new();
    let mut victims = Vec::new();
    for c in 0..chains {
        for i in 0..len {
            let fact = Fact::new(
                edge,
                vec![
                    v.cst(&format!("n{c}_{i}")),
                    v.cst(&format!("n{c}_{}", i + 1)),
                ],
            );
            if i == len / 2 {
                victims.push(fact.clone());
            }
            edb.insert(fact);
        }
    }
    (Materialized::new(program, edb).unwrap(), victims)
}

fn bench_sustained(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_retract/sustained");
    for chains in [64usize, 256] {
        let (base, victims) = chain_forest(chains, 16);
        let model_len = base.model().len();
        group.throughput(Throughput::Elements(model_len as u64));
        let victim = victims[0].clone();
        let mut dred = base.clone();
        group.bench_function(format!("dred/{model_len}"), |b| {
            b.iter(|| {
                let stats = dred.retract_all([victim.clone()]);
                assert_eq!(stats.removed, 1);
                dred.insert(victim.clone())
            });
        });
        let victim = victims[0].clone();
        let mut reco = base.clone();
        group.bench_function(format!("recompute/{model_len}"), |b| {
            b.iter(|| {
                assert_eq!(reco.retract_all_recompute([victim.clone()]), 1);
                reco.insert(victim.clone())
            });
        });
    }
    group.finish();
}

fn bench_sustained_batch(c: &mut Criterion) {
    const BATCH: usize = 8;
    let mut group = c.benchmark_group("incremental_retract/sustained_batch");
    let (base, victims) = chain_forest(256, 16);
    let model_len = base.model().len();
    let batch: Vec<Fact> = victims.into_iter().take(BATCH).collect();
    group.throughput(Throughput::Elements(BATCH as u64));
    let mut dred = base.clone();
    let facts = batch.clone();
    group.bench_function(format!("dred/{model_len}"), |b| {
        b.iter(|| {
            let stats = dred.retract_all(facts.iter().cloned());
            assert_eq!(stats.removed, BATCH);
            dred.insert_all(facts.iter().cloned())
        });
    });
    let mut reco = base.clone();
    let facts = batch;
    group.bench_function(format!("recompute/{model_len}"), |b| {
        b.iter(|| {
            assert_eq!(reco.retract_all_recompute(facts.iter().cloned()), BATCH);
            reco.insert_all(facts.iter().cloned())
        });
    });
    group.finish();
}

fn bench_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_retract/cold");
    let (base, victims) = chain_forest(256, 16);
    let model_len = base.model().len();
    let victim = victims[0].clone();
    group.throughput(Throughput::Elements(model_len as u64));
    group.bench_with_input(BenchmarkId::new("dred", model_len), &victim, |b, victim| {
        b.iter_batched(
            || base.clone(),
            |mut m| {
                let stats = m.retract_all([victim.clone()]);
                assert_eq!(stats.removed, 1);
                m
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_with_input(
        BenchmarkId::new("recompute", model_len),
        &victim,
        |b, victim| {
            b.iter_batched(
                || base.clone(),
                |mut m| {
                    assert_eq!(m.retract_all_recompute([victim.clone()]), 1);
                    m
                },
                BatchSize::LargeInput,
            );
        },
    );
    group.finish();
}

criterion_group!(benches, bench_sustained, bench_sustained_batch, bench_cold);
criterion_main!(benches);
