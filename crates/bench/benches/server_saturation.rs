//! Connection saturation (experiment A15, extends A8): how many
//! concurrent connections each front end sustains at bounded latency.
//!
//! A8 measures peak throughput with one saturating connection per
//! worker. This experiment holds the worker pool fixed (4) and grows the
//! *connection* count instead — the axis the event-loop front end was
//! built for. Every client performs cached-verdict checks at a fixed
//! per-client rate (one request per [`THINK`]), so the aggregate offered
//! load stays well below the pool's capacity in every configuration and
//! latency measures the front end, not saturation queueing. Each client
//! records per-request latency plus the time from connect to its first
//! reply (admission latency).
//!
//! The thread-per-connection (blocking) front end can only admit
//! `workers` connections at once: connection `workers + 1` sits in the
//! pool queue until an earlier client *disconnects*, so its first-reply
//! latency is the tail of someone else's whole session, and grows
//! without bound as the fleet grows. The event loop multiplexes every
//! connection over the same pool, so admission stays flat and p99 only
//! reflects honest queueing (requests in flight / pool capacity).
//!
//! Run with `cargo bench -p magik-bench --bench server_saturation`;
//! numbers are recorded in `EXPERIMENTS.md` (experiment A15).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use magik::{Engine, Server};

/// Worker threads on every server configuration — the resource held
/// fixed while the connection count grows.
const WORKERS: usize = 4;

/// Round trips per connection.
const REQS_PER_CONN: usize = 50;

/// Per-client think time between round trips. At the largest fleet the
/// aggregate offered load is 128 clients / 10 ms = 12.8 Kreq/s, well
/// below the ~34 Kreq/s cached-check capacity A8 measured for this pool
/// — so a front end that scales with connections keeps latency flat
/// here, and what grows is contention, not saturation.
const THINK: Duration = Duration::from_millis(10);

/// Concurrent-connection fleet sizes. The largest is 32× the blocking
/// front end's admission ceiling (= `WORKERS`).
const FLEETS: [usize; 4] = [4, 16, 64, 128];

const TCS: [&str; 2] = [
    "compl school(S, primary, D) ; true.",
    "compl pupil(N, C, S) ; school(S, T, merano).",
];

const HOT_CHECK: &str = "check q(N) :- pupil(N, C, S), school(S, primary, merano).";

/// One client's measurements: admission latency (connect to first
/// reply) and every request's round-trip latency.
struct Sample {
    first_reply: Duration,
    latencies: Vec<Duration>,
}

/// An engine with the TCS installed and the hot check already cached,
/// so every measured request is a verdict-cache read.
fn warmed_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::new());
    for line in TCS {
        assert!(engine.handle(line).starts_with("ok"), "TCS install failed");
    }
    assert!(engine.handle(HOT_CHECK).starts_with("ok"), "warm-up failed");
    engine
}

/// Runs `n` concurrent paced clients against `addr`, each making `reqs`
/// round trips, and collects their samples. All clients connect first,
/// then start their request loops together.
fn drive(addr: std::net::SocketAddr, n: usize, reqs: usize) -> Vec<Sample> {
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            // Spread request phases uniformly across one think interval,
            // so the fleet offers a steady rate instead of lockstep
            // bursts every `THINK` (which would measure burst drain, not
            // the front end).
            let phase = THINK.mul_f64(i as f64 / n as f64);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("read timeout");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut reply = String::new();
                barrier.wait();
                std::thread::sleep(phase);
                let connected = Instant::now();
                let mut first_reply = Duration::ZERO;
                let mut latencies = Vec::with_capacity(reqs);
                for i in 0..reqs {
                    if i > 0 {
                        std::thread::sleep(THINK);
                    }
                    let sent = Instant::now();
                    writer
                        .write_all(format!("{HOT_CHECK}\n").as_bytes())
                        .expect("send");
                    reply.clear();
                    reader.read_line(&mut reply).expect("receive");
                    assert!(reply.starts_with("ok "), "request failed: {reply}");
                    latencies.push(sent.elapsed());
                    if i == 0 {
                        first_reply = connected.elapsed();
                    }
                }
                Sample {
                    first_reply,
                    latencies,
                }
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect()
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn report(front_end: &str, conns: usize, samples: &[Sample]) {
    let mut all: Vec<Duration> = samples.iter().flat_map(|s| s.latencies.clone()).collect();
    all.sort_unstable();
    let admit_worst = samples
        .iter()
        .map(|s| s.first_reply)
        .max()
        .expect("nonempty fleet");
    println!(
        "{front_end:<10} conns={conns:<4} p50={:>8.1}us p99={:>9.1}us max={:>9.1}us admit_worst={:>10.1}us",
        micros(quantile(&all, 0.50)),
        micros(quantile(&all, 0.99)),
        micros(*all.last().expect("nonempty")),
        micros(admit_worst),
    );
}

fn main() {
    // `cargo bench` passes harness flags; the only one honored is
    // `--test` (CI smoke: tiny fleets, few requests), as in the
    // criterion-based benchmarks.
    let quick = std::env::args().any(|a| a == "--test");
    let fleets: &[usize] = if quick { &[4, 16] } else { &FLEETS };
    let reqs = if quick { 10 } else { REQS_PER_CONN };
    let engine = warmed_engine();
    println!(
        "A15 server saturation: {WORKERS} workers, {reqs} cached checks per \
         connection, {THINK:?} think time"
    );
    for front_end in ["event_loop", "blocking"] {
        for &conns in fleets {
            let server = if front_end == "event_loop" {
                Server::start(Arc::clone(&engine), "127.0.0.1:0", WORKERS)
            } else {
                Server::start_blocking(Arc::clone(&engine), "127.0.0.1:0", WORKERS)
            }
            .expect("bind");
            let samples = drive(server.local_addr(), conns, reqs);
            report(front_end, conns, &samples);
            server.stop();
        }
    }
}
