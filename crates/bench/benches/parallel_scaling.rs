//! Experiment A10 — parallel scaling of the reasoning core.
//!
//! Two workloads, each at 1, 2, 4 and 8 executor threads:
//!
//! * `fixpoint` — the semi-naive Datalog fixpoint (the engine under both
//!   `T_C` materialization and the completeness check) on a non-linear
//!   transitive closure whose per-round deltas are large enough to
//!   partition across workers.
//! * `k_mcs` — the Algorithm 3 specialization search on the satisfiable
//!   Table 1 workload at k = 7 (the largest sweep point of experiment
//!   A4, ~tens of ms sequential), fanned out over extension candidates.
//!
//! Thread counts above the machine's core count measure oversubscription
//! overhead, not speedup. Numbers are recorded in `EXPERIMENTS.md`
//! (experiment A10); the acceptance bar is ≥ 2× at 4 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use magik::datalog::{Program, Rule};
use magik::workload::paper::table1_satisfiable;
use magik::{k_mcs_on, Atom, Executor, Fact, Instance, KMcsOptions, Term, Vocabulary};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Non-linear transitive closure over a chorded cycle: few rounds, big
/// deltas — the regime where partitioning the delta pays.
fn fixpoint_workload() -> (Program, Instance) {
    const N: usize = 64;
    let mut v = Vocabulary::new();
    let edge = v.pred("edge", 2);
    let path = v.pred("path", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let rules = vec![
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
        ),
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
            vec![
                Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(path, vec![Term::Var(y), Term::Var(z)]),
            ],
        ),
    ];
    let program = Program::new(rules).expect("range-restricted by construction");
    let mut edb = Instance::new();
    let mut c = |i: usize| v.cst(&format!("n{}", i % N));
    for i in 0..N {
        edb.insert(Fact::new(edge, vec![c(i), c(i + 1)]));
        if i % 9 == 0 {
            edb.insert(Fact::new(edge, vec![c(i), c(i * 5 + 2)]));
        }
    }
    (program, edb)
}

fn bench_fixpoint(c: &mut Criterion) {
    let (program, edb) = fixpoint_workload();
    let expected = program.eval_semi_naive(&edb).model;
    let mut group = c.benchmark_group("parallel_scaling/fixpoint");
    group.sample_size(10);
    for threads in THREADS {
        let exec = Executor::with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                let result = program.eval_semi_naive_on(&edb, &exec);
                assert_eq!(result.model.len(), expected.len());
                result
            });
        });
    }
    group.finish();
}

fn bench_k_mcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling/k_mcs");
    group.sample_size(10);
    for threads in THREADS {
        let exec = Executor::with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter_batched(
                table1_satisfiable,
                |mut w| k_mcs_on(&w.q_l, &w.tcs, &mut w.vocab, KMcsOptions::new(7), &exec),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixpoint, bench_k_mcs);
criterion_main!(benches);
