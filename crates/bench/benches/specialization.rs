//! Experiment T1/A4 — k-MCS computation (Algorithm 3).
//!
//! Criterion companion to the `table1` binary: measures the k-MCS search
//! on the paper's Table 1 workload and its satisfiable variant, for both
//! engines, over the ks that stay within criterion-friendly runtimes.
//! (The full k = 0..=7 sweep with paper-style reporting is
//! `cargo run --release -p magik-bench --bin table1 -- --compare`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use magik::workload::paper::{table1, table1_satisfiable, Table1Workload};
use magik::{k_mcs, KMcsEngine, KMcsOptions};

fn bench_specialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("k_mcs");
    group.sample_size(10);
    type Build = fn() -> Table1Workload;
    let workloads: [(&str, Build); 2] = [("table1", table1), ("satisfiable", table1_satisfiable)];
    for (workload_name, build) in workloads {
        for k in 0..=4usize {
            for (engine_name, engine) in [
                ("naive", KMcsEngine::Naive),
                ("optimized", KMcsEngine::Optimized),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{workload_name}/{engine_name}"), k),
                    &k,
                    |b, &k| {
                        b.iter_batched(
                            build,
                            |mut w| {
                                k_mcs(
                                    &w.q_l,
                                    &w.tcs,
                                    &mut w.vocab,
                                    KMcsOptions {
                                        engine,
                                        ..KMcsOptions::new(k)
                                    },
                                )
                            },
                            criterion::BatchSize::SmallInput,
                        );
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_specialization);
criterion_main!(benches);
