//! Experiment A2 — the `T_C` operator: direct evaluation vs the Section 5
//! Datalog encoding, on school instances of growing size.
//!
//! The paper ran the encoding on dlv; here both engines are in-process,
//! so the comparison isolates the cost of the encoding itself (relation
//! copying into `Rⁱ`, rule application, copy-back) against direct
//! evaluation of the associated queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use magik::workload::paper::school;
use magik::workload::synth::{school_instance, SchoolDataConfig};
use magik::{tc_apply, tc_apply_datalog};

fn bench_tc(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc_operator");
    for schools in [4usize, 16, 64, 256] {
        let w = school();
        let mut vocab = w.vocab.clone();
        let db = school_instance(
            &w,
            &mut vocab,
            SchoolDataConfig {
                schools,
                pupils_per_school: 20,
                learn_prob: 0.4,
                seed: 7,
            },
        );
        group.throughput(Throughput::Elements(db.len() as u64));
        group.bench_with_input(BenchmarkId::new("direct", db.len()), &db, |b, db| {
            b.iter(|| tc_apply(&w.tcs, db));
        });
        group.bench_with_input(BenchmarkId::new("datalog", db.len()), &db, |b, db| {
            b.iter_batched(
                || vocab.clone(),
                |mut vocab| tc_apply_datalog(&w.tcs, db, &mut vocab),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tc);
criterion_main!(benches);
