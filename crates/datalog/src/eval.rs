//! Bottom-up fixpoint evaluation: naive and semi-naive, over compiled
//! execution plans.
//!
//! Every rule is compiled **once** per fixpoint (and once per
//! [`Materialized`](crate::Materialized) lifetime) into
//! [`CompiledBody`] plans from `magik-exec`: one *full* plan evaluating
//! the whole body, and — for semi-naive evaluation — one *delta* plan per
//! body-atom pivot, with the pivot's variables declared bound so each
//! delta fact seeds the run via [`match_ground`]. The plans fix atom order
//! and index access paths up front and are reused across all fixpoint
//! rounds and increments, replacing the old per-round query construction
//! (`apply_rule`/`apply_rule_with_pivot`) that re-planned every rule body
//! at every search node of every round.

use std::collections::BTreeSet;
use std::sync::Arc;

use magik_exec::{match_ground, partition, CompiledBody, ExecStats, Executor};
use magik_relalg::{Atom, Cst, Fact, Instance, Pred, Snapshot, StoreView, Var};

use crate::program::{Program, Rule};

/// The result of a fixpoint computation.
#[derive(Debug, Clone)]
pub struct FixpointResult {
    /// The least model: the EDB plus all derived facts.
    pub model: Instance,
    /// Number of iterations until the fixpoint was reached (an iteration
    /// applies every rule once).
    pub iterations: usize,
    /// Number of facts derived that were not in the EDB.
    pub derived: usize,
}

/// One rule's delta plan for one body-atom pivot: the rest of the body,
/// compiled with the pivot's variables declared bound.
#[derive(Debug, Clone)]
struct PivotPlan {
    /// The pivot atom pattern, matched against delta facts.
    atom: Atom,
    /// The remaining body (and the rule's negated atoms), seeded by the
    /// pivot match.
    body: CompiledBody,
}

impl PivotPlan {
    /// The seed rows of one delta round for this pivot: every delta fact
    /// of the pivot's predicate that matches its pattern, as one batch.
    fn seeds(&self, delta: &[Fact]) -> Vec<Vec<(Var, Cst)>> {
        delta
            .iter()
            .filter(|f| f.pred == self.atom.pred)
            .filter_map(|f| match_ground(&self.atom, &f.args))
            .collect()
    }
}

/// A rule compiled for fixpoint execution.
#[derive(Debug, Clone)]
pub(crate) struct CompiledRule {
    head_pred: Pred,
    /// The head atom pattern, matched against facts by the DRed support
    /// check (see [`CompiledRule::support`]).
    head: Atom,
    /// Full-body plan (naive rounds, round 0 of semi-naive).
    full: CompiledBody,
    /// One delta plan per body-atom position (semi-naive rounds); empty
    /// when compiled with `with_pivots = false`.
    pivots: Vec<PivotPlan>,
    /// The body compiled with the head's variables declared bound: the
    /// DRed re-derivation *support plan*, answering "does some rule
    /// instantiation with this ground head survive?" in first-match mode.
    /// `None` when compiled with `with_pivots = false`.
    support: Option<CompiledBody>,
}

impl CompiledRule {
    fn compile(rule: &Rule, stats: Option<&dyn StoreView>, with_pivots: bool) -> CompiledRule {
        let full = CompiledBody::compile(
            &rule.head.args,
            &rule.body,
            &rule.negative,
            &BTreeSet::new(),
            stats,
        )
        .expect("range-restricted rules compile");
        let mut pivots = Vec::new();
        let mut support = None;
        if with_pivots {
            for (i, pivot) in rule.body.iter().enumerate() {
                let rest: Vec<Atom> = rule
                    .body
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, a)| a.clone())
                    .collect();
                let bound: BTreeSet<Var> = pivot.vars().collect();
                let body =
                    CompiledBody::compile(&rule.head.args, &rest, &rule.negative, &bound, stats)
                        .expect("pivot-bound rule bodies compile");
                pivots.push(PivotPlan {
                    atom: pivot.clone(),
                    body,
                });
            }
            let head_bound: BTreeSet<Var> = rule.head.vars().collect();
            support = Some(
                CompiledBody::compile(
                    &rule.head.args,
                    &rule.body,
                    &rule.negative,
                    &head_bound,
                    stats,
                )
                .expect("head-bound rule bodies compile"),
            );
        }
        CompiledRule {
            head_pred: rule.head.pred,
            head: rule.head.clone(),
            full,
            pivots,
            support,
        }
    }

    /// `true` iff this rule derives `fact` in one step from `store`
    /// (first-match over the support plan; requires `with_pivots`).
    fn supports<S: StoreView + ?Sized>(
        &self,
        store: &S,
        fact: &Fact,
        stats: &mut ExecStats,
    ) -> bool {
        if self.head_pred != fact.pred {
            return false;
        }
        let Some(seed) = match_ground(&self.head, &fact.args) else {
            return false;
        };
        self.support
            .as_ref()
            .expect("support plans are compiled alongside pivots")
            .has_derivation(store, &seed, stats)
    }

    /// Evaluates the full body over `model` and appends the derivable
    /// head facts to `out`.
    fn apply_full<S: StoreView + ?Sized>(
        &self,
        model: &S,
        stats: &mut ExecStats,
        out: &mut Vec<Fact>,
    ) {
        // Batch execution with the unit seed: one all-unbound row.
        self.full
            .derive_batch(model, &[Vec::new()], stats, &mut |args| {
                out.push(Fact::new(self.head_pred, args));
            });
    }
}

/// A program compiled for fixpoint execution: rules grouped by stratum,
/// each carrying its reusable plans.
///
/// Each stratum's rules sit behind an `Arc` so parallel fixpoint rounds
/// can share them with pool tasks without cloning any plans.
#[derive(Debug, Clone)]
pub(crate) struct CompiledProgram {
    strata: Vec<Arc<Vec<CompiledRule>>>,
}

impl CompiledProgram {
    /// Compiles every rule of `program`, ordering plans by the statistics
    /// of `stats`. `with_pivots` additionally compiles the per-pivot delta
    /// plans (needed by semi-naive evaluation and incremental insertion).
    pub(crate) fn compile(
        program: &Program,
        stats: Option<&dyn StoreView>,
        with_pivots: bool,
    ) -> CompiledProgram {
        let mut strata: Vec<Vec<CompiledRule>> = vec![Vec::new(); program.num_strata()];
        for rule in program.rules() {
            strata[program.stratum(rule.head.pred)].push(CompiledRule::compile(
                rule,
                stats,
                with_pivots,
            ));
        }
        CompiledProgram {
            strata: strata.into_iter().map(Arc::new).collect(),
        }
    }

    /// Compiles `program`'s **maintenance plans** — the plans a
    /// [`Materialized`](crate::Materialized) model keeps for its whole
    /// lifetime — and materializes the least model, in one step.
    ///
    /// This is the single code path through which every maintenance plan
    /// is compiled, and it guarantees the plans see **materialized-model
    /// statistics**: a first compile against the EDB only bootstraps the
    /// initial fixpoint; the plans actually kept are then recompiled
    /// against the resulting model. Compiling maintenance plans from EDB
    /// statistics alone is subtly catastrophic — IDB relations have no
    /// EDB facts, so the planner sees them as empty (estimate 0) and
    /// happily scans or probes the large materialized relations last-ditch
    /// at run time; the DRed support checks, which probe the model
    /// per-fact, degrade worst. The batch join-strategy choices inherit
    /// the same statistics, so they too are sized to the model.
    ///
    /// Returns the compiled program and the model it was compiled against.
    pub(crate) fn compile_maintenance(
        program: &Program,
        edb: &Instance,
        exec: &Executor,
    ) -> (CompiledProgram, Instance) {
        let bootstrap = CompiledProgram::compile(program, Some(edb), true);
        let model = bootstrap.eval_semi_naive_on(edb, exec).model;
        let compiled = CompiledProgram::compile(program, Some(&model), true);
        (compiled, model)
    }

    /// Naive stratified fixpoint over `edb`.
    pub(crate) fn eval_naive(&self, edb: &Instance) -> FixpointResult {
        let mut model = edb.clone();
        let mut iterations = 0;
        let mut derived = 0;
        let mut stats = ExecStats::default();
        for stratum in &self.strata {
            let (i, d) = fixpoint_naive(stratum, &mut model, &mut stats);
            iterations += i;
            derived += d;
        }
        FixpointResult {
            model,
            iterations,
            derived,
        }
    }

    /// Semi-naive stratified fixpoint over `edb`.
    pub(crate) fn eval_semi_naive(&self, edb: &Instance) -> FixpointResult {
        self.eval_semi_naive_on(edb, &Executor::Sequential)
    }

    /// Semi-naive stratified fixpoint over `edb`, with each round's delta
    /// partitioned across `exec`.
    ///
    /// Parallel rounds evaluate every delta plan against a [`Snapshot`] of
    /// the model frozen at round start and merge the per-task buffers by
    /// sorted dedup, so the computed least model is **identical** to the
    /// sequential one (facts the eager sequential loop discovers mid-round
    /// are discovered one round later; the fixpoint is unchanged — the
    /// `iterations` count may legitimately differ).
    pub(crate) fn eval_semi_naive_on(&self, edb: &Instance, exec: &Executor) -> FixpointResult {
        let mut model = edb.clone();
        let mut iterations = 0;
        let mut derived = 0;
        let mut stats = ExecStats::default();
        for stratum in &self.strata {
            let (i, d) = fixpoint_semi_naive(stratum, &mut model, &mut stats, exec);
            iterations += i;
            derived += d;
        }
        FixpointResult {
            model,
            iterations,
            derived,
        }
    }

    /// Propagates `delta` — facts already inserted into `model` — through
    /// every rule to a fixpoint with the rounds partitioned across `exec`,
    /// reusing the compiled delta plans. Returns `(rounds, derived)`. Used
    /// by [`crate::Materialized`] (positive programs, so stratification is
    /// immaterial).
    pub(crate) fn propagate_delta_on(
        &self,
        model: &mut Instance,
        delta: Vec<Fact>,
        exec: &Executor,
    ) -> (usize, usize) {
        let rules = self.all_rules();
        let mut stats = ExecStats::default();
        propagate_delta_compiled(&rules, model, delta, &mut stats, exec)
    }

    /// All rules of every stratum behind one `Arc` (shared, not cloned,
    /// when the program has a single stratum — the common positive case).
    fn all_rules(&self) -> Arc<Vec<CompiledRule>> {
        match self.strata.as_slice() {
            [single] => Arc::clone(single),
            strata => Arc::new(strata.iter().flat_map(|s| s.iter()).cloned().collect()),
        }
    }

    /// The DRed **over-deletion** pass: every fact of `model` with at
    /// least one derivation that (transitively) consumes a fact of
    /// `seeds`, computed semi-naively with the per-(rule, pivot) delta
    /// plans. Each round matches the current deletion delta against every
    /// pivot and evaluates the rest of the body over the model **frozen
    /// before any deletion** — the over-approximation that makes the pass
    /// a fixed number of plan runs instead of a model recomputation; the
    /// re-derivation pass rescues facts with surviving alternative
    /// derivations. The returned set includes the seeds themselves.
    ///
    /// Because the store never changes during the pass, one snapshot
    /// serves every round and deltas partition across `exec` exactly like
    /// semi-naive insertion rounds do.
    pub(crate) fn overdelete_on(
        &self,
        model: &Snapshot,
        seeds: Vec<Fact>,
        exec: &Executor,
    ) -> Vec<Fact> {
        let rules = self.all_rules();
        let mut stats = ExecStats::default();
        let mut marked = Instance::new();
        let mut delta: Vec<Fact> = Vec::new();
        for fact in seeds {
            if marked.insert(fact.clone()) {
                delta.push(fact);
            }
        }
        let mut all = delta.clone();
        while !delta.is_empty() {
            let candidates = if exec.threads() > 1 && delta.len() >= PARALLEL_DELTA_THRESHOLD {
                let delta_arc = Arc::new(std::mem::take(&mut delta));
                parallel_round(&rules, model, &delta_arc, exec, &mut stats)
            } else {
                let round = std::mem::take(&mut delta);
                delta_round_on(&rules, model, &round, &mut stats)
            };
            for fact in candidates {
                // Heads derived from model facts are model facts (the
                // model is closed), so membership needs no re-check.
                if marked.insert(fact.clone()) {
                    delta.push(fact.clone());
                    all.push(fact);
                }
            }
        }
        all
    }

    /// The seeding step of DRed **re-derivation**: the subset of `facts`
    /// that some rule derives in one step from `store` (the model with
    /// the over-deleted facts already removed). Each fact costs one
    /// first-match run of the matching rules' support plans; the checks
    /// are independent, so they partition across `exec`.
    pub(crate) fn supported_on(
        &self,
        store: &Snapshot,
        facts: Vec<Fact>,
        exec: &Executor,
    ) -> Vec<Fact> {
        let rules = self.all_rules();
        if exec.threads() > 1 && facts.len() >= PARALLEL_DELTA_THRESHOLD {
            let facts = Arc::new(facts);
            let ranges = partition(facts.len(), exec.threads() * 2);
            let (rules2, store2, facts2) = (Arc::clone(&rules), store.clone(), Arc::clone(&facts));
            let results = exec.map(ranges, move |range| {
                let mut stats = ExecStats::default();
                facts2[range]
                    .iter()
                    .filter(|f| rules2.iter().any(|r| r.supports(&store2, f, &mut stats)))
                    .cloned()
                    .collect::<Vec<Fact>>()
            });
            results.into_iter().flatten().collect()
        } else {
            let mut stats = ExecStats::default();
            facts
                .into_iter()
                .filter(|f| rules.iter().any(|r| r.supports(store, f, &mut stats)))
                .collect()
        }
    }
}

/// One sequential delta round over a frozen store: the round's delta facts
/// are grouped into **one seed batch per (rule, pivot)** and each group
/// runs through the pivot's batch plan in a single pass. Heads are
/// collected without dedup (callers dedup on insertion into their marked
/// set or model).
fn delta_round_on<S: StoreView + ?Sized>(
    rules: &[CompiledRule],
    store: &S,
    delta: &[Fact],
    stats: &mut ExecStats,
) -> Vec<Fact> {
    let mut out = Vec::new();
    for rule in rules {
        for pp in &rule.pivots {
            let seeds = pp.seeds(delta);
            pp.body.derive_batch(store, &seeds, stats, &mut |args| {
                out.push(Fact::new(rule.head_pred, args));
            });
        }
    }
    out
}

/// Naive fixpoint of one stratum's rules over `model` (in place).
fn fixpoint_naive(
    rules: &[CompiledRule],
    model: &mut Instance,
    stats: &mut ExecStats,
) -> (usize, usize) {
    let mut iterations = 0;
    let mut derived = 0;
    let mut buffer = Vec::new();
    loop {
        iterations += 1;
        let mut new_facts = 0;
        for rule in rules {
            buffer.clear();
            rule.apply_full(model, stats, &mut buffer);
            for fact in buffer.drain(..) {
                if model.insert(fact) {
                    new_facts += 1;
                }
            }
        }
        derived += new_facts;
        if new_facts == 0 {
            return (iterations, derived);
        }
    }
}

/// The smallest delta a parallel round bothers fanning out; below this
/// the snapshot + merge overhead outweighs the work.
const PARALLEL_DELTA_THRESHOLD: usize = 16;

/// One parallel delta round: the delta is partitioned into contiguous
/// chunks across `exec`, and each task batches its chunk per (rule, pivot)
/// — one seed batch per group, evaluated against a [`Snapshot`] of the
/// model frozen at round start (the pool steals whole batches, not
/// tuples). Per-task buffers are merged deterministically (concatenate in
/// chunk order, sort, dedup), so the round's candidate set — and therefore
/// the whole fixpoint — is independent of scheduling.
fn parallel_round(
    rules: &Arc<Vec<CompiledRule>>,
    snap: &Snapshot,
    delta: &Arc<Vec<Fact>>,
    exec: &Executor,
    stats: &mut ExecStats,
) -> Vec<Fact> {
    let ranges = partition(delta.len(), exec.threads() * 2);
    let (rules, snap2, delta2) = (Arc::clone(rules), snap.clone(), Arc::clone(delta));
    let results = exec.map(ranges, move |range| {
        let mut local: Vec<Fact> = Vec::new();
        let mut local_stats = ExecStats::default();
        let chunk = &delta2[range];
        for rule in rules.iter() {
            for pp in &rule.pivots {
                let seeds = pp.seeds(chunk);
                pp.body
                    .derive_batch(&snap2, &seeds, &mut local_stats, &mut |args| {
                        local.push(Fact::new(rule.head_pred, args));
                    });
            }
        }
        local.sort_unstable();
        local.dedup();
        (local, local_stats)
    });
    let mut merged: Vec<Fact> = Vec::new();
    for (local, local_stats) in results {
        stats.absorb(&local_stats);
        merged.extend(local);
    }
    merged.sort_unstable();
    merged.dedup();
    merged
}

/// Propagates `delta` through the compiled delta plans to a fixpoint:
/// each round matches every delta fact against every rule's pivot atoms,
/// seeds the pivot's plan with the match, and collects new derivations
/// into the next round's delta. Returns `(rounds, derived)`.
///
/// Rounds with a delta worth splitting are partitioned across `exec`; the
/// final model is identical either way (see
/// [`CompiledProgram::eval_semi_naive_on`]).
fn propagate_delta_compiled(
    rules: &Arc<Vec<CompiledRule>>,
    model: &mut Instance,
    mut delta: Vec<Fact>,
    stats: &mut ExecStats,
    exec: &Executor,
) -> (usize, usize) {
    let mut iterations = 0;
    let mut derived = 0;
    let mut buffer: Vec<Fact> = Vec::new();
    while !delta.is_empty() {
        iterations += 1;
        if exec.threads() > 1 && delta.len() >= PARALLEL_DELTA_THRESHOLD {
            let snap = model.snapshot();
            let delta_arc = Arc::new(std::mem::take(&mut delta));
            for fact in parallel_round(rules, &snap, &delta_arc, exec, stats) {
                if model.insert(fact.clone()) {
                    delta.push(fact);
                    derived += 1;
                }
            }
            continue;
        }
        // Sequential round: one seed batch per (rule, pivot) group.
        // Derivations of earlier groups are inserted before later groups
        // run (eager, like the old per-fact loop between facts); within a
        // group the batch sees the model as of group start — anything
        // missed reappears via the next round's delta, so the fixpoint is
        // unchanged (the semi-naive argument; only `iterations` can
        // differ).
        let mut next_delta = Vec::new();
        for rule in rules.iter() {
            for pp in &rule.pivots {
                let seeds = pp.seeds(&delta);
                buffer.clear();
                pp.body.derive_batch(model, &seeds, stats, &mut |args| {
                    buffer.push(Fact::new(rule.head_pred, args));
                });
                for derived_fact in buffer.drain(..) {
                    if model.insert(derived_fact.clone()) {
                        next_delta.push(derived_fact);
                        derived += 1;
                    }
                }
            }
        }
        delta = next_delta;
    }
    (iterations, derived)
}

/// Semi-naive fixpoint of one stratum's rules over `model` (in place).
fn fixpoint_semi_naive(
    rules: &Arc<Vec<CompiledRule>>,
    model: &mut Instance,
    stats: &mut ExecStats,
    exec: &Executor,
) -> (usize, usize) {
    // Round 0: full pass to seed the deltas (parallelized across rules —
    // each task evaluates one rule's full plan against a frozen snapshot).
    let mut derived = 0;
    let mut delta: Vec<Fact> = Vec::new();
    if exec.threads() > 1 && rules.len() > 1 {
        let snap = model.snapshot();
        let rules2 = Arc::clone(rules);
        let results = exec.map((0..rules.len()).collect(), move |ri| {
            let mut local = Vec::new();
            let mut local_stats = ExecStats::default();
            rules2[ri].apply_full(&snap, &mut local_stats, &mut local);
            local.sort_unstable();
            local.dedup();
            (local, local_stats)
        });
        let mut merged: Vec<Fact> = Vec::new();
        for (local, local_stats) in results {
            stats.absorb(&local_stats);
            merged.extend(local);
        }
        merged.sort_unstable();
        merged.dedup();
        for fact in merged {
            if model.insert(fact.clone()) {
                delta.push(fact);
                derived += 1;
            }
        }
    } else {
        let mut buffer = Vec::new();
        for rule in rules.iter() {
            buffer.clear();
            rule.apply_full(model, stats, &mut buffer);
            for fact in buffer.drain(..) {
                if model.insert(fact.clone()) {
                    delta.push(fact);
                    derived += 1;
                }
            }
        }
    }
    let (rounds, propagated) = propagate_delta_compiled(rules, model, delta, stats, exec);
    (1 + rounds, derived + propagated)
}

impl Program {
    /// Computes the (stratified) least model by **naive** iteration within
    /// each stratum: apply every rule of the stratum to the full instance
    /// until no new fact is derived, then move to the next stratum. Rule
    /// bodies are compiled to plans once, up front.
    pub fn eval_naive(&self, edb: &Instance) -> FixpointResult {
        CompiledProgram::compile(self, Some(edb), false).eval_naive(edb)
    }

    /// Computes the (stratified) least model by **semi-naive** iteration
    /// within each stratum: after the first round, a rule is only
    /// re-evaluated with at least one positive body atom bound to a fact
    /// derived in the previous round — via delta plans compiled once per
    /// (rule, pivot) and reused across all rounds.
    ///
    /// Produces exactly the same model as [`Program::eval_naive`]; property
    /// tests in this crate assert the agreement on random programs.
    pub fn eval_semi_naive(&self, edb: &Instance) -> FixpointResult {
        CompiledProgram::compile(self, Some(edb), true).eval_semi_naive(edb)
    }

    /// [`Program::eval_semi_naive`] with each fixpoint round's delta
    /// partitioned across `exec`.
    ///
    /// The least model is **identical** to the sequential one: parallel
    /// rounds run against a frozen snapshot of the model and merge worker
    /// buffers by sorted dedup, so only the round in which a fact is
    /// discovered (and hence [`FixpointResult::iterations`]) can differ.
    /// Property tests assert model equality on random programs.
    pub fn eval_semi_naive_on(&self, edb: &Instance, exec: &Executor) -> FixpointResult {
        CompiledProgram::compile(self, Some(edb), true).eval_semi_naive_on(edb, exec)
    }

    /// Evaluates a conjunctive query over the least model of the program
    /// on `edb` — the standard "Datalog query" operation.
    ///
    /// ```
    /// # use magik_relalg::{Vocabulary, Atom, Fact, Instance, Term, Query};
    /// # use magik_datalog::{Program, Rule};
    /// # let mut v = Vocabulary::new();
    /// # let edge = v.pred("edge", 2);
    /// # let path = v.pred("path", 2);
    /// # let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    /// # let program = Program::new(vec![
    /// #     Rule::new(Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
    /// #               vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])]),
    /// #     Rule::new(Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
    /// #               vec![Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
    /// #                    Atom::new(edge, vec![Term::Var(y), Term::Var(z)])]),
    /// # ]).unwrap();
    /// # let mut edb = Instance::new();
    /// # edb.insert(Fact::new(edge, vec![v.cst("a"), v.cst("b")]));
    /// # edb.insert(Fact::new(edge, vec![v.cst("b"), v.cst("c")]));
    /// let q = Query::new(v.sym("q"), vec![Term::Var(y)],
    ///                    vec![Atom::new(path, vec![Term::Cst(v.cst("a")), Term::Var(y)])]);
    /// let ans = program.query(&q, &edb).unwrap();
    /// assert_eq!(ans.len(), 2); // b and c
    /// ```
    pub fn query(
        &self,
        q: &magik_relalg::Query,
        edb: &Instance,
    ) -> Result<magik_relalg::AnswerSet, magik_relalg::EvalError> {
        let model = self.eval_semi_naive(edb).model;
        magik_relalg::answers(q, &model)
    }

    /// Applies every rule **once** to `db` and returns only the derived
    /// head facts (not the input). This is the single-step immediate
    /// consequence operator `T_P(db)`, used by the completeness crate to
    /// implement the paper's `T_C` operator via the Section 5 encoding.
    pub fn immediate_consequences(&self, db: &Instance) -> Instance {
        let compiled = CompiledProgram::compile(self, Some(db), false);
        let mut out = Instance::new();
        let mut stats = ExecStats::default();
        let mut buffer = Vec::new();
        for rule in compiled.strata.iter().flat_map(|s| s.iter()) {
            buffer.clear();
            rule.apply_full(db, &mut stats, &mut buffer);
            for fact in buffer.drain(..) {
                out.insert(fact);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Rule;
    use magik_relalg::{Term, Vocabulary};

    fn chain_edb(v: &mut Vocabulary, n: usize) -> (magik_relalg::Pred, Instance) {
        let edge = v.pred("edge", 2);
        let mut edb = Instance::new();
        for i in 0..n {
            edb.insert(Fact::new(
                edge,
                vec![v.cst(&format!("n{i}")), v.cst(&format!("n{}", i + 1))],
            ));
        }
        (edge, edb)
    }

    fn tc_program(v: &mut Vocabulary) -> (magik_relalg::Pred, Program) {
        let edge = v.pred("edge", 2);
        let path = v.pred("path", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let program = Program::new(vec![
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
            ),
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
                vec![
                    Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                    Atom::new(path, vec![Term::Var(y), Term::Var(z)]),
                ],
            ),
        ])
        .unwrap();
        (path, program)
    }

    #[test]
    fn transitive_closure_of_chain() {
        let mut v = Vocabulary::new();
        let (_, edb) = chain_edb(&mut v, 5);
        let (path, program) = tc_program(&mut v);
        let naive = program.eval_naive(&edb);
        let semi = program.eval_semi_naive(&edb);
        // 5 nodes chain: path holds for all i < j: C(6,2) = 15 pairs.
        let count = |m: &Instance| m.relation(path).map_or(0, magik_relalg::Relation::len);
        assert_eq!(count(&naive.model), 15);
        assert_eq!(count(&semi.model), 15);
        assert_eq!(naive.model, semi.model);
        assert_eq!(naive.derived, 15);
        assert_eq!(semi.derived, 15);
    }

    #[test]
    fn cycle_closure_terminates() {
        let mut v = Vocabulary::new();
        let edge = v.pred("edge", 2);
        let mut edb = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "a")] {
            edb.insert(Fact::new(edge, vec![v.cst(a), v.cst(b)]));
        }
        let (path, program) = tc_program(&mut v);
        let result = program.eval_semi_naive(&edb);
        // Full 3x3 closure.
        assert_eq!(result.model.relation(path).unwrap().len(), 9);
    }

    #[test]
    fn facts_rules_derive_ground_heads() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let program =
            Program::new(vec![Rule::fact(Atom::new(p, vec![Term::Cst(v.cst("a"))]))]).unwrap();
        let result = program.eval_naive(&Instance::new());
        assert!(result.model.contains(&Fact::new(p, vec![v.cst("a")])));
        assert_eq!(result.derived, 1);
    }

    #[test]
    fn nonrecursive_projection() {
        let mut v = Vocabulary::new();
        let r = v.pred("r", 2);
        let proj = v.pred("proj", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let program = Program::new(vec![Rule::new(
            Atom::new(proj, vec![Term::Var(x)]),
            vec![Atom::new(r, vec![Term::Var(x), Term::Var(y)])],
        )])
        .unwrap();
        let mut edb = Instance::new();
        edb.insert(Fact::new(r, vec![v.cst("a"), v.cst("b")]));
        edb.insert(Fact::new(r, vec![v.cst("a"), v.cst("c")]));
        let result = program.eval_semi_naive(&edb);
        assert_eq!(result.model.relation(proj).unwrap().len(), 1);
        assert_eq!(result.derived, 1);
    }

    #[test]
    fn immediate_consequences_is_single_step() {
        let mut v = Vocabulary::new();
        let (_, edb) = chain_edb(&mut v, 3);
        let (path, program) = tc_program(&mut v);
        let step1 = program.immediate_consequences(&edb);
        // One step only copies edges into path (the recursive rule needs
        // path facts, which do not exist yet).
        assert_eq!(step1.relation(path).unwrap().len(), 3);
        assert_eq!(step1.preds().count(), 1);
    }

    #[test]
    fn empty_program_returns_edb() {
        let mut v = Vocabulary::new();
        let (_, edb) = chain_edb(&mut v, 2);
        let program = Program::new(vec![]).unwrap();
        let result = program.eval_semi_naive(&edb);
        assert_eq!(result.model, edb);
        assert_eq!(result.derived, 0);
    }

    #[test]
    fn constants_in_rule_bodies_filter() {
        let mut v = Vocabulary::new();
        let edge = v.pred("edge", 2);
        let from_a = v.pred("from_a", 1);
        let y = v.var("Y");
        let a = v.cst("a");
        let program = Program::new(vec![Rule::new(
            Atom::new(from_a, vec![Term::Var(y)]),
            vec![Atom::new(edge, vec![Term::Cst(a), Term::Var(y)])],
        )])
        .unwrap();
        let mut edb = Instance::new();
        edb.insert(Fact::new(edge, vec![v.cst("a"), v.cst("b")]));
        edb.insert(Fact::new(edge, vec![v.cst("c"), v.cst("d")]));
        let result = program.eval_semi_naive(&edb);
        let rel = result.model.relation(from_a).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&[v.cst("b")]));
    }

    #[test]
    fn stratified_negation_computes_unreachable_nodes() {
        let mut v = Vocabulary::new();
        let node = v.pred("node", 1);
        let edge = v.pred("edge", 2);
        let reach = v.pred("reach", 1);
        let unreach = v.pred("unreach", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let root = v.cst("a");
        let program = Program::new(vec![
            Rule::new(
                Atom::new(reach, vec![Term::Cst(root)]),
                vec![Atom::new(node, vec![Term::Cst(root)])],
            ),
            Rule::new(
                Atom::new(reach, vec![Term::Var(y)]),
                vec![
                    Atom::new(reach, vec![Term::Var(x)]),
                    Atom::new(edge, vec![Term::Var(x), Term::Var(y)]),
                ],
            ),
            Rule::with_negation(
                Atom::new(unreach, vec![Term::Var(x)]),
                vec![Atom::new(node, vec![Term::Var(x)])],
                vec![Atom::new(reach, vec![Term::Var(x)])],
            ),
        ])
        .unwrap();
        let mut edb = Instance::new();
        for n in ["a", "b", "c", "d"] {
            edb.insert(Fact::new(node, vec![v.cst(n)]));
        }
        edb.insert(Fact::new(edge, vec![v.cst("a"), v.cst("b")]));
        edb.insert(Fact::new(edge, vec![v.cst("c"), v.cst("d")]));
        let naive = program.eval_naive(&edb);
        let semi = program.eval_semi_naive(&edb);
        assert_eq!(naive.model, semi.model);
        let un = naive.model.relation(unreach).unwrap();
        assert_eq!(un.len(), 2);
        assert!(un.contains(&[v.cst("c")]));
        assert!(un.contains(&[v.cst("d")]));
        // Crucially, NOT b: stratification evaluates reach to completion
        // before negating it.
        assert!(!un.contains(&[v.cst("b")]));
    }

    #[test]
    fn negation_with_pivot_rest_bindings() {
        // Exercise the semi-naive pivot path through a negated rule whose
        // remaining body shares variables with the pivot.
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let q = v.pred("q", 2);
        let blocked = v.pred("blocked", 2);
        let out = v.pred("out", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let program = Program::new(vec![
            // q is derived, so out's body gets delta pivots.
            Rule::new(
                Atom::new(q, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
            ),
            Rule::with_negation(
                Atom::new(out, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(q, vec![Term::Var(x), Term::Var(y)])],
                vec![Atom::new(blocked, vec![Term::Var(x), Term::Var(y)])],
            ),
        ])
        .unwrap();
        let mut edb = Instance::new();
        edb.insert(Fact::new(p, vec![v.cst("1"), v.cst("2")]));
        edb.insert(Fact::new(p, vec![v.cst("3"), v.cst("4")]));
        edb.insert(Fact::new(blocked, vec![v.cst("3"), v.cst("4")]));
        let naive = program.eval_naive(&edb);
        let semi = program.eval_semi_naive(&edb);
        assert_eq!(naive.model, semi.model);
        let rel = semi.model.relation(out).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&[v.cst("1"), v.cst("2")]));
    }

    #[test]
    fn maintenance_plans_see_materialized_idb_statistics() {
        // Regression: maintenance plans (delta pivots, DRed support) must
        // be compiled against the materialized model, not the EDB — IDB
        // relations are EDB-empty, so EDB statistics make the planner
        // treat them as free (estimate 0) and mis-order every body that
        // mentions one. All construction paths go through
        // `compile_maintenance`, which this test pins down.
        let mut v = Vocabulary::new();
        let (_, edb) = chain_edb(&mut v, 6);
        let (path, program) = tc_program(&mut v);
        let (compiled, model) =
            CompiledProgram::compile_maintenance(&program, &edb, &Executor::Sequential);
        let path_facts = model.relation(path).unwrap().len();
        assert_eq!(path_facts, 21);
        // The recursive rule path(X,Z) ← path(X,Y), path(Y,Z).
        let recursive = compiled
            .strata
            .iter()
            .flat_map(|s| s.iter())
            .find(|r| r.full.plan().ops().len() == 2)
            .expect("the recursive rule has a two-atom body");
        // Its support plan (head vars bound) starts at the path atom: the
        // estimate must reflect the 21 materialized path facts, not the
        // empty EDB relation.
        let support = recursive.support.as_ref().unwrap();
        let first = &support.plan().ops()[0];
        assert_eq!(first.pred, path);
        assert!(
            first.est > 0,
            "support plan must see materialized path statistics, got est=0"
        );
        // Contrast: compiling the same program against the EDB alone
        // reports the IDB relation as empty.
        let edb_only = CompiledProgram::compile(&program, Some(&edb), true);
        let naive_rule = edb_only
            .strata
            .iter()
            .flat_map(|s| s.iter())
            .find(|r| r.full.plan().ops().len() == 2)
            .unwrap();
        let naive_first = &naive_rule.support.as_ref().unwrap().plan().ops()[0];
        assert_eq!(naive_first.est, 0, "EDB-only stats see path as empty");
    }

    #[test]
    fn same_generation_program() {
        // Classic same-generation: sg(X,X) needs person(X); sg via parents.
        let mut v = Vocabulary::new();
        let parent = v.pred("parent", 2);
        let person = v.pred("person", 1);
        let sg = v.pred("sg", 2);
        let (x, y, xp, yp) = (v.var("X"), v.var("Y"), v.var("XP"), v.var("YP"));
        let program = Program::new(vec![
            Rule::new(
                Atom::new(sg, vec![Term::Var(x), Term::Var(x)]),
                vec![Atom::new(person, vec![Term::Var(x)])],
            ),
            Rule::new(
                Atom::new(sg, vec![Term::Var(x), Term::Var(y)]),
                vec![
                    Atom::new(parent, vec![Term::Var(x), Term::Var(xp)]),
                    Atom::new(sg, vec![Term::Var(xp), Term::Var(yp)]),
                    Atom::new(parent, vec![Term::Var(y), Term::Var(yp)]),
                ],
            ),
        ])
        .unwrap();
        let mut edb = Instance::new();
        for name in ["ann", "bob", "carl", "root"] {
            edb.insert(Fact::new(person, vec![v.cst(name)]));
        }
        // ann and bob are children of root; carl is a child of ann.
        edb.insert(Fact::new(parent, vec![v.cst("ann"), v.cst("root")]));
        edb.insert(Fact::new(parent, vec![v.cst("bob"), v.cst("root")]));
        edb.insert(Fact::new(parent, vec![v.cst("carl"), v.cst("ann")]));
        let naive = program.eval_naive(&edb);
        let semi = program.eval_semi_naive(&edb);
        assert_eq!(naive.model, semi.model);
        let rel = naive.model.relation(sg).unwrap();
        assert!(rel.contains(&[v.cst("ann"), v.cst("bob")]));
        assert!(rel.contains(&[v.cst("bob"), v.cst("ann")]));
        assert!(!rel.contains(&[v.cst("carl"), v.cst("ann")]));
    }
}
