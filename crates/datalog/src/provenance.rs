//! Lazy per-fact provenance: which rule derived each IDB fact, under
//! which grounding, from which body facts.
//!
//! Provenance is **reconstructed on demand** by a naive recording
//! fixpoint, never threaded through the semi-naive or DRed hot paths —
//! when proofs are off, evaluation does not allocate a single extra byte.
//! The reconstruction is well-founded: a justification is recorded only
//! the first time a fact is derived, and its body facts are all members
//! of the pre-round model, so [`Provenance::explain`] always terminates
//! even on recursive programs.
//!
//! After incremental maintenance ([`crate::Materialized::retract`] runs
//! DRed), [`crate::Materialized::provenance`] rebuilds justifications
//! from the *current* EDB, so trees never cite retracted facts.

use std::collections::{BTreeMap, BTreeSet};

use magik_relalg::{homomorphisms, Cst, Fact, Instance, Substitution, Term, Var};

use crate::program::Program;

/// Why one IDB fact holds: the rule that first derived it, the grounding
/// of the rule's variables, and the positive body facts it consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Justification {
    /// Index of the deriving rule in [`Program::rules`].
    pub rule: usize,
    /// The grounding of the rule's variables, sorted by variable.
    pub binding: Vec<(Var, Cst)>,
    /// The grounded positive body, in body order. Each fact is itself in
    /// the model with a strictly earlier justification (or is EDB).
    pub body: Vec<Fact>,
}

/// A fully expanded derivation tree for one fact: leaves are EDB facts
/// (`rule: None`), inner nodes are rule applications whose children
/// derive the grounded body atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationTree {
    /// The derived fact.
    pub fact: Fact,
    /// The applied rule, or `None` for an EDB fact.
    pub rule: Option<usize>,
    /// The grounding of the rule's variables (empty for EDB facts).
    pub binding: Vec<(Var, Cst)>,
    /// One child per positive body atom, in body order.
    pub children: Vec<DerivationTree>,
}

impl DerivationTree {
    /// The number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(DerivationTree::size)
            .sum::<usize>()
    }
}

/// Per-fact provenance for one `(program, edb)` pair: a justification for
/// every derivable IDB fact, plus the EDB for leaf classification.
#[derive(Debug, Clone)]
pub struct Provenance {
    edb: BTreeSet<Fact>,
    justifications: BTreeMap<Fact, Justification>,
}

impl Provenance {
    /// The recorded justification for a derived fact, or `None` for EDB
    /// facts and facts outside the model.
    pub fn justification(&self, fact: &Fact) -> Option<&Justification> {
        self.justifications.get(fact)
    }

    /// `true` iff the fact is in the extensional database.
    pub fn is_edb(&self, fact: &Fact) -> bool {
        self.edb.contains(fact)
    }

    /// `true` iff the fact is in the model (EDB or derived).
    pub fn contains(&self, fact: &Fact) -> bool {
        self.edb.contains(fact) || self.justifications.contains_key(fact)
    }

    /// The number of facts with a recorded justification.
    pub fn derived_count(&self) -> usize {
        self.justifications.len()
    }

    /// Expands the full derivation tree of a fact: EDB facts become
    /// leaves, derived facts recurse through their justification. Returns
    /// `None` for facts outside the model.
    ///
    /// Terminates on recursive programs because justifications are
    /// well-founded (each body fact was derived in an earlier round).
    pub fn explain(&self, fact: &Fact) -> Option<DerivationTree> {
        if self.edb.contains(fact) {
            return Some(DerivationTree {
                fact: fact.clone(),
                rule: None,
                binding: Vec::new(),
                children: Vec::new(),
            });
        }
        let j = self.justifications.get(fact)?;
        let children = j
            .body
            .iter()
            .map(|f| self.explain(f).expect("justifications are well-founded"))
            .collect();
        Some(DerivationTree {
            fact: fact.clone(),
            rule: Some(j.rule),
            binding: j.binding.clone(),
            children,
        })
    }
}

fn binding_of(sub: &Substitution) -> Vec<(Var, Cst)> {
    sub.iter()
        .filter_map(|(v, t)| match t {
            Term::Cst(c) => Some((v, c)),
            Term::Var(_) => None,
        })
        .collect()
}

impl Program {
    /// Computes per-fact provenance for this program over `edb` by a
    /// naive recording fixpoint, stratum by stratum.
    ///
    /// This is deliberately separate from (and slower than) the
    /// semi-naive engine: the hot path stays allocation-free when proofs
    /// are off, and the recording pass is only run when someone asks
    /// *why* a fact holds. The derived model is identical to
    /// [`Program::eval_semi_naive`]'s.
    pub fn provenance(&self, edb: &Instance) -> Provenance {
        let edb_facts: BTreeSet<Fact> = edb.iter_facts().collect();
        let mut model = edb.clone();
        let mut justifications: BTreeMap<Fact, Justification> = BTreeMap::new();
        for stratum in 0..self.num_strata() {
            loop {
                // Collect this round's new derivations against the
                // pre-round model, then insert them all at once: body
                // facts of every justification are strictly prior, which
                // keeps `explain` well-founded.
                let mut pending: Vec<(Fact, Justification)> = Vec::new();
                for (ri, rule) in self.rules().iter().enumerate() {
                    if self.stratum(rule.head.pred) != stratum {
                        continue;
                    }
                    for hom in homomorphisms(&rule.body, &model) {
                        // Safe negation: every negated variable is bound
                        // by the positive body, and stratification makes
                        // the negated (lower-stratum) relations final.
                        let blocked = rule.negative.iter().any(|n| {
                            let f = hom.apply_atom(n).to_fact().expect("safe negation grounds");
                            model.contains(&f)
                        });
                        if blocked {
                            continue;
                        }
                        let fact = hom
                            .apply_atom(&rule.head)
                            .to_fact()
                            .expect("range restriction grounds the head");
                        if model.contains(&fact) || pending.iter().any(|(f, _)| *f == fact) {
                            continue;
                        }
                        let body = rule
                            .body
                            .iter()
                            .map(|a| hom.apply_atom(a).to_fact().expect("hom grounds the body"))
                            .collect();
                        pending.push((
                            fact,
                            Justification {
                                rule: ri,
                                binding: binding_of(&hom),
                                body,
                            },
                        ));
                    }
                }
                if pending.is_empty() {
                    break;
                }
                for (fact, j) in pending {
                    model.insert(fact.clone());
                    justifications.insert(fact, j);
                }
            }
        }
        Provenance {
            edb: edb_facts,
            justifications,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Rule;
    use magik_relalg::{Atom, Vocabulary};

    fn path_program(v: &mut Vocabulary) -> Program {
        let edge = v.pred("edge", 2);
        let path = v.pred("path", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        Program::new(vec![
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
            ),
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
                vec![
                    Atom::new(edge, vec![Term::Var(x), Term::Var(y)]),
                    Atom::new(path, vec![Term::Var(y), Term::Var(z)]),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn provenance_matches_semi_naive_model() {
        let mut v = Vocabulary::new();
        let prog = path_program(&mut v);
        let edge = v.pred("edge", 2);
        let mut edb = Instance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            edb.insert(Fact::new(edge, vec![v.cst(a), v.cst(b)]));
        }
        let model = prog.eval_semi_naive(&edb).model;
        let prov = prog.provenance(&edb);
        for f in model.iter_facts() {
            assert!(prov.contains(&f), "provenance misses {f:?}");
        }
        let path = v.pred("path", 2);
        // 3 + 2 + 1 path facts, each justified.
        assert_eq!(prov.derived_count(), 6);
        let far = Fact::new(path, vec![v.cst("a"), v.cst("d")]);
        let tree = prov.explain(&far).expect("a→d is derivable");
        assert_eq!(tree.fact, far);
        assert_eq!(tree.rule, Some(1));
        // The tree bottoms out on EDB edges within a bounded size.
        assert!(tree.size() <= 7, "tree size {}", tree.size());
        // EDB facts explain as leaves; absent facts do not explain.
        let e = Fact::new(edge, vec![v.cst("a"), v.cst("b")]);
        assert_eq!(prov.explain(&e).unwrap().rule, None);
        assert!(prov
            .explain(&Fact::new(path, vec![v.cst("d"), v.cst("a")]))
            .is_none());
    }

    #[test]
    fn negation_respects_strata() {
        let mut v = Vocabulary::new();
        let node = v.pred("node", 1);
        let hot = v.pred("hot", 1);
        let cold = v.pred("cold", 1);
        let x = v.var("X");
        let prog = Program::new(vec![Rule::with_negation(
            Atom::new(cold, vec![Term::Var(x)]),
            vec![Atom::new(node, vec![Term::Var(x)])],
            vec![Atom::new(hot, vec![Term::Var(x)])],
        )])
        .unwrap();
        let mut edb = Instance::new();
        edb.insert(Fact::new(node, vec![v.cst("a")]));
        edb.insert(Fact::new(node, vec![v.cst("b")]));
        edb.insert(Fact::new(hot, vec![v.cst("b")]));
        let prov = prog.provenance(&edb);
        assert!(prov.contains(&Fact::new(cold, vec![v.cst("a")])));
        assert!(!prov.contains(&Fact::new(cold, vec![v.cst("b")])));
        let tree = prov.explain(&Fact::new(cold, vec![v.cst("a")])).unwrap();
        assert_eq!(tree.children.len(), 1); // only the positive body
    }
}
