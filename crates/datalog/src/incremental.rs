//! Incrementally maintained least models.
//!
//! A long-running service (see `magik-server`) asserts and retracts facts
//! against a slowly evolving rule set. Recomputing the fixpoint from
//! scratch on every change wastes the work of all previous rounds, so
//! **both** mutation directions are maintained incrementally:
//!
//! * *Insertion*: positive Datalog is monotone, so new consequences are
//!   propagated from the inserted facts alone with the same per-(rule,
//!   pivot) delta plans that power semi-naive evaluation.
//! * *Retraction*: deletion is not monotone — removing one base fact can
//!   invalidate any number of derivations — so it runs **DRed**
//!   (delete/re-derive; Gupta, Mumick & Subrahmanian, *Maintaining Views
//!   Incrementally*, SIGMOD 1993), the deletion twin of the semi-naive
//!   machinery:
//!
//!   1. **Over-deletion.** Starting from the retracted EDB facts, compute
//!      every fact with at least one derivation that transitively
//!      consumes a retracted fact. Each round seeds the per-(rule, pivot)
//!      delta plans with the current deletion delta and evaluates the
//!      rest of the body over the model **frozen before any deletion** (a
//!      sound over-approximation), so the whole pass runs on one
//!      [`Snapshot`](magik_relalg::Snapshot) and parallelizes under the
//!      pooled executor exactly like insertion rounds. All marked facts
//!      leave the model.
//!   2. **Re-derivation.** Over-deletion may remove facts that still have
//!      derivations avoiding every retracted fact. Each marked fact is
//!      rescued if it survives in the retained EDB or some rule derives
//!      it in one step from the surviving model (a first-match run of the
//!      rule's head-bound *support plan*); the rescued facts are then
//!      propagated back with the ordinary insertion delta machinery,
//!      which re-derives everything downstream of them.
//!
//! Retraction cost is thus proportional to the derivations touching the
//! retracted facts — not to the model — matching the insertion side. The
//! retired full-recomputation strategy survives as
//! [`Materialized::retract_all_recompute`], the oracle the DRed path is
//! property-tested and benchmarked against.

use magik_exec::Executor;
use magik_relalg::{Fact, Instance};

use crate::eval::CompiledProgram;
use crate::program::Program;

/// Errors constructing a [`Materialized`] model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaterializeError {
    /// The program uses negation: incremental insertion is only sound for
    /// positive (monotone) programs.
    NegationNotSupported,
}

impl std::fmt::Display for MaterializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaterializeError::NegationNotSupported => {
                write!(f, "incremental materialization requires a positive program")
            }
        }
    }
}

impl std::error::Error for MaterializeError {}

/// What one [`Materialized::retract_all`] call did, fact-counted per DRed
/// phase. `overdeleted - rederived` is the net shrinkage of the model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetractStats {
    /// EDB facts actually removed (absent and duplicate facts in the
    /// batch do not count). `0` means the call was a no-op: the model,
    /// the EDB, and every derived result are unchanged.
    pub removed: usize,
    /// Facts the over-deletion pass removed from the model — the
    /// retracted facts themselves plus everything transitively derivable
    /// through them.
    pub overdeleted: usize,
    /// Over-deleted facts the re-derivation pass put back because an
    /// alternative derivation (or the retained EDB) still supports them.
    pub rederived: usize,
}

/// A positive Datalog program together with its continuously maintained
/// least model.
///
/// * [`Materialized::insert`] / [`Materialized::insert_all`] extend the
///   EDB and propagate consequences by **delta semi-naive re-evaluation**
///   — cost proportional to the affected derivations, not the model.
/// * [`Materialized::retract`] / [`Materialized::retract_all`] remove EDB
///   facts and repair the model with **DRed** (over-delete, then
///   re-derive; see the module docs) — the same cost profile, on the
///   deletion side.
///
/// The rules are compiled to execution plans **once**, at construction:
/// insertions, retractions, and every fixpoint round they trigger all
/// reuse the same [`CompiledProgram`] instead of re-planning each rule
/// per operation.
///
/// The model always equals `program.eval_semi_naive(edb).model`; property
/// tests in this crate assert that invariant over random programs and
/// random interleavings of assertions and retractions.
#[derive(Debug, Clone)]
pub struct Materialized {
    program: Program,
    compiled: CompiledProgram,
    edb: Instance,
    model: Instance,
    exec: Executor,
}

impl Materialized {
    /// Materializes `program` over `edb`. Fails if the program uses
    /// negation (incremental insertion would be unsound).
    pub fn new(program: Program, edb: Instance) -> Result<Self, MaterializeError> {
        Materialized::with_executor(program, edb, Executor::Sequential)
    }

    /// [`Materialized::new`] with fixpoint rounds partitioned across
    /// `exec` — the initial materialization, every insertion's delta
    /// propagation, and both DRed passes of every retraction all fan out
    /// on it. The maintained model is identical to the sequential one.
    pub fn with_executor(
        program: Program,
        edb: Instance,
        exec: Executor,
    ) -> Result<Self, MaterializeError> {
        if program.rules().iter().any(|r| !r.negative.is_empty()) {
            return Err(MaterializeError::NegationNotSupported);
        }
        // All maintenance plans come from the one code path that
        // guarantees materialized-model statistics for IDB relations (see
        // [`CompiledProgram::compile_maintenance`]).
        let (compiled, model) = CompiledProgram::compile_maintenance(&program, &edb, &exec);
        Ok(Materialized {
            program,
            compiled,
            edb,
            model,
            exec,
        })
    }

    /// The maintained least model (EDB plus all derived facts).
    pub fn model(&self) -> &Instance {
        &self.model
    }

    /// The base facts.
    pub fn edb(&self) -> &Instance {
        &self.edb
    }

    /// The rules.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Reconstructs per-fact provenance for the **current** state by
    /// running [`Program::provenance`] over the current EDB.
    ///
    /// Because the justifications are rebuilt from scratch, they are
    /// valid after any sequence of [`Materialized::insert`] /
    /// [`Materialized::retract`] calls — DRed may restore a fact through
    /// a different rule than first derived it, and reconstruction never
    /// cites a retracted fact.
    pub fn provenance(&self) -> crate::provenance::Provenance {
        self.program.provenance(&self.edb)
    }

    /// Asserts one fact; returns the number of facts the model gained
    /// (the fact itself plus everything newly derivable from it).
    ///
    /// A return of `0` means the model is unchanged — the fact was
    /// already present (or already derived), so callers maintaining
    /// derived state (caches, epochs, published snapshots) can skip
    /// invalidation. The EDB still remembers an already-derived fact as a
    /// base fact, which matters to later retractions: an EDB fact
    /// survives DRed even when every rule deriving it dies.
    pub fn insert(&mut self, fact: Fact) -> usize {
        self.insert_all(std::iter::once(fact))
    }

    /// Asserts a batch of facts; returns the number of facts the model
    /// gained (`0` iff the model is unchanged — see
    /// [`Materialized::insert`]). One delta propagation covers the whole
    /// batch.
    pub fn insert_all(&mut self, facts: impl IntoIterator<Item = Fact>) -> usize {
        let mut delta = Vec::new();
        for fact in facts {
            self.edb.insert(fact.clone());
            if self.model.insert(fact.clone()) {
                delta.push(fact);
            }
        }
        let seeds = delta.len();
        let (_, derived) = self
            .compiled
            .propagate_delta_on(&mut self.model, delta, &self.exec);
        seeds + derived
    }

    /// Retracts one EDB fact by DRed; returns `true` if it was present
    /// (`false` means the call was a no-op — derived facts are not EDB
    /// facts and cannot be retracted).
    pub fn retract(&mut self, fact: &Fact) -> bool {
        self.retract_all(std::iter::once(fact.clone())).removed > 0
    }

    /// Retracts a batch of EDB facts and repairs the model with one DRed
    /// pass (see the module docs): over-delete everything transitively
    /// derivable through the batch against the pre-retraction model, then
    /// rescue the over-deleted facts that the retained EDB or a surviving
    /// derivation still supports. Absent facts (and duplicates within the
    /// batch) are ignored; cost scales with the affected derivations, not
    /// the model.
    pub fn retract_all(&mut self, facts: impl IntoIterator<Item = Fact>) -> RetractStats {
        let mut seeds = Vec::new();
        for fact in facts {
            if self.edb.remove(&fact) {
                seeds.push(fact);
            }
        }
        if seeds.is_empty() {
            return RetractStats::default();
        }
        let removed = seeds.len();

        // Phase 1 — over-deletion, against the model frozen before any
        // removal. Everything marked leaves the model. The snapshot must
        // die before the removal loop: mutating the model while a
        // snapshot still shares its relations forces a copy-on-write deep
        // copy of every touched relation — O(model), the exact cost DRed
        // exists to avoid.
        let frozen = self.model.snapshot();
        let marked = self.compiled.overdelete_on(&frozen, seeds, &self.exec);
        drop(frozen);
        let mut overdeleted = 0;
        for fact in &marked {
            if self.model.remove(fact) {
                overdeleted += 1;
            }
        }

        // Phase 2 — re-derivation. Retained EDB facts are self-supported;
        // the rest need one surviving rule derivation over the pruned
        // model. The rescued facts then re-enter through the ordinary
        // insertion delta machinery, which restores their consequences.
        // (Same snapshot discipline: drop before re-inserting.)
        let survivors = self.model.snapshot();
        let (kept_edb, candidates): (Vec<Fact>, Vec<Fact>) =
            marked.into_iter().partition(|f| self.edb.contains(f));
        let mut rescue = kept_edb;
        rescue.extend(
            self.compiled
                .supported_on(&survivors, candidates, &self.exec),
        );
        drop(survivors);
        let mut rederived = 0;
        let mut delta = Vec::new();
        for fact in rescue {
            if self.model.insert(fact.clone()) {
                delta.push(fact);
                rederived += 1;
            }
        }
        let (_, propagated) = self
            .compiled
            .propagate_delta_on(&mut self.model, delta, &self.exec);
        rederived += propagated;

        RetractStats {
            removed,
            overdeleted,
            rederived,
        }
    }

    /// Retracts a batch with the retired **full-recomputation** strategy:
    /// remove the facts from the EDB and re-run the whole semi-naive
    /// fixpoint (with the construction-time plans). Returns the number of
    /// EDB facts removed.
    ///
    /// Kept as the oracle the DRed path is property-tested and
    /// benchmarked against — production callers want
    /// [`Materialized::retract_all`].
    pub fn retract_all_recompute(&mut self, facts: impl IntoIterator<Item = Fact>) -> usize {
        let mut removed = 0;
        for fact in facts {
            removed += usize::from(self.edb.remove(&fact));
        }
        if removed > 0 {
            self.model = self
                .compiled
                .eval_semi_naive_on(&self.edb, &self.exec)
                .model;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Rule;
    use magik_relalg::{Atom, Term, Vocabulary};

    fn tc_setup(v: &mut Vocabulary) -> (magik_relalg::Pred, magik_relalg::Pred, Program) {
        let edge = v.pred("edge", 2);
        let path = v.pred("path", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let program = Program::new(vec![
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
            ),
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
                vec![
                    Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                    Atom::new(edge, vec![Term::Var(y), Term::Var(z)]),
                ],
            ),
        ])
        .unwrap();
        (edge, path, program)
    }

    fn edge_fact(v: &mut Vocabulary, e: magik_relalg::Pred, a: &str, b: &str) -> Fact {
        Fact::new(e, vec![v.cst(a), v.cst(b)])
    }

    /// The invariant every operation must preserve.
    fn assert_matches_scratch(m: &Materialized) {
        let scratch = m.program().eval_semi_naive(m.edb()).model;
        assert_eq!(m.model(), &scratch);
    }

    #[test]
    fn insert_extends_closure_incrementally() {
        let mut v = Vocabulary::new();
        let (edge, path, program) = tc_setup(&mut v);
        let mut m = Materialized::new(program, Instance::new()).unwrap();
        assert!(m.model().is_empty());

        // Grow a chain one edge at a time; each insertion derives exactly
        // the paths ending at the new node.
        for i in 0..6 {
            let gained = m.insert(edge_fact(
                &mut v,
                edge,
                &format!("n{i}"),
                &format!("n{}", i + 1),
            ));
            // 1 edge fact + paths from each of the i+1 earlier nodes.
            assert_eq!(gained, 1 + (i + 1));
            assert_matches_scratch(&m);
        }
        assert_eq!(m.model().relation(path).unwrap().len(), 21);
    }

    #[test]
    fn batch_insert_equals_separate_inserts() {
        let mut v = Vocabulary::new();
        let (edge, _, program) = tc_setup(&mut v);
        let facts = vec![
            edge_fact(&mut v, edge, "a", "b"),
            edge_fact(&mut v, edge, "b", "c"),
            edge_fact(&mut v, edge, "c", "a"),
            edge_fact(&mut v, edge, "c", "a"), // duplicate in one batch
        ];
        let mut batched = Materialized::new(program.clone(), Instance::new()).unwrap();
        let gained = batched.insert_all(facts.clone());
        let mut one_by_one = Materialized::new(program, Instance::new()).unwrap();
        let singles: usize = facts.into_iter().map(|f| one_by_one.insert(f)).sum();
        assert_eq!(gained, singles);
        assert_eq!(batched.model(), one_by_one.model());
        assert_matches_scratch(&batched);
        // 3 edges + full 3x3 cycle closure.
        assert_eq!(batched.model().len(), 3 + 9);
    }

    #[test]
    fn retract_deletes_consequences() {
        let mut v = Vocabulary::new();
        let (edge, path, program) = tc_setup(&mut v);
        let mut m = Materialized::new(program, Instance::new()).unwrap();
        m.insert_all([
            edge_fact(&mut v, edge, "a", "b"),
            edge_fact(&mut v, edge, "b", "c"),
        ]);
        assert!(m
            .model()
            .contains(&Fact::new(path, vec![v.cst("a"), v.cst("c")])));
        assert!(m.retract(&edge_fact(&mut v, edge, "b", "c")));
        assert!(!m
            .model()
            .contains(&Fact::new(path, vec![v.cst("a"), v.cst("c")])));
        assert_matches_scratch(&m);
        // Retracting an absent fact is a no-op.
        assert!(!m.retract(&edge_fact(&mut v, edge, "b", "c")));
        // A derived fact is not an EDB fact and cannot be retracted.
        assert!(!m.retract(&Fact::new(path, vec![v.cst("a"), v.cst("b")])));
        assert_matches_scratch(&m);
    }

    #[test]
    fn rederivation_rescues_alternative_derivations() {
        let mut v = Vocabulary::new();
        let (edge, path, program) = tc_setup(&mut v);
        let mut m = Materialized::new(program, Instance::new()).unwrap();
        // path(a,c) holds both via the direct edge and via the chain
        // through b; DRed over-deletes it when the direct edge dies, and
        // the re-derivation pass must bring it back.
        m.insert_all([
            edge_fact(&mut v, edge, "a", "b"),
            edge_fact(&mut v, edge, "b", "c"),
            edge_fact(&mut v, edge, "a", "c"),
        ]);
        let stats = m.retract_all([edge_fact(&mut v, edge, "a", "c")]);
        assert_eq!(stats.removed, 1);
        assert!(stats.overdeleted >= 2); // edge(a,c) and path(a,c) at least
        assert!(stats.rederived >= 1); // path(a,c) survives via the chain
        assert!(m
            .model()
            .contains(&Fact::new(path, vec![v.cst("a"), v.cst("c")])));
        assert_matches_scratch(&m);
    }

    #[test]
    fn retained_edb_fact_survives_overdeletion() {
        let mut v = Vocabulary::new();
        let (edge, path, program) = tc_setup(&mut v);
        let mut m = Materialized::new(program, Instance::new()).unwrap();
        // path(a,c) is asserted as a *base* fact in addition to being
        // derived; retracting the edge that derived it must not delete it.
        m.insert_all([
            edge_fact(&mut v, edge, "a", "b"),
            edge_fact(&mut v, edge, "b", "c"),
        ]);
        m.insert(Fact::new(path, vec![v.cst("a"), v.cst("c")]));
        assert!(m.retract(&edge_fact(&mut v, edge, "b", "c")));
        assert!(m
            .model()
            .contains(&Fact::new(path, vec![v.cst("a"), v.cst("c")])));
        assert_matches_scratch(&m);
    }

    #[test]
    fn batch_retract_equals_separate_retracts() {
        let mut v = Vocabulary::new();
        let (edge, _, program) = tc_setup(&mut v);
        let facts = vec![
            edge_fact(&mut v, edge, "a", "b"),
            edge_fact(&mut v, edge, "b", "c"),
            edge_fact(&mut v, edge, "c", "d"),
            edge_fact(&mut v, edge, "d", "a"),
        ];
        let gone = vec![
            edge_fact(&mut v, edge, "b", "c"),
            edge_fact(&mut v, edge, "d", "a"),
            edge_fact(&mut v, edge, "d", "a"), // duplicate in one batch
            edge_fact(&mut v, edge, "x", "y"), // never present
        ];
        let mut batched = Materialized::new(program.clone(), Instance::new()).unwrap();
        batched.insert_all(facts.clone());
        let stats = batched.retract_all(gone.clone());
        assert_eq!(stats.removed, 2);

        let mut one_by_one = Materialized::new(program, Instance::new()).unwrap();
        one_by_one.insert_all(facts);
        let singles = gone.iter().filter(|f| one_by_one.retract(f)).count();
        assert_eq!(stats.removed, singles);
        assert_eq!(batched.model(), one_by_one.model());
        assert_matches_scratch(&batched);
    }

    #[test]
    fn dred_matches_recompute_oracle() {
        let mut v = Vocabulary::new();
        let (edge, _, program) = tc_setup(&mut v);
        // A dense cycle: most paths have many derivations, stressing the
        // re-derivation pass.
        let nodes = ["a", "b", "c", "d", "e"];
        let mut facts = Vec::new();
        for (i, from) in nodes.iter().enumerate() {
            for to in nodes.iter().skip(i + 1) {
                facts.push(edge_fact(&mut v, edge, from, to));
            }
        }
        facts.push(edge_fact(&mut v, edge, "e", "a"));

        let mut dred = Materialized::new(program.clone(), Instance::new()).unwrap();
        dred.insert_all(facts.clone());
        let mut oracle = Materialized::new(program, Instance::new()).unwrap();
        oracle.insert_all(facts.clone());

        for gone in [
            edge_fact(&mut v, edge, "a", "c"),
            edge_fact(&mut v, edge, "e", "a"),
            edge_fact(&mut v, edge, "b", "d"),
        ] {
            let stats = dred.retract_all([gone.clone()]);
            let removed = oracle.retract_all_recompute([gone]);
            assert_eq!(stats.removed, removed);
            assert_eq!(dred.model(), oracle.model());
            assert_matches_scratch(&dred);
        }
    }

    #[test]
    fn negation_is_rejected() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let q = v.pred("q", 1);
        let r = v.pred("r", 1);
        let x = v.var("X");
        let program = Program::new(vec![Rule::with_negation(
            Atom::new(q, vec![Term::Var(x)]),
            vec![Atom::new(p, vec![Term::Var(x)])],
            vec![Atom::new(r, vec![Term::Var(x)])],
        )])
        .unwrap();
        assert_eq!(
            Materialized::new(program, Instance::new()).unwrap_err(),
            MaterializeError::NegationNotSupported
        );
    }
}
