//! Incrementally maintained least models.
//!
//! A long-running service (see `magik-server`) asserts and retracts facts
//! against a slowly evolving rule set. Recomputing the fixpoint from
//! scratch on every change wastes the work of all previous rounds;
//! positive Datalog is **monotone**, so an *insertion* can instead be
//! propagated from the new facts alone using the same delta machinery
//! that powers semi-naive evaluation. *Retraction* is not monotone —
//! deleting one base fact can invalidate any number of derivations — so
//! v1 falls back to recomputation from the retained EDB, behind the same
//! API (the classic DRed over-deletion algorithm can replace it without a
//! signature change).

use magik_exec::Executor;
use magik_relalg::{Fact, Instance};

use crate::eval::CompiledProgram;
use crate::program::Program;

/// Errors constructing a [`Materialized`] model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaterializeError {
    /// The program uses negation: incremental insertion is only sound for
    /// positive (monotone) programs.
    NegationNotSupported,
}

impl std::fmt::Display for MaterializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaterializeError::NegationNotSupported => {
                write!(f, "incremental materialization requires a positive program")
            }
        }
    }
}

impl std::error::Error for MaterializeError {}

/// A positive Datalog program together with its continuously maintained
/// least model.
///
/// * [`Materialized::insert`] / [`Materialized::insert_all`] extend the
///   EDB and propagate consequences by **delta semi-naive re-evaluation**
///   — cost proportional to the affected derivations, not the model.
/// * [`Materialized::retract`] removes an EDB fact and **recomputes** the
///   model (correct, not incremental; see the module docs).
///
/// The rules are compiled to execution plans **once**, at construction:
/// insertions, retraction recomputations, and every fixpoint round they
/// trigger all reuse the same [`CompiledProgram`] instead of re-planning
/// each rule per operation.
///
/// The model always equals `program.eval_semi_naive(edb).model`; property
/// tests in this crate assert that invariant over random programs and
/// random interleavings of assertions and retractions.
#[derive(Debug, Clone)]
pub struct Materialized {
    program: Program,
    compiled: CompiledProgram,
    edb: Instance,
    model: Instance,
    exec: Executor,
}

impl Materialized {
    /// Materializes `program` over `edb`. Fails if the program uses
    /// negation (incremental insertion would be unsound).
    pub fn new(program: Program, edb: Instance) -> Result<Self, MaterializeError> {
        Materialized::with_executor(program, edb, Executor::Sequential)
    }

    /// [`Materialized::new`] with fixpoint rounds partitioned across
    /// `exec` — the initial materialization, every insertion's delta
    /// propagation, and every retraction's recomputation all fan out on
    /// it. The maintained model is identical to the sequential one.
    pub fn with_executor(
        program: Program,
        edb: Instance,
        exec: Executor,
    ) -> Result<Self, MaterializeError> {
        if program.rules().iter().any(|r| !r.negative.is_empty()) {
            return Err(MaterializeError::NegationNotSupported);
        }
        let compiled = CompiledProgram::compile(&program, Some(&edb), true);
        let model = compiled.eval_semi_naive_on(&edb, &exec).model;
        Ok(Materialized {
            program,
            compiled,
            edb,
            model,
            exec,
        })
    }

    /// The maintained least model (EDB plus all derived facts).
    pub fn model(&self) -> &Instance {
        &self.model
    }

    /// The base facts.
    pub fn edb(&self) -> &Instance {
        &self.edb
    }

    /// The rules.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Asserts one fact; returns the number of facts the model gained
    /// (the fact itself plus everything newly derivable from it).
    pub fn insert(&mut self, fact: Fact) -> usize {
        self.insert_all(std::iter::once(fact))
    }

    /// Asserts a batch of facts; returns the number of facts the model
    /// gained. One delta propagation covers the whole batch.
    pub fn insert_all(&mut self, facts: impl IntoIterator<Item = Fact>) -> usize {
        let mut delta = Vec::new();
        for fact in facts {
            self.edb.insert(fact.clone());
            if self.model.insert(fact.clone()) {
                delta.push(fact);
            }
        }
        let seeds = delta.len();
        let (_, derived) = self
            .compiled
            .propagate_delta_on(&mut self.model, delta, &self.exec);
        seeds + derived
    }

    /// Retracts one EDB fact; returns `true` if it was present. The model
    /// is recomputed from the retained EDB (fallback strategy, same API
    /// an incremental deletion would have) — but with the plans compiled
    /// at construction, not re-planned per retract.
    pub fn retract(&mut self, fact: &Fact) -> bool {
        if !self.edb.remove(fact) {
            return false;
        }
        self.model = self
            .compiled
            .eval_semi_naive_on(&self.edb, &self.exec)
            .model;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Rule;
    use magik_relalg::{Atom, Term, Vocabulary};

    fn tc_setup(v: &mut Vocabulary) -> (magik_relalg::Pred, magik_relalg::Pred, Program) {
        let edge = v.pred("edge", 2);
        let path = v.pred("path", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let program = Program::new(vec![
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
            ),
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
                vec![
                    Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                    Atom::new(edge, vec![Term::Var(y), Term::Var(z)]),
                ],
            ),
        ])
        .unwrap();
        (edge, path, program)
    }

    fn edge_fact(v: &mut Vocabulary, e: magik_relalg::Pred, a: &str, b: &str) -> Fact {
        Fact::new(e, vec![v.cst(a), v.cst(b)])
    }

    /// The invariant every operation must preserve.
    fn assert_matches_scratch(m: &Materialized) {
        let scratch = m.program().eval_semi_naive(m.edb()).model;
        assert_eq!(m.model(), &scratch);
    }

    #[test]
    fn insert_extends_closure_incrementally() {
        let mut v = Vocabulary::new();
        let (edge, path, program) = tc_setup(&mut v);
        let mut m = Materialized::new(program, Instance::new()).unwrap();
        assert!(m.model().is_empty());

        // Grow a chain one edge at a time; each insertion derives exactly
        // the paths ending at the new node.
        for i in 0..6 {
            let gained = m.insert(edge_fact(
                &mut v,
                edge,
                &format!("n{i}"),
                &format!("n{}", i + 1),
            ));
            // 1 edge fact + paths from each of the i+1 earlier nodes.
            assert_eq!(gained, 1 + (i + 1));
            assert_matches_scratch(&m);
        }
        assert_eq!(m.model().relation(path).unwrap().len(), 21);
    }

    #[test]
    fn batch_insert_equals_separate_inserts() {
        let mut v = Vocabulary::new();
        let (edge, _, program) = tc_setup(&mut v);
        let facts = vec![
            edge_fact(&mut v, edge, "a", "b"),
            edge_fact(&mut v, edge, "b", "c"),
            edge_fact(&mut v, edge, "c", "a"),
            edge_fact(&mut v, edge, "c", "a"), // duplicate in one batch
        ];
        let mut batched = Materialized::new(program.clone(), Instance::new()).unwrap();
        let gained = batched.insert_all(facts.clone());
        let mut one_by_one = Materialized::new(program, Instance::new()).unwrap();
        let singles: usize = facts.into_iter().map(|f| one_by_one.insert(f)).sum();
        assert_eq!(gained, singles);
        assert_eq!(batched.model(), one_by_one.model());
        assert_matches_scratch(&batched);
        // 3 edges + full 3x3 cycle closure.
        assert_eq!(batched.model().len(), 3 + 9);
    }

    #[test]
    fn retract_recomputes() {
        let mut v = Vocabulary::new();
        let (edge, path, program) = tc_setup(&mut v);
        let mut m = Materialized::new(program, Instance::new()).unwrap();
        m.insert_all([
            edge_fact(&mut v, edge, "a", "b"),
            edge_fact(&mut v, edge, "b", "c"),
        ]);
        assert!(m
            .model()
            .contains(&Fact::new(path, vec![v.cst("a"), v.cst("c")])));
        assert!(m.retract(&edge_fact(&mut v, edge, "b", "c")));
        assert!(!m
            .model()
            .contains(&Fact::new(path, vec![v.cst("a"), v.cst("c")])));
        assert_matches_scratch(&m);
        // Retracting an absent fact is a no-op.
        assert!(!m.retract(&edge_fact(&mut v, edge, "b", "c")));
        // A derived fact is not an EDB fact and cannot be retracted.
        assert!(!m.retract(&Fact::new(path, vec![v.cst("a"), v.cst("b")])));
        assert_matches_scratch(&m);
    }

    #[test]
    fn negation_is_rejected() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let q = v.pred("q", 1);
        let r = v.pred("r", 1);
        let x = v.var("X");
        let program = Program::new(vec![Rule::with_negation(
            Atom::new(q, vec![Term::Var(x)]),
            vec![Atom::new(p, vec![Term::Var(x)])],
            vec![Atom::new(r, vec![Term::Var(x)])],
        )])
        .unwrap();
        assert_eq!(
            Materialized::new(program, Instance::new()).unwrap_err(),
            MaterializeError::NegationNotSupported
        );
    }
}
