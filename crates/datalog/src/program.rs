//! Rules, programs and their dependency structure.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use magik_relalg::{Atom, DisplayWith, Pred, Var, Vocabulary};

/// A Datalog rule `head ← body, not n₁, …, not nₘ`.
///
/// The positive body is `body`; `negative` lists atoms under
/// negation-as-failure. Programs with negation must be stratified
/// ([`Program::new`] rejects recursion through negation) and are
/// evaluated stratum by stratum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The positive body atoms (conjunction).
    pub body: Vec<Atom>,
    /// The negated body atoms.
    pub negative: Vec<Atom>,
}

impl Rule {
    /// Creates a positive rule.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        Rule {
            head,
            body,
            negative: Vec::new(),
        }
    }

    /// Creates a rule with negated body atoms.
    pub fn with_negation(head: Atom, body: Vec<Atom>, negative: Vec<Atom>) -> Self {
        Rule {
            head,
            body,
            negative,
        }
    }

    /// A fact rule (empty body, ground head expected).
    pub fn fact(head: Atom) -> Self {
        Rule::new(head, Vec::new())
    }

    /// `true` iff every head variable occurs in the positive body (range
    /// restriction, a.k.a. safety for Datalog rules).
    pub fn is_range_restricted(&self) -> bool {
        let body_vars: BTreeSet<Var> = self.body.iter().flat_map(Atom::vars).collect();
        self.head.vars().all(|v| body_vars.contains(&v))
    }

    /// `true` iff every variable of a negated atom occurs in the positive
    /// body (safe negation — no floundering).
    pub fn has_safe_negation(&self) -> bool {
        let body_vars: BTreeSet<Var> = self.body.iter().flat_map(Atom::vars).collect();
        self.negative
            .iter()
            .flat_map(Atom::vars)
            .all(|v| body_vars.contains(&v))
    }
}

impl DisplayWith for Rule {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head.display(vocab))?;
        if !self.body.is_empty() || !self.negative.is_empty() {
            f.write_str(" :- ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", a.display(vocab))?;
            }
            for (i, a) in self.negative.iter().enumerate() {
                if i > 0 || !self.body.is_empty() {
                    f.write_str(", ")?;
                }
                write!(f, "not {}", a.display(vocab))?;
            }
        }
        f.write_str(".")
    }
}

/// Errors raised when building a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A rule has a head variable that does not occur in its positive
    /// body, so forward application could derive non-ground facts.
    NotRangeRestricted {
        /// Index of the offending rule.
        rule: usize,
        /// The unrestricted head variable.
        var: Var,
    },
    /// A negated atom has a variable not bound by the positive body
    /// (negation would flounder).
    UnsafeNegation {
        /// Index of the offending rule.
        rule: usize,
    },
    /// The program is not stratifiable: some predicate depends on itself
    /// through negation.
    NotStratifiable {
        /// A predicate on the offending cycle.
        pred: Pred,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::NotRangeRestricted { rule, var } => write!(
                f,
                "rule #{rule} is not range-restricted: head variable #{} not in body",
                var.index()
            ),
            ProgramError::UnsafeNegation { rule } => write!(
                f,
                "rule #{rule} has a negated atom with a variable not bound by the positive body"
            ),
            ProgramError::NotStratifiable { pred } => write!(
                f,
                "program is not stratifiable: relation #{} depends on itself through negation",
                pred.index()
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A stratified Datalog program: a validated set of range-restricted,
/// safely negated rules with no recursion through negation.
#[derive(Debug, Clone, Default)]
pub struct Program {
    rules: Vec<Rule>,
    /// Stratum of each IDB predicate (EDB predicates are stratum 0).
    strata: BTreeMap<Pred, usize>,
}

impl Program {
    /// Creates a program, validating range restriction, negation safety
    /// and stratifiability.
    pub fn new(rules: Vec<Rule>) -> Result<Self, ProgramError> {
        for (i, rule) in rules.iter().enumerate() {
            if !rule.is_range_restricted() {
                let body_vars: BTreeSet<Var> = rule.body.iter().flat_map(Atom::vars).collect();
                let var = rule
                    .head
                    .vars()
                    .find(|v| !body_vars.contains(v))
                    .expect("checked unrestricted");
                return Err(ProgramError::NotRangeRestricted { rule: i, var });
            }
            if !rule.has_safe_negation() {
                return Err(ProgramError::UnsafeNegation { rule: i });
            }
        }
        let strata = compute_strata(&rules)?;
        Ok(Program { rules, strata })
    }

    /// The stratum of a predicate (0 for EDB predicates).
    pub fn stratum(&self, pred: Pred) -> usize {
        self.strata.get(&pred).copied().unwrap_or(0)
    }

    /// Number of strata (1 for purely positive programs).
    pub fn num_strata(&self) -> usize {
        self.strata.values().max().map_or(1, |m| m + 1)
    }

    /// The rules of the program.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The *intensional* predicates: those occurring in some rule head.
    pub fn idb_preds(&self) -> BTreeSet<Pred> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// The *extensional* predicates: those occurring only in rule bodies.
    pub fn edb_preds(&self) -> BTreeSet<Pred> {
        let idb = self.idb_preds();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter().map(|a| a.pred))
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// The predicate dependency graph: `head → {body predicates}` for every
    /// rule (positive and negative dependencies alike).
    pub fn dependency_graph(&self) -> BTreeMap<Pred, BTreeSet<Pred>> {
        let mut graph: BTreeMap<Pred, BTreeSet<Pred>> = BTreeMap::new();
        for rule in &self.rules {
            let entry = graph.entry(rule.head.pred).or_default();
            entry.extend(rule.body.iter().map(|a| a.pred));
            entry.extend(rule.negative.iter().map(|a| a.pred));
        }
        graph
    }

    /// `true` iff some IDB predicate (transitively) depends on itself.
    pub fn is_recursive(&self) -> bool {
        let graph = self.dependency_graph();
        // DFS cycle detection restricted to IDB nodes.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            InProgress,
            Done,
        }
        let mut marks: BTreeMap<Pred, Mark> = BTreeMap::new();
        fn visit(
            p: Pred,
            graph: &BTreeMap<Pred, BTreeSet<Pred>>,
            marks: &mut BTreeMap<Pred, Mark>,
        ) -> bool {
            match marks.get(&p) {
                Some(Mark::InProgress) => return true,
                Some(Mark::Done) => return false,
                None => {}
            }
            let Some(succs) = graph.get(&p) else {
                marks.insert(p, Mark::Done);
                return false;
            };
            marks.insert(p, Mark::InProgress);
            for &s in succs {
                if visit(s, graph, marks) {
                    return true;
                }
            }
            marks.insert(p, Mark::Done);
            false
        }
        graph.keys().any(|&p| visit(p, &graph, &mut marks))
    }
}

/// Computes the stratum of every IDB predicate by iterative relaxation:
/// `stratum(head) ≥ stratum(b)` for positive body atoms and
/// `stratum(head) ≥ stratum(n) + 1` for negated ones. Fails if a stratum
/// exceeds the number of IDB predicates (a negative cycle).
fn compute_strata(rules: &[Rule]) -> Result<BTreeMap<Pred, usize>, ProgramError> {
    let idb: BTreeSet<Pred> = rules.iter().map(|r| r.head.pred).collect();
    let mut strata: BTreeMap<Pred, usize> = idb.iter().map(|&p| (p, 0)).collect();
    let limit = idb.len();
    loop {
        let mut changed = false;
        for rule in rules {
            let head = rule.head.pred;
            let mut required = strata[&head];
            for a in &rule.body {
                if let Some(&s) = strata.get(&a.pred) {
                    required = required.max(s);
                }
            }
            for n in &rule.negative {
                let s = strata.get(&n.pred).copied().unwrap_or(0);
                required = required.max(s + 1);
            }
            if required > strata[&head] {
                if required > limit {
                    return Err(ProgramError::NotStratifiable { pred: head });
                }
                strata.insert(head, required);
                changed = true;
            }
        }
        if !changed {
            return Ok(strata);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::Term;

    fn edge_path(v: &mut Vocabulary) -> (Pred, Pred, Program) {
        let edge = v.pred("edge", 2);
        let path = v.pred("path", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let program = Program::new(vec![
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
            ),
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
                vec![
                    Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                    Atom::new(edge, vec![Term::Var(y), Term::Var(z)]),
                ],
            ),
        ])
        .unwrap();
        (edge, path, program)
    }

    #[test]
    fn range_restriction_is_enforced() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let r = v.pred("r", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let bad = Rule::new(
            Atom::new(p, vec![Term::Var(y)]),
            vec![Atom::new(r, vec![Term::Var(x)])],
        );
        assert!(!bad.is_range_restricted());
        let err = Program::new(vec![bad]).unwrap_err();
        assert_eq!(err, ProgramError::NotRangeRestricted { rule: 0, var: y });
    }

    #[test]
    fn ground_head_facts_are_range_restricted() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let fact = Rule::fact(Atom::new(p, vec![Term::Cst(v.cst("a"))]));
        assert!(fact.is_range_restricted());
        assert!(Program::new(vec![fact]).is_ok());
    }

    #[test]
    fn idb_edb_classification() {
        let mut v = Vocabulary::new();
        let (edge, path, program) = edge_path(&mut v);
        assert_eq!(program.idb_preds(), BTreeSet::from([path]));
        assert_eq!(program.edb_preds(), BTreeSet::from([edge]));
    }

    #[test]
    fn recursion_detection() {
        let mut v = Vocabulary::new();
        let (_, _, recursive) = edge_path(&mut v);
        assert!(recursive.is_recursive());

        let p = v.pred("p", 1);
        let r = v.pred("r", 1);
        let x = v.var("X");
        let flat = Program::new(vec![Rule::new(
            Atom::new(p, vec![Term::Var(x)]),
            vec![Atom::new(r, vec![Term::Var(x)])],
        )])
        .unwrap();
        assert!(!flat.is_recursive());
    }

    #[test]
    fn mutual_recursion_is_detected() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let q = v.pred("q", 1);
        let x = v.var("X");
        let program = Program::new(vec![
            Rule::new(
                Atom::new(p, vec![Term::Var(x)]),
                vec![Atom::new(q, vec![Term::Var(x)])],
            ),
            Rule::new(
                Atom::new(q, vec![Term::Var(x)]),
                vec![Atom::new(p, vec![Term::Var(x)])],
            ),
        ])
        .unwrap();
        assert!(program.is_recursive());
    }

    #[test]
    fn unsafe_negation_is_rejected() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let r = v.pred("r", 1);
        let s = v.pred("s", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        // p(X) :- r(X), not s(Y): Y unbound.
        let bad = Rule::with_negation(
            Atom::new(p, vec![Term::Var(x)]),
            vec![Atom::new(r, vec![Term::Var(x)])],
            vec![Atom::new(s, vec![Term::Var(y)])],
        );
        assert!(!bad.has_safe_negation());
        assert_eq!(
            Program::new(vec![bad]).unwrap_err(),
            ProgramError::UnsafeNegation { rule: 0 }
        );
    }

    #[test]
    fn negative_self_recursion_is_rejected() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let r = v.pred("r", 1);
        let x = v.var("X");
        // p(X) :- r(X), not p(X).
        let bad = Rule::with_negation(
            Atom::new(p, vec![Term::Var(x)]),
            vec![Atom::new(r, vec![Term::Var(x)])],
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        assert!(matches!(
            Program::new(vec![bad]),
            Err(ProgramError::NotStratifiable { .. })
        ));
    }

    #[test]
    fn negative_cycle_through_two_predicates_is_rejected() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let q = v.pred("q", 1);
        let r = v.pred("r", 1);
        let x = v.var("X");
        let rules = vec![
            Rule::with_negation(
                Atom::new(p, vec![Term::Var(x)]),
                vec![Atom::new(r, vec![Term::Var(x)])],
                vec![Atom::new(q, vec![Term::Var(x)])],
            ),
            Rule::with_negation(
                Atom::new(q, vec![Term::Var(x)]),
                vec![Atom::new(r, vec![Term::Var(x)])],
                vec![Atom::new(p, vec![Term::Var(x)])],
            ),
        ];
        assert!(matches!(
            Program::new(rules),
            Err(ProgramError::NotStratifiable { .. })
        ));
    }

    #[test]
    fn strata_are_computed_per_predicate() {
        let mut v = Vocabulary::new();
        let reach = v.pred("reach", 1);
        let unreach = v.pred("unreach", 1);
        let node = v.pred("node", 1);
        let edge = v.pred("edge", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let program = Program::new(vec![
            Rule::new(
                Atom::new(reach, vec![Term::Var(x)]),
                vec![Atom::new(
                    edge,
                    vec![Term::Cst(v.cst("root")), Term::Var(x)],
                )],
            ),
            Rule::new(
                Atom::new(reach, vec![Term::Var(y)]),
                vec![
                    Atom::new(reach, vec![Term::Var(x)]),
                    Atom::new(edge, vec![Term::Var(x), Term::Var(y)]),
                ],
            ),
            Rule::with_negation(
                Atom::new(unreach, vec![Term::Var(x)]),
                vec![Atom::new(node, vec![Term::Var(x)])],
                vec![Atom::new(reach, vec![Term::Var(x)])],
            ),
        ])
        .unwrap();
        assert_eq!(program.num_strata(), 2);
        assert_eq!(program.stratum(reach), 0);
        assert_eq!(program.stratum(unreach), 1);
        assert_eq!(program.stratum(edge), 0); // EDB
    }

    #[test]
    fn negated_rule_display() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let r = v.pred("r", 1);
        let s = v.pred("s", 1);
        let x = v.var("X");
        let rule = Rule::with_negation(
            Atom::new(p, vec![Term::Var(x)]),
            vec![Atom::new(r, vec![Term::Var(x)])],
            vec![Atom::new(s, vec![Term::Var(x)])],
        );
        assert_eq!(rule.display(&v).to_string(), "p(X) :- r(X), not s(X).");
    }

    #[test]
    fn rule_display() {
        let mut v = Vocabulary::new();
        let (_, _, program) = edge_path(&mut v);
        assert_eq!(
            program.rules()[0].display(&v).to_string(),
            "path(X, Y) :- edge(X, Y)."
        );
        let p = v.pred("p", 1);
        let fact = Rule::fact(Atom::new(p, vec![Term::Cst(v.cst("a"))]));
        assert_eq!(fact.display(&v).to_string(), "p(a).");
    }
}
