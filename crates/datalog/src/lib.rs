//! A forward-chaining Datalog engine.
//!
//! The paper's Section 5 implements the generalization side of completeness
//! reasoning by *forward rule application* on a Datalog engine (the authors
//! used the ASP solver dlv, but only its positive-Datalog fragment — TC
//! rules are plain Horn rules). This crate is that substrate, built from
//! scratch on top of [`magik_relalg`]:
//!
//! * [`Rule`] and [`Program`] model positive Datalog programs with
//!   range-restriction validation;
//! * [`Program::eval_naive`] computes the least model by naive iteration;
//! * [`Program::eval_semi_naive`] computes the same model with semi-naive
//!   (delta-driven) evaluation;
//! * [`Program::dependency_graph`] and [`Program::is_recursive`] expose the
//!   predicate dependency structure.
//!
//! # Example — transitive closure
//!
//! ```
//! use magik_relalg::{Vocabulary, Atom, Fact, Instance, Term};
//! use magik_datalog::{Program, Rule};
//!
//! let mut v = Vocabulary::new();
//! let edge = v.pred("edge", 2);
//! let path = v.pred("path", 2);
//! let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
//!
//! let program = Program::new(vec![
//!     Rule::new(
//!         Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
//!         vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
//!     ),
//!     Rule::new(
//!         Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
//!         vec![
//!             Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
//!             Atom::new(edge, vec![Term::Var(y), Term::Var(z)]),
//!         ],
//!     ),
//! ]).unwrap();
//!
//! let mut edb = Instance::new();
//! edb.insert(Fact::new(edge, vec![v.cst("a"), v.cst("b")]));
//! edb.insert(Fact::new(edge, vec![v.cst("b"), v.cst("c")]));
//!
//! let model = program.eval_semi_naive(&edb).model;
//! assert!(model.contains(&Fact::new(path, vec![v.cst("a"), v.cst("c")])));
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod eval;
mod incremental;
mod program;
mod provenance;

pub use eval::FixpointResult;
pub use incremental::{MaterializeError, Materialized, RetractStats};
pub use program::{Program, ProgramError, Rule};
pub use provenance::{DerivationTree, Justification, Provenance};
