//! Property-based tests: naive and semi-naive evaluation agree, fixpoints
//! are fixpoints, evaluation is monotone in the EDB, and every recorded
//! derivation tree validates against the independent `magik-cert`
//! checker — including trees read back after DRed retractions.

use std::collections::BTreeSet;

use proptest::prelude::*;

use magik_cert::{check_derivation, CertRule, DerivationNode};
use magik_datalog::{DerivationTree, Program, Provenance, Rule};
use magik_relalg::{Atom, Fact, Instance, Term, Vocabulary};

const NUM_PREDS: u8 = 3;
const NUM_VARS: u8 = 4;
const NUM_CSTS: u8 = 3;

fn pred_arity(p: u8) -> usize {
    [1, 2, 2][p as usize % 3]
}

/// Abstract rule: body atoms (pred, var-or-cst args), head args are indexes
/// into the body variable pool so rules are range-restricted by
/// construction.
#[derive(Debug, Clone)]
struct ARule {
    head_pred: u8,
    head_args: Vec<u8>, // index into body vars (mod len), or constant if none
    body: Vec<(u8, Vec<i8>)>, // positive = var id, negative = constant id
}

fn arule() -> impl Strategy<Value = ARule> {
    let atom = (0..NUM_PREDS).prop_flat_map(|p| {
        proptest::collection::vec(
            prop_oneof![
                (0..NUM_VARS).prop_map(|v| v as i8),
                (1..=NUM_CSTS).prop_map(|c| -(c as i8)),
            ],
            pred_arity(p),
        )
        .prop_map(move |args| (p, args))
    });
    (
        0..NUM_PREDS,
        proptest::collection::vec(0..16u8, 0..3),
        proptest::collection::vec(atom, 1..3),
    )
        .prop_map(|(head_pred, head_args, body)| ARule {
            head_pred,
            head_args,
            body,
        })
}

fn materialize(v: &mut Vocabulary, rules: &[ARule]) -> Program {
    let mk_term = |v: &mut Vocabulary, t: i8| {
        if t >= 0 {
            Term::Var(v.var(&format!("X{t}")))
        } else {
            Term::Cst(v.cst(&format!("c{}", -t)))
        }
    };
    let rules = rules
        .iter()
        .map(|r| {
            let body: Vec<Atom> = r
                .body
                .iter()
                .map(|(p, args)| {
                    let pred = v.pred(&format!("p{p}"), pred_arity(*p));
                    let args = args.iter().map(|&t| mk_term(v, t)).collect();
                    Atom::new(pred, args)
                })
                .collect();
            let body_vars: Vec<_> = body.iter().flat_map(Atom::vars).collect();
            let head_pred = v.pred(&format!("p{}", r.head_pred), pred_arity(r.head_pred));
            let arity = pred_arity(r.head_pred);
            let head_args: Vec<Term> = (0..arity)
                .map(|i| {
                    let sel = r.head_args.get(i).copied().unwrap_or(0) as usize;
                    if body_vars.is_empty() {
                        Term::Cst(v.cst("c1"))
                    } else {
                        Term::Var(body_vars[sel % body_vars.len()])
                    }
                })
                .collect();
            Rule::new(Atom::new(head_pred, head_args), body)
        })
        .collect();
    Program::new(rules).expect("construction guarantees range restriction")
}

fn materialize_edb(v: &mut Vocabulary, facts: &[(u8, Vec<u8>)]) -> Instance {
    facts
        .iter()
        .map(|(p, args)| {
            let pred = v.pred(&format!("p{p}"), pred_arity(*p));
            Fact::new(
                pred,
                (0..pred_arity(*p))
                    .map(|i| {
                        v.cst(&format!(
                            "c{}",
                            args.get(i).copied().unwrap_or(0) % NUM_CSTS
                        ))
                    })
                    .collect(),
            )
        })
        .collect()
}

fn afacts() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec(
        (0..NUM_PREDS).prop_flat_map(|p| {
            proptest::collection::vec(0..NUM_CSTS, pred_arity(p)).prop_map(move |args| (p, args))
        }),
        0..8,
    )
}

/// Converts an engine derivation tree into the checker's node type and
/// validates it (the checker shares no code with the engine — the
/// conversion is field-for-field).
fn tree_validates(tree: &DerivationTree, program: &Program, edb: &BTreeSet<Fact>) -> bool {
    fn convert(t: &DerivationTree) -> DerivationNode {
        DerivationNode {
            fact: t.fact.clone(),
            rule: t.rule,
            binding: t.binding.clone(),
            children: t.children.iter().map(convert).collect(),
        }
    }
    let rules: Vec<CertRule> = program
        .rules()
        .iter()
        .map(|r| CertRule {
            head: r.head.clone(),
            body: r.body.clone(),
        })
        .collect();
    check_derivation(&convert(tree), &rules, edb).is_ok()
}

/// Every model fact the provenance records must explain itself with a
/// tree magik-cert accepts.
fn assert_all_trees_validate(
    prov: &Provenance,
    program: &Program,
    model: &Instance,
    edb: &Instance,
) {
    let edb_set: BTreeSet<Fact> = edb.iter_facts().collect();
    for fact in model.iter_facts() {
        assert!(prov.contains(&fact), "provenance misses {fact:?}");
        let tree = prov.explain(&fact).expect("contained facts explain");
        assert_eq!(&tree.fact, &fact);
        assert!(
            tree_validates(&tree, program, &edb_set),
            "magik-cert rejected a derivation tree for {fact:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Provenance covers exactly the semi-naive model, and every
    /// derivation tree it reconstructs passes the independent checker.
    #[test]
    fn provenance_trees_validate(rules in proptest::collection::vec(arule(), 0..4), facts in afacts()) {
        let mut v = Vocabulary::new();
        let program = materialize(&mut v, &rules);
        let edb = materialize_edb(&mut v, &facts);
        let model = program.eval_semi_naive(&edb).model;
        let prov = program.provenance(&edb);
        assert_all_trees_validate(&prov, &program, &model, &edb);
    }

    /// After arbitrary insert/retract rounds (DRed repairing the model),
    /// provenance recomputed from the maintained EDB still explains the
    /// maintained model with trees the checker accepts.
    #[test]
    fn provenance_trees_validate_under_dred(
        rules in proptest::collection::vec(arule(), 0..4),
        initial in afacts(),
        updates in proptest::collection::vec((afacts(), 0..4usize), 0..3),
    ) {
        let mut v = Vocabulary::new();
        let program = materialize(&mut v, &rules);
        let edb = materialize_edb(&mut v, &initial);
        let mut m = magik_datalog::Materialized::new(program.clone(), edb).unwrap();
        for (batch, retract_ix) in updates {
            let facts = materialize_edb(&mut v, &batch);
            m.insert_all(facts.iter_facts());
            let victim = m.edb().iter_facts().nth(retract_ix);
            if let Some(victim) = victim {
                m.retract(&victim);
            }
        }
        let prov = m.provenance();
        assert_all_trees_validate(&prov, &program, m.model(), m.edb());
    }

    #[test]
    fn naive_and_semi_naive_agree(rules in proptest::collection::vec(arule(), 0..4), facts in afacts()) {
        let mut v = Vocabulary::new();
        let program = materialize(&mut v, &rules);
        let edb = materialize_edb(&mut v, &facts);
        let naive = program.eval_naive(&edb);
        let semi = program.eval_semi_naive(&edb);
        prop_assert_eq!(&naive.model, &semi.model);
        prop_assert_eq!(naive.derived, semi.derived);
    }

    /// Both engines (compiled plans, delta propagation) compute exactly
    /// the model of the seed re-planning naive fixpoint kept in
    /// `magik_exec::reference`.
    #[test]
    fn compiled_fixpoints_match_reference_oracle(rules in proptest::collection::vec(arule(), 0..4), facts in afacts()) {
        let mut v = Vocabulary::new();
        let program = materialize(&mut v, &rules);
        let edb = materialize_edb(&mut v, &facts);
        let positive: Vec<(Atom, Vec<Atom>)> = program
            .rules()
            .iter()
            .map(|r| (r.head.clone(), r.body.clone()))
            .collect();
        let oracle = magik_exec::reference::naive_fixpoint(&positive, &edb);
        prop_assert_eq!(&program.eval_naive(&edb).model, &oracle);
        prop_assert_eq!(&program.eval_semi_naive(&edb).model, &oracle);
    }

    #[test]
    fn model_contains_edb_and_is_fixpoint(rules in proptest::collection::vec(arule(), 0..4), facts in afacts()) {
        let mut v = Vocabulary::new();
        let program = materialize(&mut v, &rules);
        let edb = materialize_edb(&mut v, &facts);
        let result = program.eval_semi_naive(&edb);
        prop_assert!(edb.is_subset_of(&result.model));
        // Applying the rules once more derives nothing new.
        let more = program.immediate_consequences(&result.model);
        prop_assert!(more.is_subset_of(&result.model));
    }

    #[test]
    fn evaluation_is_monotone_in_edb(rules in proptest::collection::vec(arule(), 0..4), facts1 in afacts(), facts2 in afacts()) {
        let mut v = Vocabulary::new();
        let program = materialize(&mut v, &rules);
        let small = materialize_edb(&mut v, &facts1);
        let mut big = small.clone();
        big.extend_from(&materialize_edb(&mut v, &facts2));
        let m_small = program.eval_semi_naive(&small).model;
        let m_big = program.eval_semi_naive(&big).model;
        prop_assert!(m_small.is_subset_of(&m_big));
    }

    /// Parallel semi-naive evaluation reaches exactly the sequential
    /// least model: same model, same derived count, for any rule set and
    /// EDB. (Iteration counts may differ; the fixpoint may not.)
    #[test]
    fn parallel_fixpoint_matches_sequential(rules in proptest::collection::vec(arule(), 0..4), facts in afacts()) {
        let mut v = Vocabulary::new();
        let program = materialize(&mut v, &rules);
        let edb = materialize_edb(&mut v, &facts);
        let sequential = program.eval_semi_naive(&edb);
        let parallel = program.eval_semi_naive_on(&edb, &magik_exec::Executor::with_threads(4));
        prop_assert_eq!(&sequential.model, &parallel.model);
        prop_assert_eq!(sequential.derived, parallel.derived);
    }

    /// An incrementally maintained model driven by a pooled executor
    /// agrees with the sequential from-scratch fixpoint across random
    /// insert/retract interleavings.
    #[test]
    fn parallel_materialized_matches_scratch(
        rules in proptest::collection::vec(arule(), 0..4),
        initial in afacts(),
        updates in proptest::collection::vec((afacts(), 0..4usize), 0..3),
    ) {
        let mut v = Vocabulary::new();
        let program = materialize(&mut v, &rules);
        let edb = materialize_edb(&mut v, &initial);
        let exec = magik_exec::Executor::with_threads(4);
        let mut m =
            magik_datalog::Materialized::with_executor(program.clone(), edb, exec).unwrap();
        prop_assert_eq!(m.model(), &program.eval_semi_naive(m.edb()).model);
        for (batch, retract_ix) in updates {
            let facts = materialize_edb(&mut v, &batch);
            m.insert_all(facts.iter_facts());
            prop_assert_eq!(m.model(), &program.eval_semi_naive(m.edb()).model);
            let victim = m.edb().iter_facts().nth(retract_ix);
            if let Some(victim) = victim {
                m.retract(&victim);
                prop_assert_eq!(m.model(), &program.eval_semi_naive(m.edb()).model);
            }
        }
    }

    /// DRed retraction agrees with the retired full-recomputation
    /// strategy (`retract_all_recompute`, the oracle) across random
    /// positive programs and random assert/retract interleavings —
    /// batches that retract several facts at once, duplicate retracts
    /// within a batch, and (with the small constant domain forcing dense
    /// overlap) facts that stay derivable through surviving rules.
    #[test]
    fn dred_retraction_matches_recompute_oracle(
        rules in proptest::collection::vec(arule(), 0..4),
        initial in afacts(),
        rounds in proptest::collection::vec(
            (afacts(), proptest::collection::vec(0..8usize, 0..3), 0..2u8),
            0..4,
        ),
    ) {
        let mut v = Vocabulary::new();
        let program = materialize(&mut v, &rules);
        let edb = materialize_edb(&mut v, &initial);
        let mut dred = magik_datalog::Materialized::new(program.clone(), edb.clone()).unwrap();
        let mut oracle = magik_datalog::Materialized::new(program, edb).unwrap();
        for (batch, retract_ixs, dup) in rounds {
            let facts = materialize_edb(&mut v, &batch);
            dred.insert_all(facts.iter_facts());
            oracle.insert_all(facts.iter_facts());
            let mut victims: Vec<Fact> = retract_ixs
                .iter()
                .filter_map(|&i| dred.edb().iter_facts().nth(i))
                .collect();
            if dup == 1 {
                let again = victims.clone();
                victims.extend(again);
            }
            let stats = dred.retract_all(victims.clone());
            let removed = oracle.retract_all_recompute(victims);
            prop_assert_eq!(stats.removed, removed);
            prop_assert_eq!(dred.model(), oracle.model());
            prop_assert_eq!(dred.edb(), oracle.edb());
        }
    }

    /// The incrementally maintained model always equals the from-scratch
    /// fixpoint, across random interleavings of assertions and
    /// retractions (the `magik-server` assert-fact/retract hot path).
    #[test]
    fn materialized_model_matches_scratch(
        rules in proptest::collection::vec(arule(), 0..4),
        initial in afacts(),
        updates in proptest::collection::vec((afacts(), 0..4usize), 0..4),
    ) {
        let mut v = Vocabulary::new();
        let program = materialize(&mut v, &rules);
        let edb = materialize_edb(&mut v, &initial);
        let mut m = magik_datalog::Materialized::new(program.clone(), edb).unwrap();
        prop_assert_eq!(m.model(), &program.eval_semi_naive(m.edb()).model);
        for (batch, retract_ix) in updates {
            let facts = materialize_edb(&mut v, &batch);
            m.insert_all(facts.iter_facts());
            prop_assert_eq!(m.model(), &program.eval_semi_naive(m.edb()).model);
            // Retract an arbitrary existing EDB fact, if any.
            let victim = m.edb().iter_facts().nth(retract_ix);
            if let Some(victim) = victim {
                m.retract(&victim);
                prop_assert_eq!(m.model(), &program.eval_semi_naive(m.edb()).model);
            }
        }
    }
}
