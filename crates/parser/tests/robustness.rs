//! Robustness: the parser must never panic, whatever bytes it is fed.

use proptest::prelude::*;

use magik_parser::{
    parse_atom, parse_document, parse_instance, parse_query, parse_rules, parse_tcs,
};
use magik_relalg::Vocabulary;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings: every entry point returns Ok or Err, never
    /// panics.
    #[test]
    fn arbitrary_input_never_panics(s in "\\PC*") {
        let mut v = Vocabulary::new();
        let _ = parse_document(&s, &mut v);
        let _ = parse_query(&s, &mut v);
        let _ = parse_tcs(&s, &mut v);
        let _ = parse_atom(&s, &mut v);
        let _ = parse_instance(&s, &mut v);
        let _ = parse_rules(&s, &mut v);
    }

    /// Syntax-shaped garbage: random items from the token alphabet.
    #[test]
    fn tokenish_garbage_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("query".to_owned()),
            Just("compl".to_owned()),
            Just("fact".to_owned()),
            Just("domain".to_owned()),
            Just("not".to_owned()),
            Just("p".to_owned()),
            Just("X".to_owned()),
            Just("(".to_owned()),
            Just(")".to_owned()),
            Just(",".to_owned()),
            Just(";".to_owned()),
            Just(".".to_owned()),
            Just(":-".to_owned()),
            Just("{".to_owned()),
            Just("}".to_owned()),
            Just("\"s\"".to_owned()),
            Just("42".to_owned()),
        ],
        0..24,
    )) {
        let src = tokens.join(" ");
        let mut v = Vocabulary::new();
        let _ = parse_document(&src, &mut v);
        let _ = parse_rules(&src, &mut v);
    }

    /// Errors always carry a plausible position.
    #[test]
    fn errors_have_positions(s in "[a-zA-Z(),;.{} ]{0,40}") {
        let mut v = Vocabulary::new();
        if let Err(e) = parse_document(&s, &mut v) {
            prop_assert!(e.line >= 1);
            prop_assert!(e.col >= 1);
        }
    }
}
