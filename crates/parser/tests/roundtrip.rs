//! Property-based round-trip tests: print → parse is the identity.

use proptest::prelude::*;

use magik_completeness::{TcSet, TcStatement};
use magik_parser::{parse_document, print_document, Document};
use magik_relalg::{Atom, Fact, Instance, Query, Term, Vocabulary};

const NUM_PREDS: u8 = 3;

fn pred_arity(p: u8) -> usize {
    [1, 2, 3][p as usize % 3]
}

#[derive(Debug, Clone, Copy)]
enum ATerm {
    Var(u8),
    Cst(u8),
}

#[derive(Debug, Clone)]
struct AAtom {
    pred: u8,
    args: Vec<ATerm>,
}

fn aterm() -> impl Strategy<Value = ATerm> {
    prop_oneof![(0..4u8).prop_map(ATerm::Var), (0..3u8).prop_map(ATerm::Cst)]
}

fn aatom() -> impl Strategy<Value = AAtom> {
    (0..NUM_PREDS).prop_flat_map(|p| {
        proptest::collection::vec(aterm(), pred_arity(p))
            .prop_map(move |args| AAtom { pred: p, args })
    })
}

struct Ctx {
    vocab: Vocabulary,
}

impl Ctx {
    fn atom(&mut self, a: &AAtom) -> Atom {
        let pred = self.vocab.pred(&format!("p{}", a.pred), pred_arity(a.pred));
        let args = a
            .args
            .iter()
            .map(|&t| match t {
                ATerm::Var(i) => Term::Var(self.vocab.var(&format!("X{i}"))),
                // c2 deliberately needs quoting (space + uppercase) to
                // exercise the constant-quoting path of the printer.
                ATerm::Cst(2) => Term::Cst(self.vocab.cst("New York 2")),
                ATerm::Cst(i) => Term::Cst(self.vocab.cst(&format!("c{i}"))),
            })
            .collect();
        Atom::new(pred, args)
    }

    fn fact(&mut self, a: &AAtom) -> Fact {
        let pred = self.vocab.pred(&format!("p{}", a.pred), pred_arity(a.pred));
        let args = a
            .args
            .iter()
            .map(|&t| match t {
                ATerm::Var(i) => self.vocab.cst(&format!("g{i}")),
                ATerm::Cst(i) => self.vocab.cst(&format!("c{i}")),
            })
            .collect();
        Fact::new(pred, args)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn document_print_parse_roundtrip(
        queries in proptest::collection::vec((proptest::collection::vec(aterm(), 0..3), proptest::collection::vec(aatom(), 0..4)), 0..3),
        stmts in proptest::collection::vec((aatom(), proptest::collection::vec(aatom(), 0..3)), 0..3),
        facts in proptest::collection::vec(aatom(), 0..5),
    ) {
        let mut ctx = Ctx { vocab: Vocabulary::new() };
        // Head terms must be variables or constants; reuse the body's
        // variables where possible so most generated queries are safe
        // (safety is not required by the syntax, though).
        let queries: Vec<Query> = queries
            .iter()
            .enumerate()
            .map(|(i, (head, body))| {
                let body: Vec<Atom> = body.iter().map(|a| ctx.atom(a)).collect();
                let head: Vec<Term> = head
                    .iter()
                    .map(|&t| match t {
                        ATerm::Var(ix) => Term::Var(ctx.vocab.var(&format!("X{ix}"))),
                        ATerm::Cst(ix) => Term::Cst(ctx.vocab.cst(&format!("c{ix}"))),
                    })
                    .collect();
                Query::new(ctx.vocab.sym(&format!("q{i}")), head, body)
            })
            .collect();
        let tcs: TcSet = stmts
            .iter()
            .map(|(head, cond)| {
                TcStatement::new(ctx.atom(head), cond.iter().map(|a| ctx.atom(a)).collect())
            })
            .collect();
        let facts: Instance = facts.iter().map(|a| ctx.fact(a)).collect();
        // Constrain the first column of p0 and key p1 to exercise
        // domain and key round-trips.
        let constraints = magik_completeness::ConstraintSet::with_keys(
            vec![magik_completeness::FiniteDomain {
                pred: ctx.vocab.pred("p0", pred_arity(0)),
                column: 0,
                values: [ctx.vocab.cst("c0"), ctx.vocab.cst("c1")]
                    .into_iter()
                    .collect(),
            }],
            vec![magik_completeness::Key {
                pred: ctx.vocab.pred("p1", pred_arity(1)),
                columns: vec![0],
            }],
        );
        let doc = Document {
            queries,
            tcs,
            facts,
            constraints,
            spans: Default::default(),
        };

        let printed = print_document(&doc, &ctx.vocab);
        let reparsed = parse_document(&printed, &mut ctx.vocab).unwrap_or_else(|e| {
            panic!("printed document failed to parse: {e}\n---\n{printed}")
        });
        prop_assert_eq!(&doc.queries, &reparsed.queries);
        prop_assert_eq!(&doc.tcs, &reparsed.tcs);
        prop_assert_eq!(&doc.facts, &reparsed.facts);
        prop_assert_eq!(&doc.constraints, &reparsed.constraints);
        prop_assert_eq!(printed.clone(), print_document(&reparsed, &ctx.vocab));
    }
}
