//! Printing: the inverse of parsing.
//!
//! All printers produce text that [`crate::parse_document`] &c. parse back
//! to the same structures (checked by round-trip property tests). They
//! build on the `DisplayWith` implementations of the data model and add
//! the item keywords and terminating dots of the document syntax.

use magik_completeness::TcStatement;
use magik_relalg::{DisplayWith, Instance, Query, Vocabulary};

use crate::parse::Document;

/// Prints a query as a `query …` item line (without the keyword).
pub fn print_query(q: &Query, vocab: &Vocabulary) -> String {
    q.display(vocab).to_string()
}

/// Prints a TC statement in item syntax (without the `compl` keyword,
/// which [`TcStatement`]'s own display already includes — this strips it
/// for reuse inside [`print_document`]).
pub fn print_tcs(c: &TcStatement, vocab: &Vocabulary) -> String {
    let full = c.display(vocab).to_string();
    full.strip_prefix("compl ").unwrap_or(&full).to_owned()
}

/// Prints an instance as a sequence of dot-terminated facts.
pub fn print_instance(db: &Instance, vocab: &Vocabulary) -> String {
    let mut out = String::new();
    for fact in db.iter_facts() {
        out.push_str(&fact.display(vocab).to_string());
        out.push_str(".\n");
    }
    out
}

/// Prints a finite-domain constraint in item syntax (without the
/// `domain` keyword): `class(_, _, _, D) in {halfDay, fullDay}`.
pub fn print_domain(d: &magik_completeness::FiniteDomain, vocab: &Vocabulary) -> String {
    let arity = vocab.arity(d.pred);
    let args: Vec<&str> = (0..arity)
        .map(|i| if i == d.column { "D" } else { "_" })
        .collect();
    let values: Vec<String> = d
        .values
        .iter()
        .map(|v| v.display(vocab).to_string())
        .collect();
    format!(
        "{}({}) in {{{}}}",
        vocab.pred_name(d.pred),
        args.join(", "),
        values.join(", ")
    )
}

/// Prints a key constraint in item syntax (without the `key` keyword):
/// `pupil(K0, _, _)`.
pub fn print_key(k: &magik_completeness::Key, vocab: &Vocabulary) -> String {
    let arity = vocab.arity(k.pred);
    let args: Vec<String> = (0..arity)
        .map(|i| {
            if k.columns.contains(&i) {
                format!("K{i}")
            } else {
                "_".to_owned()
            }
        })
        .collect();
    format!("{}({})", vocab.pred_name(k.pred), args.join(", "))
}

/// Prints a whole document in the `compl`/`query`/`fact`/`domain`/`key`
/// item syntax.
pub fn print_document(doc: &Document, vocab: &Vocabulary) -> String {
    let mut out = String::new();
    for d in doc.constraints.domains() {
        out.push_str("domain ");
        out.push_str(&print_domain(d, vocab));
        out.push_str(".\n");
    }
    for k in doc.constraints.keys() {
        out.push_str("key ");
        out.push_str(&print_key(k, vocab));
        out.push_str(".\n");
    }
    for c in doc.tcs.statements() {
        out.push_str("compl ");
        out.push_str(&print_tcs(c, vocab));
        out.push_str(".\n");
    }
    for q in &doc.queries {
        out.push_str("query ");
        out.push_str(&print_query(q, vocab));
        out.push_str(".\n");
    }
    for fact in doc.facts.iter_facts() {
        out.push_str("fact ");
        out.push_str(&fact.display(vocab).to_string());
        out.push_str(".\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_document, parse_tcs};

    #[test]
    fn document_roundtrip() {
        let mut v = Vocabulary::new();
        let src = "compl school(S, primary, D) ; true.
                   compl pupil(N, C, S) ; school(S, T, merano).
                   query q(N) :- pupil(N, C, S), school(S, primary, merano).
                   fact school(goethe, primary, merano).";
        let doc = parse_document(src, &mut v).unwrap();
        let printed = print_document(&doc, &v);
        let reparsed = parse_document(&printed, &mut v).unwrap();
        assert_eq!(doc.queries, reparsed.queries);
        assert_eq!(doc.tcs, reparsed.tcs);
        assert_eq!(doc.facts, reparsed.facts);
        // Printing is a fixpoint after one round.
        assert_eq!(printed, print_document(&reparsed, &v));
    }

    #[test]
    fn tcs_roundtrip_with_empty_condition() {
        let mut v = Vocabulary::new();
        let c = parse_tcs("school(S, primary, D) ; true", &mut v).unwrap();
        let printed = print_tcs(&c, &v);
        assert_eq!(printed, "school(S, primary, D) ; true");
        let reparsed = parse_tcs(&printed, &mut v).unwrap();
        assert_eq!(c, reparsed);
    }
}
