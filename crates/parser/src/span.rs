//! Source spans and line/column resolution.
//!
//! A [`Span`] is a half-open byte range into the source string a document
//! was parsed from. The lexer stamps every token with its span; the parser
//! aggregates token spans into per-item and per-atom spans, which it
//! publishes as side tables on [`crate::Document`] (the semantic types —
//! atoms, queries, statements — stay position-free so that equality and
//! hashing keep meaning *semantic* identity).
//!
//! [`LineIndex`] converts byte offsets back to 1-based line/column pairs
//! and extracts the text of a line, which is what diagnostic renderers
//! need to produce `file:line:col` headers and caret underlines.

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// An empty span at `offset` (used for end-of-input positions).
    pub fn point(offset: usize) -> Span {
        Span {
            start: offset,
            end: offset,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// `true` iff the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Maps byte offsets of one source string to 1-based line/column pairs.
///
/// Built once per source (`O(len)`), then each lookup is a binary search
/// over the line starts. Columns are counted in bytes, 1-based, matching
/// the positions the lexer reports.
#[derive(Debug, Clone)]
pub struct LineIndex {
    /// Byte offset of the first byte of each line (always starts with 0).
    line_starts: Vec<usize>,
    /// Total source length, so lookups past the end clamp sensibly.
    len: usize,
}

impl LineIndex {
    /// Builds the index for `src`.
    pub fn new(src: &str) -> LineIndex {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineIndex {
            line_starts,
            len: src.len(),
        }
    }

    /// The 1-based `(line, column)` of a byte offset. Offsets past the end
    /// of the source resolve to one past the last column of the last line.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The byte range of the 1-based line `line`, without its trailing
    /// newline. Returns an empty range at the end for out-of-range lines.
    pub fn line_range(&self, line: usize) -> Span {
        let Some(&start) = self.line_starts.get(line.wrapping_sub(1)) else {
            return Span::point(self.len);
        };
        let end = self
            .line_starts
            .get(line)
            .map_or(self.len, |&next| next - 1);
        Span::new(start, end)
    }

    /// Number of lines (at least 1, even for an empty source).
    pub fn num_lines(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_and_len() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.join(b), Span::new(3, 12));
        assert_eq!(b.join(a), Span::new(3, 12));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert!(Span::point(5).is_empty());
    }

    #[test]
    fn line_index_resolves_offsets() {
        let src = "ab\ncdef\n\nx";
        let idx = LineIndex::new(src);
        assert_eq!(idx.num_lines(), 4);
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(1), (1, 2));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(6), (2, 4));
        assert_eq!(idx.line_col(8), (3, 1));
        assert_eq!(idx.line_col(9), (4, 1));
        // Past the end clamps to one past the last byte.
        assert_eq!(idx.line_col(100), (4, 2));
    }

    #[test]
    fn line_ranges_exclude_newlines() {
        let src = "ab\ncdef\n";
        let idx = LineIndex::new(src);
        assert_eq!(&src[idx.line_range(1).start..idx.line_range(1).end], "ab");
        assert_eq!(&src[idx.line_range(2).start..idx.line_range(2).end], "cdef");
        // The trailing newline opens an empty final line.
        assert!(idx.line_range(3).is_empty());
        assert!(idx.line_range(99).is_empty());
    }

    #[test]
    fn empty_source_has_one_line() {
        let idx = LineIndex::new("");
        assert_eq!(idx.num_lines(), 1);
        assert_eq!(idx.line_col(0), (1, 1));
        assert!(idx.line_range(1).is_empty());
    }
}
