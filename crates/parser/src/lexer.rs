//! Tokenizer for the MAGIK surface syntax.

use std::fmt;

use crate::span::Span;

/// The kind of a token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A lowercase identifier (predicate name or constant) or an integer
    /// literal or a quoted string; the payload is the spelling (unquoted).
    Symbol(String),
    /// A variable name (leading uppercase or underscore).
    Variable(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `:-`
    Turnstile,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Symbol(s) => write!(f, "symbol `{s}`"),
            TokenKind::Variable(s) => write!(f, "variable `{s}`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Semicolon => f.write_str("`;`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Turnstile => f.write_str("`:-`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Byte range in the source (for quoted strings this includes the
    /// quotes).
    pub span: Span,
}

/// A `%`-to-end-of-line comment captured as trivia during tokenization.
///
/// Comments carry no semantics for parsing, but downstream tools (notably
/// `magik-analyze` suppression directives such as `% magik: allow(M001)`)
/// need their text and position, so the lexer records them instead of
/// discarding them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The raw comment text, including the leading `%`, excluding the
    /// terminating newline.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Byte range of the comment text (without the newline).
    pub span: Span,
}

/// A tokenization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Byte range of the offending text.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a whole source string, discarding comment trivia.
#[cfg(test)]
pub(crate) fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    tokenize_with_comments(src).map(|(tokens, _)| tokens)
}

/// Tokenizes a whole source string, additionally returning every `%`
/// comment as [`Comment`] trivia in source order.
pub(crate) fn tokenize_with_comments(src: &str) -> Result<(Vec<Token>, Vec<Comment>), LexError> {
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let bytes = src.as_bytes();
    let mut pos = 0;
    let mut line = 1;
    let mut col = 1;
    let advance = |pos: &mut usize, line: &mut usize, col: &mut usize| {
        if bytes[*pos] == b'\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *pos += 1;
    };
    while pos < bytes.len() {
        let c = bytes[pos];
        let (tline, tcol, tpos) = (line, col, pos);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                advance(&mut pos, &mut line, &mut col);
            }
            b'%' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    advance(&mut pos, &mut line, &mut col);
                }
                comments.push(Comment {
                    text: String::from_utf8_lossy(&bytes[tpos..pos]).into_owned(),
                    line: tline,
                    span: Span::new(tpos, pos),
                });
            }
            b'(' | b')' | b',' | b';' | b'.' | b'{' | b'}' => {
                let kind = match c {
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b',' => TokenKind::Comma,
                    b';' => TokenKind::Semicolon,
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    _ => TokenKind::Dot,
                };
                advance(&mut pos, &mut line, &mut col);
                tokens.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                    span: Span::new(tpos, pos),
                });
            }
            b':' => {
                advance(&mut pos, &mut line, &mut col);
                if pos < bytes.len() && bytes[pos] == b'-' {
                    advance(&mut pos, &mut line, &mut col);
                    tokens.push(Token {
                        kind: TokenKind::Turnstile,
                        line: tline,
                        col: tcol,
                        span: Span::new(tpos, pos),
                    });
                } else {
                    return Err(LexError {
                        message: "expected `-` after `:`".to_owned(),
                        line: tline,
                        col: tcol,
                        span: Span::new(tpos, pos),
                    });
                }
            }
            b'"' => {
                advance(&mut pos, &mut line, &mut col);
                let start = pos;
                while pos < bytes.len() && bytes[pos] != b'"' && bytes[pos] != b'\n' {
                    advance(&mut pos, &mut line, &mut col);
                }
                if pos >= bytes.len() || bytes[pos] != b'"' {
                    return Err(LexError {
                        message: "unterminated string literal".to_owned(),
                        line: tline,
                        col: tcol,
                        span: Span::new(tpos, pos),
                    });
                }
                let text = String::from_utf8_lossy(&bytes[start..pos]).into_owned();
                advance(&mut pos, &mut line, &mut col);
                tokens.push(Token {
                    kind: TokenKind::Symbol(text),
                    line: tline,
                    col: tcol,
                    span: Span::new(tpos, pos),
                });
            }
            _ if c.is_ascii_lowercase() || c.is_ascii_digit() => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    advance(&mut pos, &mut line, &mut col);
                }
                let text = String::from_utf8_lossy(&bytes[start..pos]).into_owned();
                tokens.push(Token {
                    kind: TokenKind::Symbol(text),
                    line: tline,
                    col: tcol,
                    span: Span::new(tpos, pos),
                });
            }
            _ if c.is_ascii_uppercase() || c == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    advance(&mut pos, &mut line, &mut col);
                }
                let text = String::from_utf8_lossy(&bytes[start..pos]).into_owned();
                tokens.push(Token {
                    kind: TokenKind::Variable(text),
                    line: tline,
                    col: tcol,
                    span: Span::new(tpos, pos),
                });
            }
            _ => {
                return Err(LexError {
                    message: format!("unexpected character `{}`", c as char),
                    line: tline,
                    col: tcol,
                    span: Span::new(tpos, tpos + 1),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
        span: Span::point(pos),
    });
    Ok((tokens, comments))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_atoms_and_punctuation() {
        assert_eq!(
            kinds("q(N) :- p(N, c1)."),
            vec![
                TokenKind::Symbol("q".into()),
                TokenKind::LParen,
                TokenKind::Variable("N".into()),
                TokenKind::RParen,
                TokenKind::Turnstile,
                TokenKind::Symbol("p".into()),
                TokenKind::LParen,
                TokenKind::Variable("N".into()),
                TokenKind::Comma,
                TokenKind::Symbol("c1".into()),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_positions_tracked() {
        let tokens = tokenize("% hi\n  p.").unwrap();
        assert_eq!(tokens[0].kind, TokenKind::Symbol("p".into()));
        assert_eq!((tokens[0].line, tokens[0].col), (2, 3));
        assert_eq!(tokens[0].span, Span::new(7, 8));
    }

    #[test]
    fn comments_are_captured_as_trivia() {
        let src = "% first\np. % trailing\n% last";
        let (tokens, comments) = tokenize_with_comments(src).unwrap();
        assert_eq!(tokens[0].kind, TokenKind::Symbol("p".into()));
        assert_eq!(comments.len(), 3);
        assert_eq!(comments[0].text, "% first");
        assert_eq!(comments[0].line, 1);
        assert_eq!(
            &src[comments[0].span.start..comments[0].span.end],
            "% first"
        );
        assert_eq!(comments[1].text, "% trailing");
        assert_eq!(comments[1].line, 2);
        assert_eq!(comments[2].text, "% last");
        assert_eq!(comments[2].line, 3);
        assert_eq!(comments[2].span.end, src.len());
    }

    #[test]
    fn quoted_strings_and_numbers_are_symbols() {
        assert_eq!(
            kinds("\"hello world\" 42"),
            vec![
                TokenKind::Symbol("hello world".into()),
                TokenKind::Symbol("42".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn underscore_starts_a_variable() {
        assert_eq!(
            kinds("_x X1"),
            vec![
                TokenKind::Variable("_x".into()),
                TokenKind::Variable("X1".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_cover_token_text() {
        let src = "q(Name) :- \"a b\".";
        let tokens = tokenize(src).unwrap();
        let texts: Vec<&str> = tokens
            .iter()
            .map(|t| &src[t.span.start..t.span.end])
            .collect();
        assert_eq!(texts, vec!["q", "(", "Name", ")", ":-", "\"a b\"", ".", ""]);
    }

    #[test]
    fn lex_errors_carry_positions() {
        let err = tokenize("p ?").unwrap_err();
        assert_eq!((err.line, err.col), (1, 3));
        assert_eq!(err.span, Span::new(2, 3));
        let err = tokenize("p :q").unwrap_err();
        assert!(err.message.contains("`-`"));
        let err = tokenize("\"oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.span.start, 0);
    }
}
