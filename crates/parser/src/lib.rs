//! Surface syntax for MAGIK-rs: parsing and printing of queries, facts and
//! table-completeness statements.
//!
//! The format is Datalog-ish, one item per `.`-terminated statement:
//!
//! ```text
//! % the running example of the paper
//! compl school(S, primary, D) ; true.
//! compl pupil(N, C, S) ; school(S, T, merano).
//! compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).
//!
//! query q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).
//!
//! fact school(goethe, primary, merano).
//! fact pupil(john, c1, goethe).
//! ```
//!
//! * Variables start with an uppercase letter or `_`; constants are
//!   lowercase identifiers, integers, or `"quoted strings"`.
//! * A predicate must be used with a consistent arity throughout a
//!   document ([`ParseError`] otherwise).
//! * `%` starts a comment until end of line.
//!
//! Printing is the inverse: [`print_query`], [`print_tcs`],
//! [`print_document`] produce text that parses back to the same structures
//! (a property the test suite checks).
//!
//! # Example
//!
//! ```
//! use magik_relalg::Vocabulary;
//! use magik_parser::parse_document;
//!
//! let mut v = Vocabulary::new();
//! let doc = parse_document(
//!     "compl school(S, primary, D) ; true.
//!      query q(N) :- pupil(N, C, S), school(S, primary, merano).
//!      fact school(goethe, primary, merano).",
//!     &mut v,
//! ).unwrap();
//! assert_eq!(doc.tcs.len(), 1);
//! assert_eq!(doc.queries.len(), 1);
//! assert_eq!(doc.facts.len(), 1);
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod lexer;
mod parse;
mod print;
mod span;

pub use lexer::{Comment, LexError, Token, TokenKind};
pub use parse::{
    parse_atom, parse_document, parse_instance, parse_query, parse_rules, parse_tcs, Document,
    DocumentSpans, ParseError, QuerySpans, StatementSpans,
};
pub use print::{print_document, print_domain, print_instance, print_key, print_query, print_tcs};
pub use span::{LineIndex, Span};
