//! Recursive-descent parser for the MAGIK surface syntax.

use std::collections::HashMap;
use std::fmt;

use magik_completeness::{ConstraintSet, FiniteDomain, Key, TcSet, TcStatement};
use magik_relalg::{Atom, Cst, Fact, Instance, Query, Term, Vocabulary};

use crate::lexer::{tokenize_with_comments, Comment, LexError, Token, TokenKind};
use crate::span::Span;

/// A parsed document: queries, TC statements and facts, in source order
/// within each group.
#[derive(Debug, Clone, Default)]
pub struct Document {
    /// Queries introduced with `query`.
    pub queries: Vec<Query>,
    /// Table-completeness statements introduced with `compl`.
    pub tcs: TcSet,
    /// Ground facts introduced with `fact`, as an instance.
    pub facts: Instance,
    /// Finite-domain constraints introduced with `domain`.
    pub constraints: ConstraintSet,
    /// Source spans for every item, parallel to the fields above (empty
    /// for documents built programmatically rather than parsed).
    pub spans: DocumentSpans,
}

/// Source spans for every item of a [`Document`], kept as side tables so
/// the semantic types stay position-free (they are hashed and compared by
/// meaning). Indices are parse order: `queries[i]` spans `Document::
/// queries[i]`, `statements[i]` spans the `i`-th TC statement, and so on.
#[derive(Debug, Clone, Default)]
pub struct DocumentSpans {
    /// One entry per `query` item.
    pub queries: Vec<QuerySpans>,
    /// One entry per `compl` item.
    pub statements: Vec<StatementSpans>,
    /// One `(fact, span)` pair per `fact` item, in parse order ([`Instance`]
    /// does not preserve insertion order, so the fact is repeated here).
    pub facts: Vec<(Fact, Span)>,
    /// One entry per `domain` item.
    pub domains: Vec<Span>,
    /// One entry per `key` item.
    pub keys: Vec<Span>,
    /// Every `%` comment in the source, in order. Comments are trivia for
    /// parsing but carry analyzer suppression directives such as
    /// `% magik: allow(M001)`.
    pub comments: Vec<Comment>,
}

/// Spans for one parsed query: the whole item, its head atom, and each
/// body atom in order.
#[derive(Debug, Clone, Default)]
pub struct QuerySpans {
    /// The whole item (keyword through terminating dot when parsed as part
    /// of a document; head through last body atom otherwise).
    pub item: Span,
    /// The head atom.
    pub head: Span,
    /// Each body atom, in order.
    pub body: Vec<Span>,
}

/// Spans for one parsed TC statement: the whole item, its head atom, and
/// each condition atom in order.
#[derive(Debug, Clone, Default)]
pub struct StatementSpans {
    /// The whole item (keyword through terminating dot when parsed as part
    /// of a document; head through last condition atom otherwise).
    pub item: Span,
    /// The head atom.
    pub head: Span,
    /// Each condition atom, in order (empty for a `true` condition).
    pub condition: Vec<Span>,
}

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Byte range of the offending text.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
            span: e.span,
        }
    }
}

struct Parser<'a> {
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    pos: usize,
    vocab: &'a mut Vocabulary,
    /// Enforces one arity per predicate name within a parse.
    arities: HashMap<String, usize>,
}

impl<'a> Parser<'a> {
    fn new(src: &str, vocab: &'a mut Vocabulary) -> Result<Self, ParseError> {
        let (tokens, comments) = tokenize_with_comments(src)?;
        Ok(Parser {
            tokens,
            comments,
            pos: 0,
            vocab,
            arities: HashMap::new(),
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error_at(&self, tok: &Token, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: tok.line,
            col: tok.col,
            span: tok.span,
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        let tok = self.next();
        if &tok.kind == kind {
            Ok(tok)
        } else {
            Err(self.error_at(&tok, format!("expected {kind}, found {}", tok.kind)))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.next();
            true
        } else {
            false
        }
    }

    /// `term := Variable | Symbol` (a bare symbol as a term is a constant).
    fn term(&mut self) -> Result<Term, ParseError> {
        let tok = self.next();
        match &tok.kind {
            TokenKind::Variable(name) => {
                let v = self.vocab.var(name);
                Ok(Term::Var(v))
            }
            TokenKind::Symbol(name) => {
                let c = self.vocab.cst(name);
                Ok(Term::Cst(c))
            }
            other => Err(self.error_at(&tok, format!("expected a term, found {other}"))),
        }
    }

    /// `atom := symbol ( term (, term)* )` — zero-argument atoms are
    /// written `p()`. Returns the atom and its source span.
    fn spanned_atom(&mut self) -> Result<(Atom, Span), ParseError> {
        let tok = self.next();
        let TokenKind::Symbol(name) = tok.kind.clone() else {
            return Err(self.error_at(
                &tok,
                format!("expected a predicate name, found {}", tok.kind),
            ));
        };
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        let close = if self.peek().kind == TokenKind::RParen {
            self.next()
        } else {
            loop {
                args.push(self.term()?);
                if self.eat(&TokenKind::Comma) {
                    continue;
                }
                break self.expect(&TokenKind::RParen)?;
            }
        };
        match self.arities.get(&name) {
            Some(&arity) if arity != args.len() => {
                return Err(self.error_at(
                    &tok,
                    format!(
                        "predicate `{name}` used with arity {} but previously with arity {arity}",
                        args.len()
                    ),
                ));
            }
            Some(_) => {}
            None => {
                self.arities.insert(name.clone(), args.len());
            }
        }
        let pred = self.vocab.pred(&name, args.len());
        Ok((Atom::new(pred, args), tok.span.join(close.span)))
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        Ok(self.spanned_atom()?.0)
    }

    /// `conj := true | atom (, atom)*`, with per-atom spans.
    fn spanned_conjunction(&mut self) -> Result<(Vec<Atom>, Vec<Span>), ParseError> {
        if let TokenKind::Symbol(s) = &self.peek().kind {
            if s == "true" && self.tokens[self.pos + 1].kind != TokenKind::LParen {
                self.next();
                return Ok((Vec::new(), Vec::new()));
            }
        }
        let mut atoms = Vec::new();
        let mut spans = Vec::new();
        loop {
            let (a, s) = self.spanned_atom()?;
            atoms.push(a);
            spans.push(s);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok((atoms, spans))
    }

    /// `query := head-atom :- conj` (the `:- conj` part is optional for an
    /// empty body).
    fn query(&mut self) -> Result<(Query, QuerySpans), ParseError> {
        let (head, head_span) = self.spanned_atom()?;
        let name = self
            .vocab
            .lookup(self.vocab.pred_name(head.pred))
            .expect("head name was interned by atom()");
        let (body, body_spans) = if self.eat(&TokenKind::Turnstile) {
            self.spanned_conjunction()?
        } else {
            (Vec::new(), Vec::new())
        };
        let item = body_spans.iter().fold(head_span, |acc, &s| acc.join(s));
        let spans = QuerySpans {
            item,
            head: head_span,
            body: body_spans,
        };
        Ok((Query::new(name, head.args, body), spans))
    }

    /// `tcs := atom ; conj`
    fn tcs(&mut self) -> Result<(TcStatement, StatementSpans), ParseError> {
        let (head, head_span) = self.spanned_atom()?;
        self.expect(&TokenKind::Semicolon)?;
        let (condition, condition_spans) = self.spanned_conjunction()?;
        let item = condition_spans
            .iter()
            .fold(head_span, |acc, &s| acc.join(s));
        let spans = StatementSpans {
            item,
            head: head_span,
            condition: condition_spans,
        };
        Ok((TcStatement::new(head, condition), spans))
    }

    /// `domain := pred ( _ | Var, … ) in { symbol (, symbol)* }` — exactly
    /// one argument is a named (non-`_`) variable, marking the constrained
    /// column.
    fn domain(&mut self) -> Result<FiniteDomain, ParseError> {
        let start = self.peek().clone();
        let pattern = self.atom()?;
        let mut column = None;
        for (i, &t) in pattern.args.iter().enumerate() {
            match t {
                Term::Var(v) if self.vocab.var_name(v) != "_" => {
                    if column.replace(i).is_some() {
                        return Err(self.error_at(
                            &start,
                            "domain pattern must mark exactly one column with a named variable",
                        ));
                    }
                }
                Term::Var(_) => {}
                Term::Cst(_) => {
                    return Err(self.error_at(
                        &start,
                        "domain pattern arguments must be variables (`_` for unconstrained columns)",
                    ));
                }
            }
        }
        let Some(column) = column else {
            return Err(self.error_at(
                &start,
                "domain pattern must mark exactly one column with a named variable",
            ));
        };
        // `in { c1, c2, ... }`
        let tok = self.next();
        if !matches!(&tok.kind, TokenKind::Symbol(kw) if kw == "in") {
            return Err(self.error_at(&tok, format!("expected `in`, found {}", tok.kind)));
        }
        self.expect(&TokenKind::LBrace)?;
        let mut values: Vec<Cst> = Vec::new();
        loop {
            let tok = self.next();
            let TokenKind::Symbol(name) = tok.kind.clone() else {
                return Err(self.error_at(&tok, format!("expected a constant, found {}", tok.kind)));
            };
            values.push(self.vocab.cst(&name));
            if self.eat(&TokenKind::Comma) {
                continue;
            }
            self.expect(&TokenKind::RBrace)?;
            break;
        }
        Ok(FiniteDomain {
            pred: pattern.pred,
            column,
            values: values.into_iter().collect(),
        })
    }

    /// `key := pred ( _ | Var, … )` — the named (non-`_`) variable
    /// positions are the key columns (at least one required).
    fn key(&mut self) -> Result<Key, ParseError> {
        let start = self.peek().clone();
        let pattern = self.atom()?;
        let mut columns = Vec::new();
        for (i, &t) in pattern.args.iter().enumerate() {
            match t {
                Term::Var(v) if self.vocab.var_name(v) != "_" => columns.push(i),
                Term::Var(_) => {}
                Term::Cst(_) => {
                    return Err(self.error_at(
                        &start,
                        "key pattern arguments must be variables (`_` for non-key columns)",
                    ));
                }
            }
        }
        if columns.is_empty() {
            return Err(self.error_at(
                &start,
                "key pattern must mark at least one column with a named variable",
            ));
        }
        Ok(Key {
            pred: pattern.pred,
            columns,
        })
    }

    fn ground_fact(&mut self) -> Result<Fact, ParseError> {
        let tok_pos = self.peek().clone();
        let atom = self.atom()?;
        atom.to_fact()
            .ok_or_else(|| self.error_at(&tok_pos, "facts must be ground (no variables)"))
    }

    fn document(&mut self) -> Result<Document, ParseError> {
        let mut doc = Document::default();
        doc.spans.comments = self.comments.clone();
        loop {
            let tok = self.peek().clone();
            match &tok.kind {
                TokenKind::Eof => return Ok(doc),
                TokenKind::Symbol(kw) if kw == "compl" => {
                    self.next();
                    let (st, mut spans) = self.tcs()?;
                    let dot = self.expect(&TokenKind::Dot)?;
                    spans.item = tok.span.join(dot.span);
                    doc.tcs.push(st);
                    doc.spans.statements.push(spans);
                }
                TokenKind::Symbol(kw) if kw == "query" => {
                    self.next();
                    let (q, mut spans) = self.query()?;
                    let dot = self.expect(&TokenKind::Dot)?;
                    spans.item = tok.span.join(dot.span);
                    doc.queries.push(q);
                    doc.spans.queries.push(spans);
                }
                TokenKind::Symbol(kw) if kw == "fact" => {
                    self.next();
                    let fact = self.ground_fact()?;
                    let dot = self.expect(&TokenKind::Dot)?;
                    doc.spans
                        .facts
                        .push((fact.clone(), tok.span.join(dot.span)));
                    doc.facts.insert(fact);
                }
                TokenKind::Symbol(kw) if kw == "domain" => {
                    self.next();
                    doc.constraints.push(self.domain()?);
                    let dot = self.expect(&TokenKind::Dot)?;
                    doc.spans.domains.push(tok.span.join(dot.span));
                }
                TokenKind::Symbol(kw) if kw == "key" => {
                    self.next();
                    doc.constraints.push_key(self.key()?);
                    let dot = self.expect(&TokenKind::Dot)?;
                    doc.spans.keys.push(tok.span.join(dot.span));
                }
                other => {
                    return Err(self.error_at(
                        &tok,
                        format!(
                            "expected `compl`, `query`, `fact`, `domain` or `key`, found {other}"
                        ),
                    ));
                }
            }
        }
    }

    fn finish<T>(&mut self, value: T) -> Result<T, ParseError> {
        let tok = self.peek().clone();
        if tok.kind == TokenKind::Eof {
            Ok(value)
        } else {
            Err(self.error_at(&tok, format!("trailing input: {}", tok.kind)))
        }
    }
}

/// Parses a whole document of `compl`/`query`/`fact` items.
pub fn parse_document(src: &str, vocab: &mut Vocabulary) -> Result<Document, ParseError> {
    let mut p = Parser::new(src, vocab)?;
    p.document()
}

/// Parses a single query (`q(X) :- body.` — the trailing dot is optional).
pub fn parse_query(src: &str, vocab: &mut Vocabulary) -> Result<Query, ParseError> {
    let mut p = Parser::new(src, vocab)?;
    let (q, _) = p.query()?;
    p.eat(&TokenKind::Dot);
    p.finish(q)
}

/// Parses a single TC statement (`R(s) ; G.` — without the `compl`
/// keyword; the trailing dot is optional).
pub fn parse_tcs(src: &str, vocab: &mut Vocabulary) -> Result<TcStatement, ParseError> {
    let mut p = Parser::new(src, vocab)?;
    let (c, _) = p.tcs()?;
    p.eat(&TokenKind::Dot);
    p.finish(c)
}

/// Parses a single atom (`p(X, c)`).
pub fn parse_atom(src: &str, vocab: &mut Vocabulary) -> Result<Atom, ParseError> {
    let mut p = Parser::new(src, vocab)?;
    let a = p.atom()?;
    p.finish(a)
}

/// Parses a Datalog program: dot-terminated rules `head :- lit, …` where
/// a literal is an atom or `not atom`; a bare `head.` is a fact rule.
///
/// ```
/// use magik_relalg::Vocabulary;
/// use magik_parser::parse_rules;
///
/// let mut v = Vocabulary::new();
/// let program = parse_rules(
///     "path(X, Y) :- edge(X, Y).
///      path(X, Z) :- path(X, Y), edge(Y, Z).
///      unreach(X) :- node(X), not path(root, X).",
///     &mut v,
/// ).unwrap();
/// assert_eq!(program.rules().len(), 3);
/// assert_eq!(program.num_strata(), 2);
/// ```
pub fn parse_rules(
    src: &str,
    vocab: &mut Vocabulary,
) -> Result<magik_datalog::Program, ParseError> {
    let mut p = Parser::new(src, vocab)?;
    let mut rules = Vec::new();
    let mut starts = Vec::new();
    while p.peek().kind != TokenKind::Eof {
        let start = p.peek().clone();
        let head = p.atom()?;
        let mut body = Vec::new();
        let mut negative = Vec::new();
        if p.eat(&TokenKind::Turnstile) {
            loop {
                let negated = matches!(&p.peek().kind, TokenKind::Symbol(s) if s == "not")
                    && p.tokens[p.pos + 1].kind != TokenKind::LParen;
                if negated {
                    p.next();
                    negative.push(p.atom()?);
                } else {
                    body.push(p.atom()?);
                }
                if !p.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        p.expect(&TokenKind::Dot)?;
        rules.push(magik_datalog::Rule::with_negation(head, body, negative));
        starts.push(start.clone());
        // Surface program-level validation errors at the rule they come
        // from, eagerly.
        if let Err(e) = magik_datalog::Program::new(rules.clone()) {
            if !matches!(e, magik_datalog::ProgramError::NotStratifiable { .. }) {
                return Err(p.error_at(&start, e.to_string()));
            }
        }
    }
    // Stratifiability is a whole-program property, checked once at the
    // end; blame the first rule whose head is the offending predicate.
    let heads: Vec<_> = rules.iter().map(|r| r.head.pred).collect();
    magik_datalog::Program::new(rules).map_err(|e| {
        let at = match &e {
            magik_datalog::ProgramError::NotStratifiable { pred } => {
                heads.iter().position(|p| p == pred)
            }
            _ => None,
        };
        match at {
            Some(i) => p.error_at(&starts[i], e.to_string()),
            None => ParseError {
                message: e.to_string(),
                line: 1,
                col: 1,
                span: Span::point(0),
            },
        }
    })
}

/// Parses a list of dot-terminated ground facts into an instance.
pub fn parse_instance(src: &str, vocab: &mut Vocabulary) -> Result<Instance, ParseError> {
    let mut p = Parser::new(src, vocab)?;
    let mut db = Instance::new();
    while p.peek().kind != TokenKind::Eof {
        db.insert(p.ground_fact()?);
        p.expect(&TokenKind::Dot)?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::DisplayWith;

    fn snippet(src: &str, span: Span) -> &str {
        &src[span.start..span.end]
    }

    #[test]
    fn parses_the_running_example_document() {
        let mut v = Vocabulary::new();
        let doc = parse_document(
            "% schoolBolzano
             compl school(S, primary, D) ; true.
             compl pupil(N, C, S) ; school(S, T, merano).
             compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).
             query q_pbl(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).
             fact school(goethe, primary, merano).
             fact pupil(john, c1, goethe).",
            &mut v,
        )
        .unwrap();
        assert_eq!(doc.tcs.len(), 3);
        assert_eq!(doc.queries.len(), 1);
        assert_eq!(doc.facts.len(), 2);
        assert_eq!(
            doc.queries[0].display(&v).to_string(),
            "q_pbl(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L)"
        );
        assert_eq!(
            doc.tcs.statements()[2].display(&v).to_string(),
            "compl learns(N, english) ; pupil(N, C, S), school(S, primary, D)"
        );
    }

    #[test]
    fn document_spans_cover_items() {
        let src = "compl p(X) ; q(X).\nquery q1(N) :- p(N), q(N).\nfact p(a).\n\
                   domain p(X) in {a, b}.\nkey q(K).";
        let mut v = Vocabulary::new();
        let doc = parse_document(src, &mut v).unwrap();

        let st = &doc.spans.statements[0];
        assert_eq!(snippet(src, st.item), "compl p(X) ; q(X).");
        assert_eq!(snippet(src, st.head), "p(X)");
        assert_eq!(snippet(src, st.condition[0]), "q(X)");

        let qs = &doc.spans.queries[0];
        assert_eq!(snippet(src, qs.item), "query q1(N) :- p(N), q(N).");
        assert_eq!(snippet(src, qs.head), "q1(N)");
        assert_eq!(snippet(src, qs.body[0]), "p(N)");
        assert_eq!(snippet(src, qs.body[1]), "q(N)");

        assert_eq!(doc.spans.facts.len(), 1);
        assert_eq!(snippet(src, doc.spans.facts[0].1), "fact p(a).");
        assert!(doc.facts.contains(&doc.spans.facts[0].0));
        assert_eq!(snippet(src, doc.spans.domains[0]), "domain p(X) in {a, b}.");
        assert_eq!(snippet(src, doc.spans.keys[0]), "key q(K).");
    }

    #[test]
    fn true_condition_has_no_condition_spans() {
        let mut v = Vocabulary::new();
        let doc = parse_document("compl p(X) ; true.", &mut v).unwrap();
        assert!(doc.tcs.statements()[0].condition.is_empty());
        assert!(doc.spans.statements[0].condition.is_empty());
    }

    #[test]
    fn parses_true_condition_as_empty() {
        let mut v = Vocabulary::new();
        let c = parse_tcs("school(S, primary, D) ; true", &mut v).unwrap();
        assert!(c.condition.is_empty());
    }

    #[test]
    fn true_as_predicate_name_still_works() {
        let mut v = Vocabulary::new();
        let c = parse_tcs("p(X) ; true(X)", &mut v).unwrap();
        assert_eq!(c.condition.len(), 1);
        assert_eq!(v.pred_name(c.condition[0].pred), "true");
    }

    #[test]
    fn query_without_body() {
        let mut v = Vocabulary::new();
        let q = parse_query("q(a)", &mut v).unwrap();
        assert!(q.body.is_empty());
        assert_eq!(q.head.len(), 1);
        assert!(q.head[0].is_cst());
    }

    #[test]
    fn boolean_query_with_empty_head() {
        let mut v = Vocabulary::new();
        let q = parse_query("q() :- p(X, Y).", &mut v).unwrap();
        assert!(q.head.is_empty());
        assert_eq!(q.size(), 1);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let mut v = Vocabulary::new();
        let err = parse_document(
            "query q(X) :- p(X).
             query r(X) :- p(X, X).",
            &mut v,
        )
        .unwrap_err();
        assert!(err.message.contains("arity"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn facts_must_be_ground() {
        let mut v = Vocabulary::new();
        let err = parse_document("fact p(X).", &mut v).unwrap_err();
        assert!(err.message.contains("ground"));
    }

    #[test]
    fn parse_errors_carry_positions_and_spans() {
        let mut v = Vocabulary::new();

        // Missing dot: discovered at the next item keyword, line 2.
        let src = "fact p(a)\nfact q(b).";
        let err = parse_document(src, &mut v).unwrap_err();
        assert_eq!((err.line, err.col), (2, 1));
        assert_eq!(&src[err.span.start..err.span.end], "fact");

        // Missing term after a comma.
        let err = parse_query("q(X) :- p(X,)", &mut v).unwrap_err();
        assert_eq!((err.line, err.col), (1, 13));
        assert!(err.message.contains("expected a term"));

        // Missing closing paren at end of input: empty span at the end.
        let err = parse_atom("p(a", &mut v).unwrap_err();
        assert_eq!((err.line, err.col), (1, 4));
        assert!(err.span.is_empty());

        // Unknown keyword points at the keyword itself.
        let err = parse_document("  rule p(X).", &mut v).unwrap_err();
        assert_eq!((err.line, err.col), (1, 3));

        // Lex error positions survive the conversion into ParseError.
        let err = parse_document("fact p(a?).", &mut v).unwrap_err();
        assert_eq!((err.line, err.col), (1, 9));
        assert_eq!(err.span, Span::new(8, 9));
    }

    #[test]
    fn quoted_and_numeric_constants() {
        let mut v = Vocabulary::new();
        let a = parse_atom("p(\"New York\", 42)", &mut v).unwrap();
        assert_eq!(a.args.len(), 2);
        let rendered = a.display(&v).to_string();
        assert!(rendered.contains("New York"));
        assert!(rendered.contains("42"));
    }

    #[test]
    fn instance_parsing() {
        let mut v = Vocabulary::new();
        let db = parse_instance("p(a). p(b). q(a, b).", &mut v).unwrap();
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn parses_datalog_rules_with_negation() {
        let mut v = Vocabulary::new();
        let program = parse_rules(
            "reach(X) :- edge(root, X).
             reach(Y) :- reach(X), edge(X, Y).
             unreach(X) :- node(X), not reach(X).
             seed(a).",
            &mut v,
        )
        .unwrap();
        assert_eq!(program.rules().len(), 4);
        assert_eq!(program.num_strata(), 2);
        assert_eq!(program.rules()[2].negative.len(), 1);
        assert!(program.rules()[3].body.is_empty());
    }

    #[test]
    fn not_as_a_predicate_name_still_works() {
        // `not(...)` with parentheses is an ordinary atom, not negation.
        let mut v = Vocabulary::new();
        let program = parse_rules("p(X) :- not(X).", &mut v).unwrap();
        assert!(program.rules()[0].negative.is_empty());
        assert_eq!(v.pred_name(program.rules()[0].body[0].pred), "not");
    }

    #[test]
    fn datalog_validation_errors_are_positioned() {
        let mut v = Vocabulary::new();
        // Unsafe: head variable not in body.
        let err = parse_rules("p(X) :- q(Y).", &mut v).unwrap_err();
        assert!(err.message.contains("range-restricted"));
        assert_eq!(err.line, 1);
        // Unsafe negation.
        let err = parse_rules("p(X) :- q(X), not r(Y).", &mut v).unwrap_err();
        assert!(err.message.contains("negated"));
        // Unstratifiable: blamed on the rule that heads the negative
        // cycle, not on line 1.
        let err = parse_rules("e(X) :- f(X).\np(X) :- q(X), not p(X).", &mut v).unwrap_err();
        assert!(err.message.contains("stratifiable"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn parses_domain_items() {
        let mut v = Vocabulary::new();
        let doc = parse_document(
            "domain class(_, _, _, D) in {halfDay, fullDay}.
             domain school(_, T, _) in {primary, middle}.",
            &mut v,
        )
        .unwrap();
        assert_eq!(doc.constraints.domains().len(), 2);
        let d = &doc.constraints.domains()[0];
        assert_eq!(d.column, 3);
        assert_eq!(v.pred_name(d.pred), "class");
        assert_eq!(d.values.len(), 2);
        assert!(d.values.contains(&v.cst("halfDay")));
        let d2 = &doc.constraints.domains()[1];
        assert_eq!(d2.column, 1);
    }

    #[test]
    fn parses_key_items() {
        let mut v = Vocabulary::new();
        let doc = parse_document(
            "key pupil(N, _, _).
             key class(C, S, _, _).",
            &mut v,
        )
        .unwrap();
        assert_eq!(doc.constraints.keys().len(), 2);
        assert_eq!(doc.constraints.keys()[0].columns, vec![0]);
        assert_eq!(doc.constraints.keys()[1].columns, vec![0, 1]);
        assert_eq!(v.pred_name(doc.constraints.keys()[1].pred), "class");
    }

    #[test]
    fn key_pattern_errors() {
        let mut v = Vocabulary::new();
        // No named variable.
        assert!(parse_document("key p(_, _).", &mut v).is_err());
        // Constant in the pattern.
        assert!(parse_document("key p(a, X).", &mut v).is_err());
    }

    #[test]
    fn domain_pattern_errors() {
        let mut v = Vocabulary::new();
        // Two named variables.
        assert!(parse_document("domain p(X, Y) in {a}.", &mut v).is_err());
        // No named variable.
        assert!(parse_document("domain p(_, _) in {a}.", &mut v).is_err());
        // Constant in the pattern.
        assert!(parse_document("domain p(a, X) in {b}.", &mut v).is_err());
        // Missing `in`.
        assert!(parse_document("domain p(X) {a}.", &mut v).is_err());
        // Empty value set.
        assert!(parse_document("domain p(X) in {}.", &mut v).is_err());
    }

    #[test]
    fn unknown_item_keyword_is_an_error() {
        let mut v = Vocabulary::new();
        let err = parse_document("rule p(X) :- q(X).", &mut v).unwrap_err();
        assert!(err.message.contains("compl"));
    }

    #[test]
    fn missing_dot_is_an_error() {
        let mut v = Vocabulary::new();
        assert!(parse_document("fact p(a)", &mut v).is_err());
    }

    #[test]
    fn trailing_input_is_an_error() {
        let mut v = Vocabulary::new();
        assert!(parse_query("q(X) :- p(X). extra", &mut v).is_err());
        assert!(parse_atom("p(X) q", &mut v).is_err());
    }
}
