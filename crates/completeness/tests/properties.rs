//! Property-based tests for the completeness reasoner.
//!
//! The central property is **soundness against the semantics**: whenever
//! the symbolic reasoner claims `C ⊨ Compl(Q)`, the claim is checked on
//! randomly generated incomplete databases satisfying `C` (built as
//! minimal completions, which are the hardest case by Proposition 2).

use proptest::prelude::*;

use magik_cert::{check_certificate, check_repair, Certificate};
use magik_completeness::semantics::IncompleteDatabase;
use magik_completeness::{
    cert_statements, certify, complete_unifiers, g_op, is_complete, is_complete_under,
    is_complete_via_datalog, is_instantiation_of, k_mcs, k_mcs_on, mcg, mcg_under, mcis,
    repair_suggestions, tc_apply, tc_apply_datalog, ConstraintSet, FiniteDomain, KMcsEngine,
    KMcsOptions, TcSet, TcStatement,
};
use magik_exec::Executor;
use magik_relalg::{
    are_equivalent, is_contained_in, Atom, Fact, Instance, Query, Term, Vocabulary,
};

const NUM_PREDS: u8 = 3;
const NUM_VARS: u8 = 4;
const NUM_CSTS: u8 = 3;

fn pred_arity(p: u8) -> usize {
    [1, 2, 2][p as usize % 3]
}

#[derive(Debug, Clone, Copy)]
enum ATerm {
    Var(u8),
    Cst(u8),
}

#[derive(Debug, Clone)]
struct AAtom {
    pred: u8,
    args: Vec<ATerm>,
}

#[derive(Debug, Clone)]
struct ATcs {
    head: AAtom,
    condition: Vec<AAtom>,
}

fn aterm() -> impl Strategy<Value = ATerm> {
    prop_oneof![
        3 => (0..NUM_VARS).prop_map(ATerm::Var),
        1 => (0..NUM_CSTS).prop_map(ATerm::Cst),
    ]
}

fn aatom() -> impl Strategy<Value = AAtom> {
    (0..NUM_PREDS).prop_flat_map(|p| {
        proptest::collection::vec(aterm(), pred_arity(p))
            .prop_map(move |args| AAtom { pred: p, args })
    })
}

fn atcs() -> impl Strategy<Value = ATcs> {
    (aatom(), proptest::collection::vec(aatom(), 0..2))
        .prop_map(|(head, condition)| ATcs { head, condition })
}

struct Ctx {
    vocab: Vocabulary,
}

impl Ctx {
    fn new() -> Self {
        Ctx {
            vocab: Vocabulary::new(),
        }
    }

    fn term(&mut self, t: ATerm) -> Term {
        match t {
            ATerm::Var(i) => Term::Var(self.vocab.var(&format!("X{i}"))),
            ATerm::Cst(i) => Term::Cst(self.vocab.cst(&format!("c{i}"))),
        }
    }

    fn atom(&mut self, a: &AAtom) -> Atom {
        let pred = self.vocab.pred(&format!("p{}", a.pred), pred_arity(a.pred));
        let args = a.args.iter().map(|&t| self.term(t)).collect();
        Atom::new(pred, args)
    }

    fn tcs(&mut self, specs: &[ATcs]) -> TcSet {
        specs
            .iter()
            .map(|s| {
                let head = self.atom(&s.head);
                let condition = s.condition.iter().map(|a| self.atom(a)).collect();
                TcStatement::new(head, condition)
            })
            .collect()
    }

    /// A safe query from abstract atoms: head is the variable tuple of the
    /// first atom (or empty → Boolean).
    fn query(&mut self, body: &[AAtom]) -> Query {
        let body: Vec<Atom> = body.iter().map(|a| self.atom(a)).collect();
        let head: Vec<Term> = body
            .first()
            .map(|a| a.vars().map(Term::Var).collect())
            .unwrap_or_default();
        Query::new(self.vocab.sym("q"), head, body)
    }

    /// A ground instance from abstract atoms, grounding variables to
    /// constants by index.
    fn instance(&mut self, atoms: &[AAtom]) -> Instance {
        atoms
            .iter()
            .map(|a| {
                let pred = self.vocab.pred(&format!("p{}", a.pred), pred_arity(a.pred));
                let args = a
                    .args
                    .iter()
                    .map(|&t| match t {
                        ATerm::Var(i) => self.vocab.cst(&format!("c{}", i % NUM_CSTS)),
                        ATerm::Cst(i) => self.vocab.cst(&format!("c{i}")),
                    })
                    .collect();
                Fact::new(pred, args)
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Proposition 2: T_C(D) ⊆ D; monotone; (D, T_C(D)) ⊨ C; and T_C(D)
    /// is the smallest available state satisfying C.
    #[test]
    fn tc_operator_laws(specs in proptest::collection::vec(atcs(), 0..4), d in proptest::collection::vec(aatom(), 0..8), extra in proptest::collection::vec(aatom(), 0..4)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let db = ctx.instance(&d);
        let applied = tc_apply(&tcs, &db);
        prop_assert!(applied.is_subset_of(&db));
        let mut bigger = db.clone();
        bigger.extend_from(&ctx.instance(&extra));
        prop_assert!(applied.is_subset_of(&tc_apply(&tcs, &bigger)));
        let pair = IncompleteDatabase::new(db.clone(), applied.clone()).unwrap();
        prop_assert!(pair.satisfies_all(&tcs));
    }

    /// The direct and the Datalog-encoded T_C agree.
    #[test]
    fn tc_direct_equals_tc_datalog(specs in proptest::collection::vec(atcs(), 0..4), d in proptest::collection::vec(aatom(), 0..8)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let db = ctx.instance(&d);
        let direct = tc_apply(&tcs, &db);
        let datalog = tc_apply_datalog(&tcs, &db, &mut ctx.vocab);
        prop_assert_eq!(direct, datalog);
    }

    /// Theorem 3 soundness: if the reasoner claims completeness, the query
    /// loses no answers on random minimal completions (which satisfy C).
    #[test]
    fn completeness_claims_are_sound(specs in proptest::collection::vec(atcs(), 0..4), qb in proptest::collection::vec(aatom(), 1..4), d in proptest::collection::vec(aatom(), 0..8)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        if is_complete(&q, &tcs) {
            let ideal = ctx.instance(&d);
            let pair = IncompleteDatabase::minimal_completion(ideal, &tcs);
            prop_assert!(pair.satisfies_all(&tcs));
            prop_assert!(
                pair.query_complete(&q).unwrap(),
                "reasoner claimed complete but an answer was lost"
            );
        }
    }

    /// Theorem 3 completeness (of the check): if the reasoner claims
    /// incompleteness, the canonical database paired with T_C of it is a
    /// concrete counterexample.
    #[test]
    fn incompleteness_claims_have_witnesses(specs in proptest::collection::vec(atcs(), 0..4), qb in proptest::collection::vec(aatom(), 1..4)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        if !is_complete(&q, &tcs) {
            let ideal = magik_relalg::canonical_database(&q);
            let pair = IncompleteDatabase::minimal_completion(ideal, &tcs);
            prop_assert!(pair.satisfies_all(&tcs));
            prop_assert!(
                !pair.query_complete(&q).unwrap(),
                "reasoner claimed incomplete but the canonical witness shows no loss"
            );
        }
    }

    /// Every verdict carries a certificate, of the matching polarity,
    /// that the independent `magik-cert` checker accepts: a complete
    /// verdict's witness derivations check out, an incomplete verdict's
    /// counterexample checks out, and the attached repair is validated
    /// as sound *and* 1-minimal.
    #[test]
    fn certificates_always_validate(specs in proptest::collection::vec(atcs(), 0..4), qb in proptest::collection::vec(aatom(), 1..4)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        let cert = certify(&q, &tcs);
        let statements = cert_statements(&tcs);
        prop_assert!(
            check_certificate(&q, &statements, &cert).is_ok(),
            "engine emitted a certificate magik-cert rejects"
        );
        match &cert {
            Certificate::Complete(_) => prop_assert!(is_complete(&q, &tcs)),
            Certificate::Incomplete { repair, .. } => {
                prop_assert!(!is_complete(&q, &tcs));
                let r = repair.as_ref().expect("an all-atoms repair always exists");
                prop_assert!(check_repair(&q, &statements, r).is_ok());
            }
        }
    }

    /// `repair_suggestions` returns exactly the incomplete case's repair:
    /// empty iff the query is already complete, and asserting the
    /// suggestions (as unconditional statements) makes it complete.
    #[test]
    fn repair_suggestions_repair(specs in proptest::collection::vec(atcs(), 0..4), qb in proptest::collection::vec(aatom(), 1..4)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        let repair = repair_suggestions(&q, &tcs);
        prop_assert_eq!(repair.is_empty(), is_complete(&q, &tcs));
        let repaired: TcSet = tcs
            .statements()
            .iter()
            .cloned()
            .chain(repair.iter().cloned())
            .collect();
        prop_assert!(is_complete(&q, &repaired));
    }

    /// The two completeness checkers agree.
    #[test]
    fn datalog_check_agrees(specs in proptest::collection::vec(atcs(), 0..4), qb in proptest::collection::vec(aatom(), 1..4)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        prop_assert_eq!(
            is_complete(&q, &tcs),
            is_complete_via_datalog(&q, &tcs, &mut ctx.vocab)
        );
    }

    /// G_C produces a subquery, is monotone (Prop. 10.1), and fixed points
    /// coincide with completeness (Prop. 10.2).
    #[test]
    fn g_op_laws(specs in proptest::collection::vec(atcs(), 0..4), qb in proptest::collection::vec(aatom(), 1..4)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        let g = g_op(&q, &tcs);
        prop_assert!(g.size() <= q.size());
        for a in &g.body {
            prop_assert!(q.body.contains(a));
        }
        prop_assert!(is_contained_in(&q, &g));
        prop_assert_eq!(is_complete(&q, &tcs), are_equivalent(&g, &q));
    }

    /// MCG (when it exists) is a complete generalization containing Q and
    /// contained in every complete subquery (Prop. 12).
    #[test]
    fn mcg_laws(specs in proptest::collection::vec(atcs(), 0..4), qb in proptest::collection::vec(aatom(), 1..4)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        match mcg(&q, &tcs) {
            Some(m) => {
                prop_assert!(m.is_safe());
                prop_assert!(is_complete(&m, &tcs));
                prop_assert!(is_contained_in(&q, &m));
                // Least fixed point: contained in every complete subquery.
                for mask in 0u32..(1 << q.size().min(5)) {
                    let mut idx = 0;
                    let sub = q.subquery(|_| {
                        let keep = mask & (1 << idx) != 0;
                        idx += 1;
                        keep
                    });
                    if sub.is_safe() && is_complete(&sub, &tcs) {
                        prop_assert!(is_contained_in(&m, &sub));
                    }
                }
            }
            None => {
                // No safe complete subquery may exist.
                for mask in 0u32..(1 << q.size().min(5)) {
                    let mut idx = 0;
                    let sub = q.subquery(|_| {
                        let keep = mask & (1 << idx) != 0;
                        idx += 1;
                        keep
                    });
                    prop_assert!(!(sub.is_safe() && is_complete(&sub, &tcs)));
                }
            }
        }
    }

    /// Every complete unifier yields a complete instantiation
    /// (Proposition 21).
    #[test]
    fn complete_unifiers_yield_complete_queries(specs in proptest::collection::vec(atcs(), 0..3), qb in proptest::collection::vec(aatom(), 1..3)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        for gamma in complete_unifiers(&q, &tcs, &mut ctx.vocab).into_iter().take(32) {
            let qi = gamma.apply_query(&q);
            prop_assert!(is_complete(&qi, &tcs));
            prop_assert!(is_contained_in(&qi, &q));
        }
    }

    /// Every MCI is a complete instantiation of (the minimized) Q, and
    /// MCIs are pairwise incomparable.
    #[test]
    fn mci_laws(specs in proptest::collection::vec(atcs(), 0..3), qb in proptest::collection::vec(aatom(), 1..3)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        let result = mcis(&q, &tcs, &mut ctx.vocab);
        for m in &result {
            prop_assert!(is_complete(m, &tcs));
            prop_assert!(is_contained_in(m, &q));
            prop_assert!(is_instantiation_of(m, &q));
        }
        for (i, a) in result.iter().enumerate() {
            for (j, b) in result.iter().enumerate() {
                if i != j {
                    prop_assert!(!is_contained_in(a, b));
                }
            }
        }
    }

    /// Lemma 9 claim 2: any instantiation of a complete **minimal** query
    /// is complete.
    #[test]
    fn lemma_9_instantiations_of_minimal_complete_queries(
        specs in proptest::collection::vec(atcs(), 0..4),
        qb in proptest::collection::vec(aatom(), 1..4),
        bindings in proptest::collection::vec((0..NUM_VARS, aterm()), 0..4),
    ) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = magik_relalg::minimize(&ctx.query(&qb));
        if is_complete(&q, &tcs) {
            let alpha = magik_relalg::Substitution::from_pairs(
                bindings
                    .iter()
                    .map(|&(v, img)| {
                        let var = ctx.vocab.var(&format!("X{v}"));
                        let image = ctx.term(img);
                        (var, image)
                    })
                    .collect::<Vec<_>>(),
            );
            prop_assert!(
                is_complete(&alpha.apply_query(&q), &tcs),
                "Lemma 9 claim 2 violated"
            );
        }
    }

    /// Proposition 8 corollary: the complete subqueries of Q form the
    /// search space for complete generalizations — every complete
    /// generalization of Q contains a complete subquery of Q. We check the
    /// fixed-point form: when an MCG exists, it is equivalent to a
    /// complete subquery.
    #[test]
    fn proposition_8_mcg_is_a_subquery(
        specs in proptest::collection::vec(atcs(), 0..4),
        qb in proptest::collection::vec(aatom(), 1..4),
    ) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        if let Some(m) = mcg(&q, &tcs) {
            // Body of m is a subset of body of q.
            for atom in &m.body {
                prop_assert!(q.body.contains(atom));
            }
        }
    }

    /// Completeness is monotone in constraints: adding finite-domain
    /// constraints only shrinks the space of ideal instances, so a
    /// classically complete query stays complete under any constraints.
    #[test]
    fn constraints_only_strengthen_completeness(
        specs in proptest::collection::vec(atcs(), 0..4),
        qb in proptest::collection::vec(aatom(), 1..3),
        dom_cols in proptest::collection::vec((0..NUM_PREDS, 0..3usize, 1..3usize), 0..3),
    ) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        let constraints: ConstraintSet = dom_cols
            .iter()
            .map(|&(p, col, size)| {
                let pred = ctx.vocab.pred(&format!("p{p}"), pred_arity(p));
                let column = col % pred_arity(p);
                FiniteDomain {
                    pred,
                    column,
                    values: (0..size)
                        .map(|i| ctx.vocab.cst(&format!("c{i}")))
                        .collect(),
                }
            })
            .collect();
        if is_complete(&q, &tcs) {
            prop_assert!(is_complete_under(&q, &tcs, &constraints));
        }
        // And the constrained MCG exists whenever the classic one does,
        // and is at least as specific (keeps at least as many atoms).
        if let Some(classic) = mcg(&q, &tcs) {
            let constrained = mcg_under(&q, &tcs, &constraints)
                .expect("constraints cannot destroy an MCG");
            prop_assert!(constrained.size() >= classic.size());
        }
    }

    /// Soundness of the constrained check: a query judged complete under
    /// the constraints loses no answer on any domain-valid minimal
    /// completion.
    #[test]
    fn constrained_completeness_is_sound(
        specs in proptest::collection::vec(atcs(), 0..4),
        qb in proptest::collection::vec(aatom(), 1..3),
        d in proptest::collection::vec(aatom(), 0..8),
        dom_size in 1..3usize,
    ) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        // Constrain column 0 of p1 (binary) to a small domain.
        let pred = ctx.vocab.pred("p1", pred_arity(1));
        let values: std::collections::BTreeSet<_> = (0..dom_size)
            .map(|i| ctx.vocab.cst(&format!("c{i}")))
            .collect();
        let constraints = ConstraintSet::new(vec![FiniteDomain {
            pred,
            column: 0,
            values: values.clone(),
        }]);
        if is_complete_under(&q, &tcs, &constraints) {
            // Build a domain-valid ideal instance: clamp the constrained
            // column to an allowed value.
            let mut ideal = magik_relalg::Instance::new();
            for fact in ctx.instance(&d).iter_facts() {
                let mut fact = fact;
                if fact.pred == pred && !values.contains(&fact.args[0]) {
                    fact.args[0] = *values.iter().next().expect("non-empty domain");
                }
                ideal.insert(fact);
            }
            prop_assert!(constraints.check_instance(&ideal).is_ok());
            let pair = IncompleteDatabase::minimal_completion(ideal, &tcs);
            prop_assert!(
                pair.query_complete(&q).unwrap(),
                "constrained completeness claim violated on a domain-valid instance"
            );
        }
    }

    /// Key soundness: if the key-aware check claims completeness, no
    /// key-consistent minimal completion loses an answer.
    #[test]
    fn key_completeness_is_sound(
        specs in proptest::collection::vec(atcs(), 0..4),
        qb in proptest::collection::vec(aatom(), 1..4),
        d in proptest::collection::vec(aatom(), 0..8),
    ) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        // Key on column 0 of the binary relation p1.
        let pred = ctx.vocab.pred("p1", pred_arity(1));
        let key = magik_completeness::Key { pred, columns: vec![0] };
        let constraints = ConstraintSet::with_keys(vec![], vec![key.clone()]);
        if is_complete_under(&q, &tcs, &constraints) && !is_complete(&q, &tcs) {
            // The keys did real work; validate on key-consistent data:
            // drop facts that would violate the key (keep first per key).
            let mut ideal = magik_relalg::Instance::new();
            for fact in ctx.instance(&d).iter_facts() {
                let mut probe = ideal.clone();
                probe.insert(fact.clone());
                if key.check_instance(&probe).is_ok() {
                    ideal = probe;
                }
            }
            prop_assert!(key.check_instance(&ideal).is_ok());
            let pair = IncompleteDatabase::minimal_completion(ideal, &tcs);
            prop_assert!(
                pair.query_complete(&q).unwrap(),
                "key-aware completeness claim violated on key-consistent data"
            );
        }
    }

    /// Naive and optimized k-MCS engines agree up to equivalence (k = 1 to
    /// keep the naive engine affordable inside a property test).
    #[test]
    fn k_mcs_engines_agree(specs in proptest::collection::vec(atcs(), 0..3), qb in proptest::collection::vec(aatom(), 1..2)) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        let naive = k_mcs(
            &q,
            &tcs,
            &mut ctx.vocab,
            KMcsOptions {
                engine: KMcsEngine::Naive,
                ..KMcsOptions::new(1)
            },
        );
        let optimized = k_mcs(&q, &tcs, &mut ctx.vocab, KMcsOptions::new(1));
        prop_assert!(naive.complete_search && optimized.complete_search);
        prop_assert_eq!(naive.queries.len(), optimized.queries.len());
        for nq in &naive.queries {
            prop_assert!(optimized.queries.iter().any(|oq| are_equivalent(nq, oq)));
        }
        // And every result is a bounded complete specialization.
        for m in &optimized.queries {
            prop_assert!(is_complete(m, &tcs));
            prop_assert!(is_contained_in(m, &q));
            prop_assert!(m.size() <= magik_relalg::minimize(&q).size() + 1);
        }
    }

    /// Parallel k-MCS is indistinguishable from the sequential engine:
    /// identical search statistics and pairwise-equivalent result sets.
    /// (Variable *names* may differ — the parallel path pre-mints pool
    /// variables — so the comparison is up to equivalence, not syntax.)
    #[test]
    fn parallel_k_mcs_matches_sequential(
        specs in proptest::collection::vec(atcs(), 0..3),
        qb in proptest::collection::vec(aatom(), 1..3),
        k in 0..2u32,
    ) {
        let mut ctx = Ctx::new();
        let tcs = ctx.tcs(&specs);
        let q = ctx.query(&qb);
        let seq = k_mcs(&q, &tcs, &mut ctx.vocab.clone(), KMcsOptions::new(k as usize));
        let par = k_mcs_on(
            &q,
            &tcs,
            &mut ctx.vocab,
            KMcsOptions::new(k as usize),
            &Executor::with_threads(4),
        );
        prop_assert!(seq.complete_search && par.complete_search);
        prop_assert_eq!(seq.stats, par.stats);
        prop_assert_eq!(seq.queries.len(), par.queries.len());
        for sq in &seq.queries {
            prop_assert!(par.queries.iter().any(|pq| are_equivalent(sq, pq)));
        }
        for pq in &par.queries {
            prop_assert!(seq.queries.iter().any(|sq| are_equivalent(sq, pq)));
        }
    }
}
