//! Regression tests from an adversarial review pass.
//!
//! These cases were found by brute-force coverage checks against the
//! enumeration algorithms and by probing the constraint extensions; each
//! one exposed (and now guards against) a real defect:
//!
//! * the key chase must be re-run per finite-domain case
//!   (`is_complete_under`);
//! * `mcg_under` must return an already-complete query unchanged;
//! * the k-MCS size budget is defined by the query *as given*, not its
//!   minimized core.

use magik_completeness::{
    complete_unifiers, is_complete, k_mcs, mcis, KMcsEngine, KMcsOptions, TcSet, TcStatement,
};
use magik_relalg::{is_contained_in, Atom, Query, Substitution, Term, Var, Vocabulary};

/// All substitutions from `vars` to `targets`.
fn all_substs(vars: &[Var], targets: &[Term]) -> Vec<Substitution> {
    let mut out = vec![Substitution::identity()];
    for &v in vars {
        let mut next = Vec::new();
        for s in &out {
            // also allow leaving v unmapped (identity on v)
            next.push(s.clone());
            for &t in targets {
                let mut s2 = s.clone();
                s2.bind(v, t);
                next.push(s2);
            }
        }
        out = next;
    }
    out
}

#[test]
fn mcis_cover_all_complete_instantiations_flight() {
    let mut v = Vocabulary::new();
    let conn = v.pred("conn", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let tcs = TcSet::new(vec![TcStatement::new(
        Atom::new(conn, vec![Term::Var(x), Term::Var(y)]),
        vec![Atom::new(conn, vec![Term::Var(y), Term::Var(z)])],
    )]);
    let q = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![Atom::new(conn, vec![Term::Var(x), Term::Var(y)])],
    );
    let results = mcis(&q, &tcs, &mut v);
    let a = v.cst("a");
    let targets = [Term::Var(x), Term::Var(y), Term::Var(z), Term::Cst(a)];
    for s in all_substs(&[x, y], &targets) {
        let qi = s.apply_query(&q);
        if is_complete(&qi, &tcs) && is_contained_in(&qi, &q) {
            assert!(
                results.iter().any(|m| is_contained_in(&qi, m)),
                "complete instantiation not covered by any MCI: {qi:?}"
            );
        }
    }
}

#[test]
fn mcis_cover_all_complete_instantiations_school() {
    let mut v = Vocabulary::new();
    let pupil = v.pred("pupil", 3);
    let school = v.pred("school", 3);
    let learns = v.pred("learns", 2);
    let (n, c, s, t, d) = (v.var("N"), v.var("C"), v.var("S"), v.var("T"), v.var("D"));
    let (primary, merano, english) = (v.cst("primary"), v.cst("merano"), v.cst("english"));
    let tcs = TcSet::new(vec![
        TcStatement::new(
            Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Var(d)]),
            vec![],
        ),
        TcStatement::new(
            Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
            vec![Atom::new(
                school,
                vec![Term::Var(s), Term::Var(t), Term::Cst(merano)],
            )],
        ),
        TcStatement::new(
            Atom::new(learns, vec![Term::Var(n), Term::Cst(english)]),
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Var(d)]),
            ],
        ),
    ]);
    // q(N) <- pupil(N,C,S), school(S, primary, merano), learns(N, L)
    let l = v.var("L");
    let q = Query::new(
        v.sym("q"),
        vec![Term::Var(n)],
        vec![
            Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
            Atom::new(
                school,
                vec![Term::Var(s), Term::Cst(primary), Term::Cst(merano)],
            ),
            Atom::new(learns, vec![Term::Var(n), Term::Var(l)]),
        ],
    );
    let results = mcis(&q, &tcs, &mut v);
    let targets = [Term::Var(n), Term::Cst(english), Term::Cst(merano)];
    for su in all_substs(&[c, s, l], &targets) {
        let qi = su.apply_query(&q);
        if is_complete(&qi, &tcs) && is_contained_in(&qi, &q) {
            assert!(
                results.iter().any(|m| is_contained_in(&qi, m)),
                "complete instantiation not covered by any MCI"
            );
        }
    }
}

/// Enumerate all queries over `conn` with <= max_atoms atoms, vars from a
/// small pool, head = first var; check k_mcs covers every complete
/// specialization.
#[test]
fn k_mcs_covers_bruteforce_flight() {
    let mut v = Vocabulary::new();
    let conn = v.pred("conn", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let tcs = TcSet::new(vec![TcStatement::new(
        Atom::new(conn, vec![Term::Var(x), Term::Var(y)]),
        vec![Atom::new(conn, vec![Term::Var(y), Term::Var(z)])],
    )]);
    let q = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![Atom::new(conn, vec![Term::Var(x), Term::Var(y)])],
    );
    let k = 2;
    let out = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(k));
    assert!(out.complete_search);

    // brute force: bodies over vars {x,y,z,w} with 1..=3 atoms, head x.
    let w = v.var("W");
    let vars = [x, y, z, w];
    let mut atoms = Vec::new();
    for &a in &vars {
        for &b in &vars {
            atoms.push(Atom::new(conn, vec![Term::Var(a), Term::Var(b)]));
        }
    }
    let n = atoms.len();
    let mut checked = 0usize;
    for mask in 1u32..(1 << n) {
        if mask.count_ones() as usize > q.size() + k {
            continue;
        }
        let body: Vec<Atom> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| atoms[i].clone())
            .collect();
        let cand = Query::new(v.sym("q"), vec![Term::Var(x)], body);
        if !cand.is_safe() {
            continue;
        }
        if is_contained_in(&cand, &q) && is_complete(&cand, &tcs) {
            checked += 1;
            assert!(
                out.queries.iter().any(|m| is_contained_in(&cand, m)),
                "complete specialization not covered by any {k}-MCS: {} atoms, mask {mask:b}",
                cand.size()
            );
        }
    }
    assert!(checked > 0);
}

#[test]
fn naive_and_optimized_agree_school_k1() {
    let mut v = Vocabulary::new();
    let r = v.pred("r", 2);
    let s = v.pred("s", 1);
    let (x, y) = (v.var("X"), v.var("Y"));
    let a = v.cst("a");
    // Compl(r(X,Y); s(Y)), Compl(s(a); true)
    let tcs = TcSet::new(vec![
        TcStatement::new(
            Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(s, vec![Term::Var(y)])],
        ),
        TcStatement::new(Atom::new(s, vec![Term::Cst(a)]), vec![]),
    ]);
    let q = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![Atom::new(r, vec![Term::Var(x), Term::Var(y)])],
    );
    for k in 0..=2 {
        let naive = k_mcs(
            &q,
            &tcs,
            &mut v,
            KMcsOptions {
                engine: KMcsEngine::Naive,
                ..KMcsOptions::new(k)
            },
        );
        let opt = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(k));
        assert_eq!(naive.queries.len(), opt.queries.len(), "k={k}");
        for nq in &naive.queries {
            assert!(
                opt.queries
                    .iter()
                    .any(|oq| is_contained_in(nq, oq) && is_contained_in(oq, nq)),
                "k={k}: naive result missing in optimized"
            );
        }
        // also coverage brute force: gamma over {x,y} -> {x,y,a} plus extension s(T)
        let targets = [Term::Var(x), Term::Var(y), Term::Cst(a)];
        for su in all_substs(&[x, y], &targets) {
            let qi = su.apply_query(&q);
            if !qi.is_safe() {
                continue;
            }
            // extend with s-atom variants too
            let exts: Vec<Vec<Atom>> = vec![
                vec![],
                vec![Atom::new(s, vec![Term::Var(y)])],
                vec![Atom::new(s, vec![Term::Cst(a)])],
            ];
            for e in exts {
                let mut cand = qi.with_atoms(e);
                cand.dedup_body();
                if cand.size() > q.size() + k {
                    continue;
                }
                if is_contained_in(&cand, &q) && is_complete(&cand, &tcs) {
                    assert!(
                        opt.queries.iter().any(|m| is_contained_in(&cand, m)),
                        "k={k}: complete specialization not covered"
                    );
                }
            }
        }
    }
}

#[test]
fn unifier_with_repeated_head_vars_and_constants() {
    let mut v = Vocabulary::new();
    let r = v.pred("r", 2);
    let x = v.var("X");
    // Compl(r(X,X); true)
    let tcs = TcSet::new(vec![TcStatement::new(
        Atom::new(r, vec![Term::Var(x), Term::Var(x)]),
        vec![],
    )]);
    let (a_var, b_var) = (v.var("A"), v.var("B"));
    let q = Query::new(
        v.sym("q"),
        vec![Term::Var(a_var), Term::Var(b_var)],
        vec![Atom::new(r, vec![Term::Var(a_var), Term::Var(b_var)])],
    );
    let us = complete_unifiers(&q, &tcs, &mut v);
    assert!(!us.is_empty());
    for g in &us {
        let qi = g.apply_query(&q);
        assert!(is_complete(&qi, &tcs), "unifier result must be complete");
        // no scratch pool variables may leak into the result
        for var in qi.all_vars() {
            let name = v.var_name(var).to_owned();
            assert!(
                !name.starts_with('T') || name == "T",
                "unexpected var {name}"
            );
        }
    }
}

#[test]
fn k_mcs_bound_uses_original_query_size() {
    let mut v = Vocabulary::new();
    let conn = v.pred("conn", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let tcs = TcSet::new(vec![TcStatement::new(
        Atom::new(conn, vec![Term::Var(x), Term::Var(y)]),
        vec![Atom::new(conn, vec![Term::Var(y), Term::Var(z)])],
    )]);
    // Non-minimal q: q(X) <- conn(X,Y), conn(X,Z). |Q| = 2, core = 1.
    let q = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![
            Atom::new(conn, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(conn, vec![Term::Var(x), Term::Var(z)]),
        ],
    );
    // Per the definition, 1-MCS space = specializations with <= |Q|+1 = 3 atoms.
    // The 3-cycle is such a specialization, complete, and maximal there.
    let w = v.var("W");
    let three_cycle = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![
            Atom::new(conn, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(conn, vec![Term::Var(y), Term::Var(w)]),
            Atom::new(conn, vec![Term::Var(w), Term::Var(x)]),
        ],
    );
    assert!(is_complete(&three_cycle, &tcs));
    assert!(is_contained_in(&three_cycle, &q));
    assert!(three_cycle.size() <= q.size() + 1);
    let out = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(1));
    assert!(out.complete_search);
    eprintln!("results: {}", out.queries.len());
    for m in &out.queries {
        eprintln!("  size {}", m.size());
    }
    assert!(
        out.queries.iter().any(|m| is_contained_in(&three_cycle, m)),
        "the 3-cycle (a valid 1-MCS member, size |Q|+1) is not covered by any returned 1-MCS"
    );
}

#[test]
fn key_merge_after_domain_instantiation() {
    let mut v = Vocabulary::new();
    let p = v.pred("p", 2);
    let r = v.pred("r", 1);
    let s = v.pred("s", 1);
    let (a, b) = (v.cst("a"), v.cst("b"));
    let (x, u, z, w) = (v.var("X"), v.var("U"), v.var("Z"), v.var("W"));
    let tcs = TcSet::new(vec![
        TcStatement::new(Atom::new(p, vec![Term::Cst(a), Term::Cst(b)]), vec![]),
        TcStatement::new(Atom::new(r, vec![Term::Var(z)]), vec![]),
        TcStatement::new(Atom::new(s, vec![Term::Var(w)]), vec![]),
    ]);
    let constraints = magik_completeness::ConstraintSet::with_keys(
        vec![magik_completeness::FiniteDomain {
            pred: r,
            column: 0,
            values: [a].into_iter().collect(),
        }],
        vec![magik_completeness::Key {
            pred: p,
            columns: vec![0],
        }],
    );
    // q() <- p(X, U), p(a, b), r(X), s(U): the domain forces X = a, then
    // the key forces U = b, so every match is over guaranteed facts.
    let q = Query::boolean(
        v.sym("q"),
        vec![
            Atom::new(p, vec![Term::Var(x), Term::Var(u)]),
            Atom::new(p, vec![Term::Cst(a), Term::Cst(b)]),
            Atom::new(r, vec![Term::Var(x)]),
            Atom::new(s, vec![Term::Var(u)]),
        ],
    );
    assert!(magik_completeness::is_complete_under(
        &q,
        &tcs,
        &constraints
    ));
}

#[test]
fn mcg_under_returns_complete_queries_unchanged() {
    let mut v = Vocabulary::new();
    let p = v.pred("p", 2);
    let t = v.pred("t", 1);
    let (a, b) = (v.cst("a"), v.cst("b"));
    let (x, u, z, w) = (v.var("X"), v.var("U"), v.var("Z"), v.var("W"));
    let tcs = TcSet::new(vec![
        TcStatement::new(Atom::new(p, vec![Term::Cst(a), Term::Cst(b)]), vec![]),
        TcStatement::new(Atom::new(p, vec![Term::Cst(b), Term::Var(z)]), vec![]),
        TcStatement::new(Atom::new(t, vec![Term::Var(w)]), vec![]),
    ]);
    let constraints =
        magik_completeness::ConstraintSet::new(vec![magik_completeness::FiniteDomain {
            pred: t,
            column: 0,
            values: [a, b].into_iter().collect(),
        }]);
    // Complete by case analysis (X = a folds, X = b is guaranteed).
    let q = Query::boolean(
        v.sym("q"),
        vec![
            Atom::new(p, vec![Term::Var(x), Term::Var(u)]),
            Atom::new(p, vec![Term::Cst(a), Term::Cst(b)]),
            Atom::new(t, vec![Term::Var(x)]),
        ],
    );
    assert!(magik_completeness::is_complete_under(
        &q,
        &tcs,
        &constraints
    ));
    let m = magik_completeness::mcg_under(&q, &tcs, &constraints).unwrap();
    assert!(m.same_as(&q), "a complete query is its own MCG");
}

use magik_completeness::is_mci;

#[test]
fn mcis_of_nonminimal_query_misses_two_atom_mci() {
    let mut v = Vocabulary::new();
    let p = v.pred("p", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let (a, b) = (v.cst("a"), v.cst("b"));
    // C1 = Compl(p(X,a); p(X,b)), C2 = Compl(p(X,b); p(X,a))
    let tcs = TcSet::new(vec![
        TcStatement::new(
            Atom::new(p, vec![Term::Var(x), Term::Cst(a)]),
            vec![Atom::new(p, vec![Term::Var(x), Term::Cst(b)])],
        ),
        TcStatement::new(
            Atom::new(p, vec![Term::Var(x), Term::Cst(b)]),
            vec![Atom::new(p, vec![Term::Var(x), Term::Cst(a)])],
        ),
    ]);
    // Non-minimal q(X) <- p(X,Y), p(X,Z)  (core is p(X,Y)).
    let q = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![
            Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(p, vec![Term::Var(x), Term::Var(z)]),
        ],
    );
    // gamma = {Y->a, Z->b}: an instantiation of q.
    let gamma = Substitution::from_pairs([(y, Term::Cst(a)), (z, Term::Cst(b))]);
    let cand = gamma.apply_query(&q);
    assert!(is_complete(&cand, &tcs), "candidate is complete");
    assert!(is_contained_in(&cand, &q), "candidate is a specialization");
    // Its proper generalizations among instantiations are incomplete:
    let g1 = Substitution::from_pairs([(y, Term::Cst(a))]).apply_query(&q);
    assert!(!is_complete(&g1, &tcs));
    let results = mcis(&q, &tcs, &mut v);
    eprintln!("mcis count = {}", results.len());
    assert!(
        results.iter().any(|m| is_contained_in(&cand, m)),
        "complete instantiation of q not covered by any reported MCI"
    );
    assert!(
        is_mci(&cand, &q, &tcs, &mut v),
        "cand is an MCI of q per Definition 19"
    );
}
