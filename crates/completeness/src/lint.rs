//! Statement-set linting: authoring diagnostics for TCS sets.
//!
//! Completeness metadata is hand-written in practice (the MAGIK demo had
//! administrators enter statements), so a reproduction aimed at real use
//! needs authoring feedback. The lints here are all *semantic*:
//!
//! * **subsumed statements** — `C₂` is redundant when another statement
//!   `C₁` guarantees everything `C₂` does, i.e. the associated query of
//!   `C₂` is contained in that of `C₁` (and both constrain the same
//!   relation);
//! * **duplicate statements** — syntactic duplicates up to variable
//!   renaming (a special case of mutual subsumption, reported
//!   separately because the fix differs);
//! * **self-conditioned statements** — the condition mentions the head
//!   relation, which makes the statement fire only when the very data it
//!   guarantees is already (ideally) present; legal, but a frequent
//!   authoring accident and the source of the Theorem 17 unboundedness;
//! * **unguaranteeable conditions** — the condition mentions a relation
//!   that no statement guarantees, so specializations produced through
//!   this statement can never be completed (the Table 1 trap: `class`
//!   heads no statement).

use std::fmt;

use magik_relalg::{is_contained_in, DisplayWith, Pred, Vocabulary};

use crate::tcs::TcSet;

/// One diagnostic about a statement set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// Statement `subsumed` is implied by statement `by`.
    Subsumed {
        /// Index of the redundant statement.
        subsumed: usize,
        /// Index of the statement that implies it.
        by: usize,
    },
    /// Two statements are equivalent (mutual subsumption).
    Duplicate {
        /// Index of the earlier statement.
        first: usize,
        /// Index of the later, duplicate statement.
        second: usize,
    },
    /// The statement's condition mentions its own head relation.
    SelfConditioned {
        /// Index of the statement.
        statement: usize,
    },
    /// The statement's condition mentions a relation that heads no
    /// statement, so the specialization search can never discharge it.
    UnguaranteeableCondition {
        /// Index of the statement.
        statement: usize,
        /// The unguaranteed condition relation.
        pred: Pred,
    },
}

impl Lint {
    /// Renders the lint with names resolved.
    pub fn render(&self, tcs: &TcSet, vocab: &Vocabulary) -> String {
        match self {
            Lint::Subsumed { subsumed, by } => format!(
                "statement [{subsumed}] `{}` is subsumed by [{by}] `{}`",
                tcs.statements()[*subsumed].display(vocab),
                tcs.statements()[*by].display(vocab),
            ),
            Lint::Duplicate { first, second } => format!(
                "statement [{second}] duplicates [{first}] `{}`",
                tcs.statements()[*first].display(vocab),
            ),
            Lint::SelfConditioned { statement } => format!(
                "statement [{statement}] `{}` conditions on its own relation: its guarantee \
                 never bottoms out (maximal specializations may not exist)",
                tcs.statements()[*statement].display(vocab),
            ),
            Lint::UnguaranteeableCondition { statement, pred } => format!(
                "statement [{statement}] `{}` conditions on `{}`, which no statement \
                 guarantees: specializations through it can never be completed",
                tcs.statements()[*statement].display(vocab),
                vocab.pred_name(*pred),
            ),
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::Subsumed { subsumed, by } => {
                write!(f, "statement {subsumed} subsumed by {by}")
            }
            Lint::Duplicate { first, second } => {
                write!(f, "statement {second} duplicates {first}")
            }
            Lint::SelfConditioned { statement } => {
                write!(f, "statement {statement} conditions on its own relation")
            }
            Lint::UnguaranteeableCondition { statement, pred } => write!(
                f,
                "statement {statement} conditions on unguaranteed relation #{}",
                pred.index()
            ),
        }
    }
}

/// Runs all lints over a statement set.
pub fn lint(tcs: &TcSet) -> Vec<Lint> {
    let mut out = Vec::new();
    let statements = tcs.statements();
    let queries: Vec<_> = statements
        .iter()
        .map(crate::tcs::TcStatement::associated_query)
        .collect();

    // Subsumption and duplicates: C_j redundant if Q_{C_j} ⊑ Q_{C_i}.
    // Containment is NP-hard in general and the loop asks for most
    // ordered pairs twice (the (j, i) probe and the (i, j) mutuality
    // probe of the transposed iteration), so verdicts are memoized.
    let mut memo: std::collections::HashMap<(usize, usize), bool> =
        std::collections::HashMap::new();
    for j in 0..statements.len() {
        for i in 0..statements.len() {
            if i == j || statements[i].head.pred != statements[j].head.pred {
                continue;
            }
            let mut contained = |a: usize, b: usize| {
                *memo
                    .entry((a, b))
                    .or_insert_with(|| is_contained_in(&queries[a], &queries[b]))
            };
            if contained(j, i) {
                if i < j && contained(i, j) {
                    out.push(Lint::Duplicate {
                        first: i,
                        second: j,
                    });
                    break;
                }
                if !contained(i, j) {
                    out.push(Lint::Subsumed { subsumed: j, by: i });
                    break;
                }
            }
        }
    }

    // Self-conditioning and unguaranteeable conditions.
    let head_preds: std::collections::BTreeSet<Pred> =
        statements.iter().map(|c| c.head.pred).collect();
    for (si, c) in statements.iter().enumerate() {
        if c.condition.iter().any(|g| g.pred == c.head.pred) {
            out.push(Lint::SelfConditioned { statement: si });
        }
        for g in &c.condition {
            if !head_preds.contains(&g.pred) {
                out.push(Lint::UnguaranteeableCondition {
                    statement: si,
                    pred: g.pred,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcs::TcStatement;
    use crate::testutil::{flight, school_tcs, table1};
    use magik_relalg::{Atom, Term};

    #[test]
    fn clean_set_produces_no_subsumption_lints() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let lints = lint(&tcs);
        assert!(
            lints
                .iter()
                .all(|l| !matches!(l, Lint::Subsumed { .. } | Lint::Duplicate { .. })),
            "{lints:?}"
        );
    }

    #[test]
    fn detects_subsumed_statement() {
        // Compl(p(X, Y); true) subsumes Compl(p(X, b); q(X)).
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let q = v.pred("q", 1);
        let (x, y) = (v.var("X"), v.var("Y"));
        let b = v.cst("b");
        let tcs = TcSet::new(vec![
            TcStatement::new(Atom::new(p, vec![Term::Var(x), Term::Var(y)]), vec![]),
            TcStatement::new(
                Atom::new(p, vec![Term::Var(x), Term::Cst(b)]),
                vec![Atom::new(q, vec![Term::Var(x)])],
            ),
        ]);
        let lints = lint(&tcs);
        assert!(lints.contains(&Lint::Subsumed { subsumed: 1, by: 0 }));
        // Rendering resolves names.
        let rendered = lints[0].render(&tcs, &v);
        assert!(rendered.contains("subsumed"));
        assert!(rendered.contains("p(X, Y)"));
    }

    #[test]
    fn detects_duplicates_up_to_renaming() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let (x, y, u, w) = (v.var("X"), v.var("Y"), v.var("U"), v.var("W"));
        let tcs = TcSet::new(vec![
            TcStatement::new(Atom::new(p, vec![Term::Var(x), Term::Var(y)]), vec![]),
            TcStatement::new(Atom::new(p, vec![Term::Var(u), Term::Var(w)]), vec![]),
        ]);
        let lints = lint(&tcs);
        assert!(lints.contains(&Lint::Duplicate {
            first: 0,
            second: 1
        }));
        // Only reported once, on the later statement.
        assert_eq!(
            lints
                .iter()
                .filter(|l| matches!(l, Lint::Duplicate { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn detects_self_conditioning_on_the_flight_statement() {
        let mut v = Vocabulary::new();
        let (tcs, _) = flight(&mut v);
        let lints = lint(&tcs);
        assert!(lints.contains(&Lint::SelfConditioned { statement: 0 }));
    }

    #[test]
    fn detects_the_table1_trap() {
        // class heads no statement: both class-conditioned pupil
        // statements are flagged.
        let mut v = Vocabulary::new();
        let (tcs, _) = table1(&mut v);
        let class = v.pred("class", 4);
        let flagged: Vec<_> = lint(&tcs)
            .into_iter()
            .filter(|l| matches!(l, Lint::UnguaranteeableCondition { pred, .. } if *pred == class))
            .collect();
        assert_eq!(flagged.len(), 2);
    }

    #[test]
    fn satisfiable_variant_has_no_unguaranteeable_conditions() {
        let mut v = Vocabulary::new();
        let (mut tcs, _) = table1(&mut v);
        let class = v.pred("class", 4);
        let (c, s, l, t) = (v.var("C"), v.var("S"), v.var("L"), v.var("T"));
        tcs.push(TcStatement::new(
            Atom::new(
                class,
                vec![Term::Var(c), Term::Var(s), Term::Var(l), Term::Var(t)],
            ),
            vec![],
        ));
        assert!(lint(&tcs)
            .iter()
            .all(|l| !matches!(l, Lint::UnguaranteeableCondition { .. })));
    }
}
