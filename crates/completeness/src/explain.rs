//! Explanations: *why* is a query complete or incomplete?
//!
//! The MAGIK demonstration tool's selling point was explaining its
//! verdicts: for each query atom, which statement guarantees it (and via
//! which condition match), or the fact that none does. This module
//! computes that provenance by re-running the Theorem 3 check with
//! witnesses recorded, and renders it for humans.

use std::collections::HashMap;
use std::fmt::Write as _;

use magik_relalg::{
    canonical_database, freeze_atom, freeze_term, homomorphisms, unfreeze_fact, Atom, Cst,
    DisplayWith, Fact, Instance, Query, Vocabulary,
};

use crate::tcs::TcSet;

/// Why one body atom is guaranteed to be available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuaranteeWitness {
    /// Index of the covering statement in the [`TcSet`].
    pub statement: usize,
    /// The condition atoms of that statement, instantiated by the witness
    /// homomorphism (unfrozen back into query terms). Empty for
    /// unconditional statements.
    pub condition: Vec<Atom>,
}

/// The per-atom verdicts of one completeness check.
#[derive(Debug, Clone)]
pub struct CheckExplanation {
    /// The overall verdict (`C ⊨ Compl(Q)`).
    pub complete: bool,
    /// For each body atom, in body order: a witness if the atom is
    /// guaranteed, `None` otherwise.
    pub atoms: Vec<(Atom, Option<GuaranteeWitness>)>,
}

impl CheckExplanation {
    /// The body atoms no statement guarantees.
    pub fn unguaranteed(&self) -> impl Iterator<Item = &Atom> {
        self.atoms
            .iter()
            .filter(|(_, w)| w.is_none())
            .map(|(a, _)| a)
    }
}

/// Runs the Theorem 3 check and records, for every guaranteed body atom,
/// a covering statement and its instantiated condition.
pub fn explain_check(q: &Query, tcs: &TcSet) -> CheckExplanation {
    let frozen = canonical_database(q);
    // fact -> first witness found.
    let mut witnesses: HashMap<Fact, GuaranteeWitness> = HashMap::new();
    let mut guaranteed = Instance::new();
    for (si, c) in tcs.statements().iter().enumerate() {
        let assoc = c.associated_query();
        for hom in homomorphisms(&assoc.body, &frozen) {
            let head = hom.apply_atom(&c.head);
            let Some(fact) = head.to_fact() else {
                // Homomorphisms over a ground instance are ground.
                continue;
            };
            guaranteed.insert(fact.clone());
            witnesses.entry(fact).or_insert_with(|| GuaranteeWitness {
                statement: si,
                condition: c
                    .condition
                    .iter()
                    .map(|g| {
                        let image = hom.apply_atom(g);
                        // Unfreeze so the witness reads in query terms.
                        magik_relalg::unfreeze_atom(&image)
                    })
                    .collect(),
            });
        }
    }
    let target: Vec<Cst> = q.head.iter().map(|&t| freeze_term(t)).collect();
    let complete = magik_relalg::has_answer(q, &guaranteed, &target);
    let atoms = q
        .body
        .iter()
        .map(|a| {
            let witness = witnesses.get(&freeze_atom(a)).cloned();
            (a.clone(), witness)
        })
        .collect();
    CheckExplanation { complete, atoms }
}

/// Renders an explanation as indented text.
pub fn render_explanation(
    q: &Query,
    tcs: &TcSet,
    e: &CheckExplanation,
    vocab: &Vocabulary,
) -> String {
    render_explanation_with_locations(q, tcs, e, vocab, |_| None)
}

/// Like [`render_explanation`], but each witnessing statement is cited
/// with its source location: `locate(i)` maps a statement index to a
/// short location string (e.g. `line 5`) when the statement came from a
/// parsed document. Statements without a location render as before.
pub fn render_explanation_with_locations(
    q: &Query,
    tcs: &TcSet,
    e: &CheckExplanation,
    vocab: &Vocabulary,
    locate: impl Fn(usize) -> Option<String>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", q.display(vocab));
    for (atom, witness) in &e.atoms {
        match witness {
            Some(w) => {
                let _ = write!(
                    out,
                    "  + {}  guaranteed by [{}] {}",
                    atom.display(vocab),
                    w.statement,
                    tcs.statements()[w.statement].display(vocab)
                );
                if let Some(loc) = locate(w.statement) {
                    let _ = write!(out, " ({loc})");
                }
                if !w.condition.is_empty() {
                    let conds: Vec<String> = w
                        .condition
                        .iter()
                        .map(|c| c.display(vocab).to_string())
                        .collect();
                    let _ = write!(out, "\n      condition matched on {}", conds.join(", "));
                }
                out.push('\n');
            }
            None => {
                let _ = writeln!(
                    out,
                    "  - {}  not guaranteed by any statement",
                    atom.display(vocab)
                );
            }
        }
    }
    if e.complete {
        let _ = writeln!(out, "  => COMPLETE");
        if e.unguaranteed().next().is_some() {
            let _ = writeln!(
                out,
                "     (unguaranteed atoms are redundant: the query folds onto its guaranteed part)"
            );
        }
    } else {
        let missing: Vec<String> = e
            .unguaranteed()
            .map(|a| a.display(vocab).to_string())
            .collect();
        let _ = writeln!(
            out,
            "  => INCOMPLETE: answers may be missing because of {}",
            missing.join(", ")
        );
    }
    out
}

/// A concrete counterexample for an incomplete query: an incomplete
/// database satisfying all statements on which the query loses the
/// frozen head answer. Returns `None` when the query is complete.
pub fn counterexample(q: &Query, tcs: &TcSet) -> Option<crate::semantics::IncompleteDatabase> {
    let ideal = canonical_database(q);
    let db = crate::semantics::IncompleteDatabase::minimal_completion(ideal, tcs);
    let target: Vec<Cst> = q.head.iter().map(|&t| freeze_term(t)).collect();
    let lost = !magik_relalg::has_answer(q, db.available(), &target);
    lost.then_some(db)
}

/// Renders a counterexample: the ideal and available states and the lost
/// answer.
pub fn render_counterexample(
    q: &Query,
    db: &crate::semantics::IncompleteDatabase,
    vocab: &Vocabulary,
) -> String {
    let ideal_facts: Vec<String> = db
        .ideal()
        .iter_facts()
        .map(|f| unfreeze_fact(&f).display(vocab).to_string())
        .collect();
    let avail_facts: Vec<String> = db
        .available()
        .iter_facts()
        .map(|f| unfreeze_fact(&f).display(vocab).to_string())
        .collect();
    let target: Vec<Cst> = q.head.iter().map(|&t| freeze_term(t)).collect();
    format!(
        "counterexample (frozen query variables act as unknown constants):\n  \
         ideal state:     {{{}}}\n  \
         available state: {{{}}}\n  \
         lost answer:     {}\n",
        ideal_facts.join(", "),
        avail_facts.join(", "),
        target.display(vocab)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::is_complete;
    use crate::testutil::{flight, q_pbl, q_ppb, school_tcs};
    use magik_relalg::Term;

    #[test]
    fn explains_the_complete_running_example() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_ppb(&mut v);
        let e = explain_check(&q, &tcs);
        assert!(e.complete);
        assert_eq!(e.unguaranteed().count(), 0);
        // pupil is covered by statement 1 (C_pb) with the school condition.
        let (_, w) = &e.atoms[0];
        let w = w.as_ref().unwrap();
        assert_eq!(w.statement, 1);
        assert_eq!(w.condition.len(), 1);
        let school = v.pred("school", 3);
        assert_eq!(w.condition[0].pred, school);
        // The condition instance mentions the query's school constant.
        assert!(w.condition[0].args.contains(&Term::Cst(v.cst("merano"))));
        // school is covered by statement 0 (C_sp), unconditionally.
        let (_, w2) = &e.atoms[1];
        assert_eq!(w2.as_ref().unwrap().statement, 0);
        assert!(w2.as_ref().unwrap().condition.is_empty());
    }

    #[test]
    fn explains_the_incomplete_running_example() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let e = explain_check(&q, &tcs);
        assert!(!e.complete);
        let missing: Vec<_> = e.unguaranteed().collect();
        assert_eq!(missing.len(), 1);
        let learns = v.pred("learns", 2);
        assert_eq!(missing[0].pred, learns);
        let rendered = render_explanation(&q, &tcs, &e, &v);
        assert!(rendered.contains("- learns(N, L)  not guaranteed"));
        assert!(rendered.contains("INCOMPLETE"));
    }

    #[test]
    fn complete_nonminimal_query_reports_redundant_atoms() {
        // Q(X) <- r(X, a), r(X, Y) with Compl(r(X, a); true): complete,
        // but r(X, Y) itself is unguaranteed (it is redundant).
        let mut v = Vocabulary::new();
        let r = v.pred("r", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let a = v.cst("a");
        let tcs = TcSet::new(vec![crate::tcs::TcStatement::new(
            Atom::new(r, vec![Term::Var(x), Term::Cst(a)]),
            vec![],
        )]);
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(r, vec![Term::Var(x), Term::Cst(a)]),
                Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
            ],
        );
        assert!(is_complete(&q, &tcs));
        let e = explain_check(&q, &tcs);
        assert!(e.complete);
        assert_eq!(e.unguaranteed().count(), 1);
        let rendered = render_explanation(&q, &tcs, &e, &v);
        assert!(rendered.contains("redundant"));
    }

    #[test]
    fn rendered_witnesses_cite_statement_locations() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_ppb(&mut v);
        let e = explain_check(&q, &tcs);
        let rendered = render_explanation_with_locations(&q, &tcs, &e, &v, |i| {
            Some(format!("line {}", i + 4))
        });
        // Statement 1 (C_pb) covers pupil, statement 0 (C_sp) covers school.
        assert!(rendered.contains("(line 5)"), "{rendered}");
        assert!(rendered.contains("(line 4)"), "{rendered}");
        // The plain renderer is the no-location specialization.
        assert_eq!(
            render_explanation(&q, &tcs, &e, &v),
            render_explanation_with_locations(&q, &tcs, &e, &v, |_| None)
        );
    }

    #[test]
    fn counterexample_for_incomplete_queries() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let db = counterexample(&q, &tcs).expect("incomplete query has a counterexample");
        assert!(db.satisfies_all(&tcs));
        assert!(!db.query_complete(&q).unwrap());
        let rendered = render_counterexample(&q, &db, &v);
        assert!(rendered.contains("lost answer"));
        assert!(rendered.contains("N'"));
    }

    #[test]
    fn no_counterexample_for_complete_queries() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_ppb(&mut v);
        assert!(counterexample(&q, &tcs).is_none());
    }

    #[test]
    fn flight_explanation_shows_the_cycle_dependency() {
        let mut v = Vocabulary::new();
        let (tcs, q) = flight(&mut v);
        let e = explain_check(&q, &tcs);
        assert!(!e.complete);
        // conn(X, Y) is unguaranteed: its condition needs another hop.
        assert_eq!(e.unguaranteed().count(), 1);
        // The self-loop IS guaranteed, with the condition matched on the
        // loop itself.
        let conn = v.pred("conn", 2);
        let x = v.var("X");
        let loop_q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(conn, vec![Term::Var(x), Term::Var(x)])],
        );
        let e2 = explain_check(&loop_q, &tcs);
        assert!(e2.complete);
        let w = e2.atoms[0].1.as_ref().unwrap();
        assert_eq!(w.condition.len(), 1);
        assert_eq!(w.condition[0].pred, conn);
    }
}
