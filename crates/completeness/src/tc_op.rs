//! The `T_C` operator (equation (1) of the paper), in two implementations.
//!
//! `T_C(D) = ⋃_{C ∈ C} {R(t̄) | t̄ ∈ Q_C(D)}` maps a database instance to
//! the part of it that the statements guarantee to be available. It is the
//! workhorse of completeness checking (Theorem 3) and of the `G_C`
//! generalization operator.
//!
//! * [`tc_apply`] evaluates each associated query `Q_C` directly on the
//!   relational engine;
//! * [`tc_apply_datalog`] uses the Section 5 encoding — `Rⁱ` facts and
//!   `Rᵃ ← Rⁱ, Gⁱ` rules — on the Datalog engine (the paper ran this on
//!   dlv).
//!
//! Both compute the same function; property tests assert the agreement.

use std::collections::BTreeMap;

use magik_datalog::{Program, Rule};
use magik_relalg::{answers, Atom, Fact, Instance, Pred, Vocabulary};

use crate::tcs::TcSet;

/// Applies `T_C` once to `db` (direct implementation).
pub fn tc_apply(tcs: &TcSet, db: &Instance) -> Instance {
    let mut out = Instance::new();
    for c in tcs.statements() {
        let q = c.associated_query();
        let tuples = answers(&q, db).expect("associated queries are safe");
        for t in tuples {
            out.insert(Fact::new(c.head.pred, t));
        }
    }
    out
}

/// The Section 5 Datalog encoding of a TCS set.
///
/// Returns the program (`Rᵃ(s̄) ← Rⁱ(s̄), Gⁱ` per statement) together with
/// the predicate renamings `R → Rⁱ` and `R → Rᵃ`. The relation name of
/// `Rⁱ`/`Rᵃ` is derived by suffixing `@i`/`@a`.
pub fn tc_encoding(
    tcs: &TcSet,
    vocab: &mut Vocabulary,
) -> (Program, BTreeMap<Pred, Pred>, BTreeMap<Pred, Pred>) {
    let mut ideal: BTreeMap<Pred, Pred> = BTreeMap::new();
    let mut avail: BTreeMap<Pred, Pred> = BTreeMap::new();
    let variant = |vocab: &mut Vocabulary, p: Pred, suffix: &str| {
        let name = format!("{}@{suffix}", vocab.pred_name(p));
        vocab.pred(&name, vocab.arity(p))
    };
    for p in tcs.signature() {
        let pi = variant(vocab, p, "i");
        let pa = variant(vocab, p, "a");
        ideal.insert(p, pi);
        avail.insert(p, pa);
    }
    let rules = tcs
        .statements()
        .iter()
        .map(|c| {
            let head = Atom::new(avail[&c.head.pred], c.head.args.clone());
            let mut body = vec![Atom::new(ideal[&c.head.pred], c.head.args.clone())];
            body.extend(
                c.condition
                    .iter()
                    .map(|a| Atom::new(ideal[&a.pred], a.args.clone())),
            );
            Rule::new(head, body)
        })
        .collect();
    let program = Program::new(rules).expect("TC rules are range-restricted by construction");
    (program, ideal, avail)
}

/// Applies `T_C` once to `db` via the Datalog encoding.
///
/// Relations of `db` outside the signature of `tcs` cannot be produced by
/// any statement and are simply absent from the result, exactly as with
/// [`tc_apply`].
pub fn tc_apply_datalog(tcs: &TcSet, db: &Instance, vocab: &mut Vocabulary) -> Instance {
    let (program, ideal, avail) = tc_encoding(tcs, vocab);
    // Load D as R^i facts (only relations in the signature matter).
    let mut edb = Instance::new();
    for fact in db.iter_facts() {
        if let Some(&pi) = ideal.get(&fact.pred) {
            edb.insert(Fact::new(pi, fact.args));
        }
    }
    let derived = program.immediate_consequences(&edb);
    // Read off R^a facts back into the original vocabulary.
    let back: BTreeMap<Pred, Pred> = avail.iter().map(|(&r, &ra)| (ra, r)).collect();
    let mut out = Instance::new();
    for fact in derived.iter_facts() {
        let r = back[&fact.pred];
        out.insert(Fact::new(r, fact.args));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::school_tcs;
    use magik_relalg::DisplayWith;

    fn fact(v: &mut Vocabulary, name: &str, arity: usize, args: &[&str]) -> Fact {
        let p = v.pred(name, arity);
        Fact::new(p, args.iter().map(|s| v.cst(s)).collect())
    }

    fn school_instance(v: &mut Vocabulary) -> Instance {
        let mut db = Instance::new();
        db.insert(fact(v, "school", 3, &["goethe", "primary", "merano"]));
        db.insert(fact(v, "school", 3, &["dante", "middle", "bolzano"]));
        db.insert(fact(v, "pupil", 3, &["john", "c1", "goethe"]));
        db.insert(fact(v, "pupil", 3, &["luca", "c2", "dante"]));
        db.insert(fact(v, "learns", 2, &["john", "english"]));
        db.insert(fact(v, "learns", 2, &["john", "german"]));
        db
    }

    #[test]
    fn tc_selects_guaranteed_facts() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let db = school_instance(&mut v);
        let out = tc_apply(&tcs, &db);
        // C_sp keeps the primary school only.
        assert!(out.contains(&fact(&mut v, "school", 3, &["goethe", "primary", "merano"])));
        assert!(!out.contains(&fact(&mut v, "school", 3, &["dante", "middle", "bolzano"])));
        // C_pb keeps pupils of merano schools only.
        assert!(out.contains(&fact(&mut v, "pupil", 3, &["john", "c1", "goethe"])));
        assert!(!out.contains(&fact(&mut v, "pupil", 3, &["luca", "c2", "dante"])));
        // C_enp keeps English learners at primary schools only.
        assert!(out.contains(&fact(&mut v, "learns", 2, &["john", "english"])));
        assert!(!out.contains(&fact(&mut v, "learns", 2, &["john", "german"])));
    }

    #[test]
    fn tc_is_contractive_and_monotone() {
        // Proposition 2: T_C(D) ⊆ D; and D ⊆ D' ⟹ T_C(D) ⊆ T_C(D').
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let db = school_instance(&mut v);
        let small = tc_apply(&tcs, &db);
        assert!(small.is_subset_of(&db));
        let mut bigger = db.clone();
        bigger.insert(fact(&mut v, "school", 3, &["verdi", "primary", "bolzano"]));
        let big = tc_apply(&tcs, &bigger);
        assert!(small.is_subset_of(&big));
    }

    #[test]
    fn datalog_encoding_matches_direct_implementation() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let db = school_instance(&mut v);
        let direct = tc_apply(&tcs, &db);
        let datalog = tc_apply_datalog(&tcs, &db, &mut v);
        assert_eq!(direct, datalog);
    }

    #[test]
    fn encoding_produces_expected_rules() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let (program, ideal, avail) = tc_encoding(&tcs, &mut v);
        assert_eq!(program.rules().len(), 3);
        // The C_pb rule reads: pupil@a(N, C, S) :- pupil@i(N, C, S), school@i(S, T, merano).
        assert_eq!(
            program.rules()[1].display(&v).to_string(),
            "pupil@a(N, C, S) :- pupil@i(N, C, S), school@i(S, T, merano)."
        );
        let pupil = v.pred("pupil", 3);
        assert_eq!(v.pred_name(ideal[&pupil]), "pupil@i");
        assert_eq!(v.pred_name(avail[&pupil]), "pupil@a");
    }

    #[test]
    fn relations_without_statements_are_dropped() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let mut db = Instance::new();
        db.insert(fact(&mut v, "unrelated", 1, &["x"]));
        assert!(tc_apply(&tcs, &db).is_empty());
        assert!(tc_apply_datalog(&tcs, &db, &mut v).is_empty());
    }

    #[test]
    fn empty_set_maps_everything_to_empty() {
        let mut v = Vocabulary::new();
        let db = school_instance(&mut v);
        let tcs = TcSet::default();
        assert!(tc_apply(&tcs, &db).is_empty());
    }
}
