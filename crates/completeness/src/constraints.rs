//! Finite-domain constraints — the paper's future-work extension,
//! realized in the authors' follow-up work (Nutt, Paramonov, Savković,
//! *Implementing query completeness reasoning*, CIKM 2015) via
//! case-splitting in an ASP solver.
//!
//! A **finite-domain constraint** (FDC) declares that a column of a
//! relation only takes values from a fixed finite set in every ideal
//! instance — e.g. *"the day type of a class is `halfDay` or `fullDay`"*.
//! Such knowledge enables completeness inferences that are impossible
//! otherwise: one statement per domain value can jointly cover the whole
//! column, even though no single statement covers the generic case.
//!
//! Reasoning is by case analysis (the Rust analogue of the CIKM'15
//! disjunctive-ASP encoding): a variable of the query that occurs in a
//! constrained column can only denote one of the finitely many values, so
//! the canonical counterexample of Theorem 3 splits into the family of its
//! *domain instantiations*. The query is complete under the constraints
//! iff every member of the family passes the classical check:
//!
//! > `C ∪ F ⊨ Compl(Q)`  iff  for every domain instantiation δ of `Q`,
//! > `C ⊨ Compl(δQ)` in the sense of Theorem 3.
//!
//! The [`g_op_under`] / [`mcg_under`] variants lift the generalization
//! machinery the same way: an atom survives `G_C` iff it is guaranteed in
//! **every** case, which keeps the operator monotone, so Algorithm 1 and
//! its least-fixed-point argument carry over unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use magik_relalg::{
    canonical_database, freeze_atom, freeze_term, Cst, DisplayWith, Fact, Instance, Pred, Query,
    Substitution, Term, Var, Vocabulary,
};

use crate::check::is_complete;
use crate::tc_op::tc_apply;
use crate::tcs::TcSet;

/// A finite-domain constraint: column `column` of relation `pred` only
/// takes values from `values` in every (valid) ideal instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteDomain {
    /// The constrained relation.
    pub pred: Pred,
    /// The constrained column (0-based).
    pub column: usize,
    /// The allowed values.
    pub values: BTreeSet<Cst>,
}

impl DisplayWith for FiniteDomain {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "domain {}[{}] in {{",
            vocab.pred_name(self.pred),
            self.column
        )?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            v.fmt_with(vocab, f)?;
        }
        f.write_str("}")
    }
}

/// A violation of a constraint set by a concrete instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainViolation {
    /// The offending fact.
    pub fact: Fact,
    /// The violated column.
    pub column: usize,
}

/// A set of integrity constraints: finite domains and keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    domains: Vec<FiniteDomain>,
    keys: Vec<crate::keys::Key>,
}

impl ConstraintSet {
    /// Creates a set from finite-domain constraints only.
    pub fn new(domains: Vec<FiniteDomain>) -> Self {
        ConstraintSet {
            domains,
            keys: Vec::new(),
        }
    }

    /// Creates a set from domains and keys.
    pub fn with_keys(domains: Vec<FiniteDomain>, keys: Vec<crate::keys::Key>) -> Self {
        ConstraintSet { domains, keys }
    }

    /// The finite-domain constraints.
    pub fn domains(&self) -> &[FiniteDomain] {
        &self.domains
    }

    /// The key constraints.
    pub fn keys(&self) -> &[crate::keys::Key] {
        &self.keys
    }

    /// Adds a finite-domain constraint.
    pub fn push(&mut self, d: FiniteDomain) {
        self.domains.push(d);
    }

    /// Adds a key constraint.
    pub fn push_key(&mut self, k: crate::keys::Key) {
        self.keys.push(k);
    }

    /// `true` iff no constraint is declared.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty() && self.keys.is_empty()
    }

    /// The allowed values of `(pred, column)`: the intersection of all
    /// constraints on that position, or `None` when unconstrained.
    pub fn allowed(&self, pred: Pred, column: usize) -> Option<BTreeSet<Cst>> {
        let mut result: Option<BTreeSet<Cst>> = None;
        for d in &self.domains {
            if d.pred == pred && d.column == column {
                result = Some(match result {
                    None => d.values.clone(),
                    Some(acc) => acc.intersection(&d.values).copied().collect(),
                });
            }
        }
        result
    }

    /// Checks a concrete instance; returns the first violation, if any.
    pub fn check_instance(&self, db: &Instance) -> Result<(), DomainViolation> {
        for fact in db.iter_facts() {
            for (column, &value) in fact.args.iter().enumerate() {
                if let Some(allowed) = self.allowed(fact.pred, column) {
                    if !allowed.contains(&value) {
                        return Err(DomainViolation { fact, column });
                    }
                }
            }
        }
        Ok(())
    }

    /// For every variable of `q` occurring in a constrained column, the
    /// set of values it may denote (intersected across occurrences).
    /// `None` for a variable means "unconstrained".
    ///
    /// Returns an error ([`UnsatisfiableQuery`]) if a constant of `q`
    /// violates a domain or a variable's allowed set is empty — the query
    /// then has no answers over any valid ideal instance and is trivially
    /// complete.
    pub fn variable_domains(
        &self,
        q: &Query,
    ) -> Result<BTreeMap<Var, BTreeSet<Cst>>, UnsatisfiableQuery> {
        let mut out: BTreeMap<Var, BTreeSet<Cst>> = BTreeMap::new();
        for atom in &q.body {
            for (column, &term) in atom.args.iter().enumerate() {
                let Some(allowed) = self.allowed(atom.pred, column) else {
                    continue;
                };
                match term {
                    Term::Cst(c) => {
                        if !allowed.contains(&c) {
                            return Err(UnsatisfiableQuery);
                        }
                    }
                    Term::Var(v) => {
                        let entry = out.entry(v).or_insert_with(|| allowed.clone());
                        *entry = entry.intersection(&allowed).copied().collect();
                        if entry.is_empty() {
                            return Err(UnsatisfiableQuery);
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl FromIterator<FiniteDomain> for ConstraintSet {
    fn from_iter<I: IntoIterator<Item = FiniteDomain>>(iter: I) -> Self {
        ConstraintSet::new(iter.into_iter().collect())
    }
}

/// Marker: the query violates the constraints syntactically and has no
/// answers over any valid ideal instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsatisfiableQuery;

/// Calls `f` with every domain instantiation of the constrained variables
/// (the identity substitution if there are none). Stops early when `f`
/// returns `false`; the return value says whether all calls returned
/// `true`.
fn for_each_case(
    var_domains: &BTreeMap<Var, BTreeSet<Cst>>,
    f: &mut dyn FnMut(&Substitution) -> bool,
) -> bool {
    let vars: Vec<Var> = var_domains.keys().copied().collect();
    fn rec(
        vars: &[Var],
        var_domains: &BTreeMap<Var, BTreeSet<Cst>>,
        subst: &mut Substitution,
        f: &mut dyn FnMut(&Substitution) -> bool,
    ) -> bool {
        let Some((&v, rest)) = vars.split_first() else {
            return f(subst);
        };
        for &value in &var_domains[&v] {
            subst.bind(v, Term::Cst(value));
            if !rec(rest, var_domains, subst, f) {
                return false;
            }
        }
        true
    }
    rec(&vars, var_domains, &mut Substitution::identity(), f)
}

/// Decides `C ∪ F ⊨ Compl(Q)`: completeness under the statements and the
/// integrity constraints.
///
/// Keys are handled first, by chasing the query with the key EGDs
/// (see [`crate::keys`]); a failed chase means the query is
/// unsatisfiable over consistent ideal instances and therefore trivially
/// complete. Finite domains are then handled by case analysis over the
/// domain instantiations of the chased query.
///
/// With an empty constraint set this coincides with
/// [`is_complete`](crate::is_complete). The number of domain cases is
/// `∏_v |dom(v)|` over the constrained variables — exponential in the
/// worst case, as it must be (the CIKM'15 encoding pays the same price
/// inside the ASP solver).
pub fn is_complete_under(q: &Query, tcs: &TcSet, constraints: &ConstraintSet) -> bool {
    let q = match crate::keys::chase_query(q, constraints.keys()) {
        crate::keys::ChaseOutcome::Chased(chased) => chased,
        // Inconsistent with the keys: no answers to lose.
        crate::keys::ChaseOutcome::Unsatisfiable => return true,
    };
    let var_domains = match constraints.variable_domains(&q) {
        Ok(d) => d,
        // No valid ideal instance satisfies the body: no answers to lose.
        Err(UnsatisfiableQuery) => return true,
    };
    if var_domains.is_empty() {
        return is_complete(&q, tcs);
    }
    for_each_case(&var_domains, &mut |alpha| {
        // Instantiating domain variables can create new key matches
        // (e.g. a variable key column becoming the constant of another
        // atom), so the chase must run again per case.
        match crate::keys::chase_query(&alpha.apply_query(&q), constraints.keys()) {
            crate::keys::ChaseOutcome::Chased(case_q) => is_complete(&case_q, tcs),
            // This case is inconsistent with the keys: vacuously fine.
            crate::keys::ChaseOutcome::Unsatisfiable => true,
        }
    })
}

/// The `G_C` operator under finite-domain constraints: a body atom is
/// kept iff its frozen version is guaranteed by `T_C` in **every** domain
/// instantiation of the query.
pub fn g_op_under(q: &Query, tcs: &TcSet, constraints: &ConstraintSet) -> Query {
    let var_domains = match constraints.variable_domains(q) {
        Ok(d) => d,
        // Unsatisfiable queries are complete as they stand.
        Err(UnsatisfiableQuery) => return q.clone(),
    };
    if var_domains.is_empty() {
        return crate::generalize::g_op(q, tcs);
    }
    // keep[i] stays true while atom i survives every case.
    let mut keep = vec![true; q.body.len()];
    for_each_case(&var_domains, &mut |alpha| {
        let case_q = alpha.apply_query(q);
        let db = canonical_database(&case_q);
        let guaranteed = tc_apply(tcs, &db);
        for (i, atom) in case_q.body.iter().enumerate() {
            if keep[i] && !guaranteed.contains(&freeze_atom(atom)) {
                keep[i] = false;
            }
        }
        true
    });
    let mut i = 0;
    q.subquery(|_| {
        let k = keep[i];
        i += 1;
        k
    })
}

/// Algorithm 1 under integrity constraints: the minimal complete
/// generalization of (the key-chased) `q` wrt `tcs ∪ constraints`, or
/// `None` if no complete generalization exists.
///
/// With keys, the result generalizes the chased query, which is
/// equivalent to `q` over every consistent ideal instance. A chase
/// failure means `q` is unsatisfiable over consistent instances; `q`
/// itself is returned (any query is a complete generalization then).
pub fn mcg_under(q: &Query, tcs: &TcSet, constraints: &ConstraintSet) -> Option<Query> {
    let q = match crate::keys::chase_query(q, constraints.keys()) {
        crate::keys::ChaseOutcome::Chased(chased) => chased,
        crate::keys::ChaseOutcome::Unsatisfiable => return Some(q.clone()),
    };
    // The per-atom case-split operator below is coarser than the
    // completeness test (a query can be complete by *folding* onto its
    // guaranteed part in some case without every atom being guaranteed),
    // so the iteration is guarded by the test itself: a complete query is
    // returned unchanged — it is its own MCG.
    let mut current = q;
    loop {
        if !current.is_safe() {
            return None;
        }
        if is_complete_under(&current, tcs, constraints) {
            return Some(current);
        }
        let next = g_op_under(&current, tcs, constraints);
        // An incomplete query always has an unguaranteed atom in some
        // case (Lemma 9 claim 1, per case), so the operator strictly
        // shrinks here; the guard is a defensive backstop.
        if next.same_as(&current) {
            return None;
        }
        current = next;
    }
}

/// Checks a concrete incomplete database against the domain constraints:
/// both states must be domain-valid. (Key validity of the ideal state is
/// checked separately via [`crate::keys::Key::check_instance`].)
pub fn check_incomplete_database(
    db: &crate::semantics::IncompleteDatabase,
    constraints: &ConstraintSet,
) -> Result<(), DomainViolation> {
    constraints.check_instance(db.ideal())?;
    constraints.check_instance(db.available())
}

/// Sanity helper for Theorem 3 under constraints: the counterexample
/// instances produced by the case analysis, i.e. the domain
/// instantiations of the canonical database (used by tests to validate
/// [`is_complete_under`] against the model theory).
pub fn canonical_case_instances(
    q: &Query,
    constraints: &ConstraintSet,
) -> Result<Vec<(Substitution, Instance)>, UnsatisfiableQuery> {
    let var_domains = constraints.variable_domains(q)?;
    let mut out = Vec::new();
    for_each_case(&var_domains, &mut |alpha| {
        out.push((alpha.clone(), canonical_database(&alpha.apply_query(q))));
        true
    });
    Ok(out)
}

/// The frozen head tuple of a domain instantiation (pairs with
/// [`canonical_case_instances`]).
pub fn case_target(q: &Query, alpha: &Substitution) -> Vec<Cst> {
    q.head
        .iter()
        .map(|&t| freeze_term(alpha.apply_term(t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::IncompleteDatabase;
    use crate::tcs::TcStatement;
    use crate::testutil::table1;
    use magik_relalg::{Atom, Vocabulary};

    /// The CIKM'15-style workload: pupil completeness conditioned on the
    /// class day-type, with the day-type column domain-constrained.
    fn day_workload(v: &mut Vocabulary) -> (TcSet, ConstraintSet, Query) {
        let (mut tcs, _) = table1(v);
        // Make class itself complete so only the day split matters.
        let class = v.pred("class", 4);
        let (c, s, l, t) = (v.var("C"), v.var("S"), v.var("L"), v.var("T"));
        tcs.push(TcStatement::new(
            Atom::new(
                class,
                vec![Term::Var(c), Term::Var(s), Term::Var(l), Term::Var(t)],
            ),
            vec![],
        ));
        let constraints = ConstraintSet::new(vec![FiniteDomain {
            pred: class,
            column: 3,
            values: [v.cst("halfDay"), v.cst("fullDay")].into_iter().collect(),
        }]);
        // q(N) <- pupil(N, C, S), class(C, S, L, D)
        let pupil = v.pred("pupil", 3);
        let (n, d) = (v.var("N"), v.var("D"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(n)],
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                Atom::new(
                    class,
                    vec![Term::Var(c), Term::Var(s), Term::Var(l), Term::Var(d)],
                ),
            ],
        );
        (tcs, constraints, q)
    }

    #[test]
    fn case_split_enables_completeness() {
        // Without the FDC the generic day value matches neither statement;
        // with it, the two conditioned statements jointly cover pupil.
        let mut v = Vocabulary::new();
        let (tcs, constraints, q) = day_workload(&mut v);
        assert!(!is_complete(&q, &tcs));
        assert!(is_complete_under(&q, &tcs, &constraints));
    }

    #[test]
    fn no_constraints_degenerates_to_classic_check() {
        let mut v = Vocabulary::new();
        let (tcs, _, q) = day_workload(&mut v);
        let empty = ConstraintSet::default();
        assert_eq!(is_complete_under(&q, &tcs, &empty), is_complete(&q, &tcs));
    }

    #[test]
    fn constrained_constant_outside_domain_is_trivially_complete() {
        let mut v = Vocabulary::new();
        let (tcs, constraints, q) = day_workload(&mut v);
        // Replace the day variable by a constant outside the domain.
        let d = v.var("D");
        let weekend = v.cst("weekend");
        let bad = Substitution::from_pairs([(d, Term::Cst(weekend))]).apply_query(&q);
        assert!(is_complete_under(&bad, &tcs, &constraints));
        // The classic check would say incomplete (it cannot know that no
        // valid ideal instance has weekend classes).
        assert!(!is_complete(&bad, &tcs));
    }

    #[test]
    fn domains_intersect_across_occurrences() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let (a, b, c) = (v.cst("a"), v.cst("b"), v.cst("c"));
        let constraints = ConstraintSet::new(vec![
            FiniteDomain {
                pred: p,
                column: 0,
                values: [a, b].into_iter().collect(),
            },
            FiniteDomain {
                pred: p,
                column: 1,
                values: [b, c].into_iter().collect(),
            },
        ]);
        let x = v.var("X");
        // p(X, X): X constrained to {a,b} ∩ {b,c} = {b}.
        let q = Query::boolean(
            v.sym("q"),
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(x)])],
        );
        let doms = constraints.variable_domains(&q).unwrap();
        assert_eq!(doms[&x], BTreeSet::from([b]));

        // One statement for the single possible value suffices.
        let tcs = TcSet::new(vec![TcStatement::new(
            Atom::new(p, vec![Term::Cst(b), Term::Cst(b)]),
            vec![],
        )]);
        assert!(is_complete_under(&q, &tcs, &constraints));
        assert!(!is_complete(&q, &tcs));
    }

    #[test]
    fn instance_validation_finds_violations() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let constraints = ConstraintSet::new(vec![FiniteDomain {
            pred: p,
            column: 0,
            values: [v.cst("a")].into_iter().collect(),
        }]);
        let mut ok = Instance::new();
        ok.insert(Fact::new(p, vec![v.cst("a")]));
        assert!(constraints.check_instance(&ok).is_ok());
        let mut bad = ok.clone();
        bad.insert(Fact::new(p, vec![v.cst("z")]));
        let violation = constraints.check_instance(&bad).unwrap_err();
        assert_eq!(violation.column, 0);
        assert_eq!(violation.fact.args[0], v.cst("z"));
    }

    #[test]
    fn soundness_on_concrete_domain_valid_pairs() {
        // Whenever is_complete_under claims completeness, no domain-valid
        // minimal completion loses an answer.
        let mut v = Vocabulary::new();
        let (tcs, constraints, q) = day_workload(&mut v);
        assert!(is_complete_under(&q, &tcs, &constraints));
        // Build several domain-valid ideal states and check.
        for day in ["halfDay", "fullDay"] {
            let mut ideal = Instance::new();
            let class = v.pred("class", 4);
            let pupil = v.pred("pupil", 3);
            ideal.insert(Fact::new(
                class,
                vec![v.cst("c1"), v.cst("s1"), v.cst("english"), v.cst(day)],
            ));
            ideal.insert(Fact::new(
                pupil,
                vec![v.cst("pia"), v.cst("c1"), v.cst("s1")],
            ));
            let db = IncompleteDatabase::minimal_completion(ideal, &tcs);
            assert!(check_incomplete_database(&db, &constraints).is_ok());
            assert!(db.satisfies_all(&tcs));
            assert!(db.query_complete(&q).unwrap(), "day {day}");
        }
    }

    #[test]
    fn mcg_under_constraints_keeps_case_covered_atoms() {
        let mut v = Vocabulary::new();
        let (tcs, constraints, q) = day_workload(&mut v);
        // Under the FDC the query is already complete: MCG = Q itself.
        let m = mcg_under(&q, &tcs, &constraints).unwrap();
        assert!(m.same_as(&q));
        // Without the FDC, the pupil atom is dropped; q(N) becomes unsafe
        // ... actually N occurs only in pupil, so no MCG exists.
        assert_eq!(crate::generalize::mcg(&q, &tcs), None);
    }

    #[test]
    fn mcg_under_drops_uncovered_atoms_per_case() {
        // An atom that fails in just one case must be dropped.
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let r = v.pred("r", 1);
        let (a, b) = (v.cst("a"), v.cst("b"));
        let constraints = ConstraintSet::new(vec![FiniteDomain {
            pred: p,
            column: 0,
            values: [a, b].into_iter().collect(),
        }]);
        // p complete only for a; r complete always.
        let tcs = TcSet::new(vec![
            TcStatement::new(Atom::new(p, vec![Term::Cst(a)]), vec![]),
            TcStatement::new(Atom::new(r, vec![Term::Var(v.var("Z"))]), vec![]),
        ]);
        let x = v.var("X");
        let q = Query::boolean(
            v.sym("q"),
            vec![
                Atom::new(p, vec![Term::Var(x)]),
                Atom::new(r, vec![Term::Var(x)]),
            ],
        );
        assert!(!is_complete_under(&q, &tcs, &constraints));
        let m = mcg_under(&q, &tcs, &constraints).unwrap();
        // p(X) fails the X = b case; r(X) survives (r is unconstrained
        // and unconditionally complete in both cases).
        assert_eq!(m.size(), 1);
        assert_eq!(m.body[0].pred, r);
        assert!(is_complete_under(&m, &tcs, &constraints));
    }

    #[test]
    fn keys_enable_completeness_through_the_chase() {
        // Key on pupil name: a self-join on pupil collapses, making a
        // classically incomplete query complete.
        let mut v = Vocabulary::new();
        let tcs = crate::testutil::school_tcs(&mut v);
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let (n, c, s, s2) = (v.var("N"), v.var("C"), v.var("S"), v.var("S2"));
        let (primary, merano, c1) = (v.cst("primary"), v.cst("merano"), v.cst("c1"));
        // q(N) <- pupil(N,C,S), school(S,primary,merano), pupil(N,c1,S2):
        // the constant class code keeps the second pupil atom from
        // folding onto the first, so classically it is unguaranteed (S2
        // is not tied to a merano school). The key on the pupil name
        // merges the two atoms (C = c1, S2 = S), making the query
        // complete.
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(n)],
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                Atom::new(
                    school,
                    vec![Term::Var(s), Term::Cst(primary), Term::Cst(merano)],
                ),
                Atom::new(pupil, vec![Term::Var(n), Term::Cst(c1), Term::Var(s2)]),
            ],
        );
        assert!(!is_complete(&q, &tcs));
        let constraints = ConstraintSet::with_keys(
            vec![],
            vec![crate::keys::Key {
                pred: pupil,
                columns: vec![0],
            }],
        );
        assert!(is_complete_under(&q, &tcs, &constraints));
        // And the constrained MCG is the chased (3-atom collapsed to
        // 2-atom) query itself.
        let m = mcg_under(&q, &tcs, &constraints).unwrap();
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn key_inconsistent_query_is_trivially_complete() {
        let mut v = Vocabulary::new();
        let tcs = TcSet::default();
        let r = v.pred("r", 2);
        let x = v.var("X");
        let (a, b) = (v.cst("a"), v.cst("b"));
        // r(X, a), r(X, b) with key on column 0: unsatisfiable.
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(r, vec![Term::Var(x), Term::Cst(a)]),
                Atom::new(r, vec![Term::Var(x), Term::Cst(b)]),
            ],
        );
        let constraints = ConstraintSet::with_keys(
            vec![],
            vec![crate::keys::Key {
                pred: r,
                columns: vec![0],
            }],
        );
        assert!(!is_complete(&q, &tcs));
        assert!(is_complete_under(&q, &tcs, &constraints));
        assert!(mcg_under(&q, &tcs, &constraints).is_some());
    }

    #[test]
    fn keys_and_domains_combine() {
        // Key chase first merges the duplicated class atom, then the
        // domain split covers the day type.
        let mut v = Vocabulary::new();
        let (tcs, constraints0, q) = day_workload(&mut v);
        let class = v.pred("class", 4);
        let mut constraints = constraints0.clone();
        constraints.push_key(crate::keys::Key {
            pred: class,
            columns: vec![0, 1],
        });
        // Extend q with a duplicate class atom over fresh variables but
        // the same (C, S) key.
        let (c, s, l2, d2) = (v.var("C"), v.var("S"), v.var("L2"), v.var("D2"));
        let q2 = q.with_atoms([Atom::new(
            class,
            vec![Term::Var(c), Term::Var(s), Term::Var(l2), Term::Var(d2)],
        )]);
        // Without the key, the extra atom's generic day breaks the case
        // split (D2 unconstrained-by-case... it IS domain-constrained, so
        // the case analysis covers it; but without any constraints the
        // query is incomplete).
        assert!(!is_complete(&q2, &tcs));
        assert!(is_complete_under(&q2, &tcs, &constraints));
    }

    #[test]
    fn display_constraint() {
        let mut v = Vocabulary::new();
        let class = v.pred("class", 4);
        let d = FiniteDomain {
            pred: class,
            column: 3,
            values: [v.cst("fullDay"), v.cst("halfDay")].into_iter().collect(),
        };
        assert_eq!(
            d.display(&v).to_string(),
            "domain class[3] in {fullDay, halfDay}"
        );
    }
}
