//! Stable binary encoding of table-completeness statements.
//!
//! Builds on the primitive codec of `magik_relalg::codec` (varints,
//! length-prefixed strings, tagged atoms); a [`TcSet`] is a count-prefixed
//! sequence of statements, each a head atom plus a count-prefixed
//! condition. Decoding validates every predicate and variable against the
//! vocabulary the bytes claim to be relative to and reports failures as
//! [`CodecError`] — never a panic.

use magik_relalg::codec::{decode_atom, encode_atom, put_varint, CodecError, Reader};
use magik_relalg::Vocabulary;

use crate::tcs::{TcSet, TcStatement};

/// Encodes one statement: head atom, then count-prefixed condition atoms.
pub fn encode_statement(c: &TcStatement, out: &mut Vec<u8>) {
    encode_atom(&c.head, out);
    put_varint(out, c.condition.len() as u64);
    for a in &c.condition {
        encode_atom(a, out);
    }
}

/// Decodes one statement, validating all atoms against `vocab`.
pub fn decode_statement(r: &mut Reader<'_>, vocab: &Vocabulary) -> Result<TcStatement, CodecError> {
    let head = decode_atom(r, vocab)?;
    let n = r.count(2)?;
    let mut condition = Vec::with_capacity(n);
    for _ in 0..n {
        condition.push(decode_atom(r, vocab)?);
    }
    Ok(TcStatement::new(head, condition))
}

/// Encodes a TCS set as a count-prefixed statement sequence.
pub fn encode_tcs(tcs: &TcSet, out: &mut Vec<u8>) {
    put_varint(out, tcs.len() as u64);
    for c in tcs.statements() {
        encode_statement(c, out);
    }
}

/// Decodes a TCS set encoded by [`encode_tcs`].
pub fn decode_tcs(r: &mut Reader<'_>, vocab: &Vocabulary) -> Result<TcSet, CodecError> {
    let n = r.count(3)?;
    let mut statements = Vec::with_capacity(n);
    for _ in 0..n {
        statements.push(decode_statement(r, vocab)?);
    }
    Ok(TcSet::new(statements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::{Atom, Term};

    fn sample() -> (Vocabulary, TcSet) {
        let mut v = Vocabulary::new();
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let (n, c, s, t) = (v.var("N"), v.var("C"), v.var("S"), v.var("T"));
        let (primary, merano) = (v.cst("primary"), v.cst("merano"));
        let tcs = TcSet::new(vec![
            TcStatement::new(
                Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Var(t)]),
                vec![],
            ),
            TcStatement::new(
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                vec![Atom::new(
                    school,
                    vec![Term::Var(s), Term::Var(t), Term::Cst(merano)],
                )],
            ),
        ]);
        (v, tcs)
    }

    #[test]
    fn tcs_roundtrips() {
        let (v, tcs) = sample();
        let mut buf = Vec::new();
        encode_tcs(&tcs, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_tcs(&mut r, &v).unwrap();
        assert!(r.is_empty());
        assert_eq!(back, tcs);
    }

    #[test]
    fn truncated_tcs_errors_cleanly() {
        let (v, tcs) = sample();
        let mut buf = Vec::new();
        encode_tcs(&tcs, &mut buf);
        for cut in 0..buf.len() {
            assert!(
                decode_tcs(&mut Reader::new(&buf[..cut]), &v).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn foreign_vocabulary_is_rejected() {
        let (_, tcs) = sample();
        let mut buf = Vec::new();
        encode_tcs(&tcs, &mut buf);
        // A vocabulary that never interned these predicates.
        let empty = Vocabulary::new();
        assert!(decode_tcs(&mut Reader::new(&buf), &empty).is_err());
    }
}
