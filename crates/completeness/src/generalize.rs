//! Query generalization: the `G_C` operator and the MCG (Section 3).
//!
//! `G_C` keeps exactly the body atoms that are guaranteed complete wrt the
//! statement set; iterating it from `Q` descends the subquery preorder and
//! reaches the least fixed point — the **minimal complete generalization**
//! — in at most `|Q|` steps (Proposition 12). If the fixed point is unsafe,
//! no complete generalization exists (Proposition 12(e)).

use magik_relalg::{canonical_database, freeze_atom, Query};

use crate::tc_op::tc_apply;
use crate::tcs::TcSet;

/// Applies the generalization operator `G_C` once: freeze the body, apply
/// `T_C`, and keep only the atoms that survive.
///
/// The result is a subquery of `q` over the same head; it may be unsafe
/// even when `q` is safe (generalized conjunctive queries, Section 3).
pub fn g_op(q: &Query, tcs: &TcSet) -> Query {
    let db = canonical_database(q);
    let kept = tc_apply(tcs, &db);
    q.subquery(|a| kept.contains(&freeze_atom(a)))
}

/// Statistics of an MCG computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McgStats {
    /// Number of `G_C` applications (Proposition 12(c) bounds this by
    /// `|Q| + 1`).
    pub iterations: usize,
    /// Number of body atoms removed in total.
    pub atoms_removed: usize,
}

/// Computes the minimal complete generalization of `q` wrt `tcs`
/// (Algorithm 1). Returns `None` if no complete generalization exists —
/// equivalently, if the least fixed point of `G_C` is unsafe.
///
/// ```
/// use magik_relalg::{Vocabulary, DisplayWith};
/// use magik_parser::{parse_document, parse_query};
/// use magik_completeness::mcg;
///
/// let mut v = Vocabulary::new();
/// let tcs = parse_document(
///     "compl school(S, primary, D) ; true.
///      compl pupil(N, C, S) ; school(S, T, merano).",
///     &mut v,
/// ).unwrap().tcs;
/// let q = parse_query(
///     "q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).",
///     &mut v,
/// ).unwrap();
///
/// let m = mcg(&q, &tcs).unwrap();
/// assert_eq!(m.display(&v).to_string(),
///            "q(N) :- pupil(N, C, S), school(S, primary, merano)");
/// ```
pub fn mcg(q: &Query, tcs: &TcSet) -> Option<Query> {
    mcg_with_stats(q, tcs).0
}

/// Decides whether `candidate` is *the* MCG of `q` wrt `tcs` — the
/// decision problem of Proposition 15 (in `P^NP`): run Algorithm 1 and
/// compare up to equivalence.
pub fn is_mcg(candidate: &Query, q: &Query, tcs: &TcSet) -> bool {
    match mcg(q, tcs) {
        Some(m) => magik_relalg::are_equivalent(candidate, &m),
        None => false,
    }
}

/// Like [`mcg`], also reporting iteration statistics.
pub fn mcg_with_stats(q: &Query, tcs: &TcSet) -> (Option<Query>, McgStats) {
    let mut old = q.clone();
    let mut new = g_op(&old, tcs);
    let mut iterations = 1;
    while new.is_safe() && !new.same_as(&old) {
        old = new;
        new = g_op(&old, tcs);
        iterations += 1;
    }
    let stats = McgStats {
        iterations,
        atoms_removed: q.size() - new.size(),
    };
    if new.is_safe() {
        (Some(new), stats)
    } else {
        (None, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::is_complete;
    use crate::tcs::TcStatement;
    use crate::testutil::{flight, q_pbl, q_ppb, school_tcs};
    use magik_relalg::{are_equivalent, is_contained_in, Atom, Term, Vocabulary};

    #[test]
    fn g_op_drops_unguaranteed_atoms() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let g = g_op(&q, &tcs);
        // learns(N, L) is not guaranteed; the other two atoms are.
        assert_eq!(g.size(), 2);
        let learns = v.pred("learns", 2);
        assert!(g.body.iter().all(|a| a.pred != learns));
    }

    #[test]
    fn mcg_of_q_pbl_is_q_ppb_example_5() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let expected = q_ppb(&mut v);
        let result = mcg(&q, &tcs).expect("MCG exists");
        assert!(are_equivalent(&result, &expected));
        assert!(is_complete(&result, &tcs));
        // MCG is a generalization: Q ⊑ MCG(Q).
        assert!(is_contained_in(&q, &result));
    }

    #[test]
    fn complete_query_is_its_own_mcg() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_ppb(&mut v);
        let result = mcg(&q, &tcs).unwrap();
        assert!(are_equivalent(&result, &q));
    }

    #[test]
    fn no_mcg_when_head_atom_support_vanishes() {
        let mut v = Vocabulary::new();
        let tcs = TcSet::default();
        let q = q_ppb(&mut v);
        // With no statements, G_C drops everything; q(N) becomes unsafe.
        assert_eq!(mcg(&q, &tcs), None);
    }

    #[test]
    fn boolean_query_always_has_mcg() {
        let mut v = Vocabulary::new();
        let tcs = TcSet::default();
        let learns = v.pred("learns", 2);
        let (n, l) = (v.var("N"), v.var("L"));
        let q = Query::boolean(
            v.sym("b"),
            vec![Atom::new(learns, vec![Term::Var(n), Term::Var(l)])],
        );
        // The empty (true) query is a complete generalization of any
        // Boolean query.
        let result = mcg(&q, &tcs).unwrap();
        assert_eq!(result.size(), 0);
        assert!(is_complete(&result, &tcs));
    }

    #[test]
    fn cascading_removal_takes_linearly_many_iterations() {
        // Compl(r1; r2), Compl(r2; r3), Compl(r3; r4) over body
        // r1(X), r2(X), r3(X): each iteration peels one atom.
        let mut v = Vocabulary::new();
        let preds: Vec<_> = (1..=4).map(|i| v.pred(&format!("r{i}"), 1)).collect();
        let x = v.var("X");
        let tcs = TcSet::new(
            (0..3)
                .map(|i| {
                    TcStatement::new(
                        Atom::new(preds[i], vec![Term::Var(x)]),
                        vec![Atom::new(preds[i + 1], vec![Term::Var(x)])],
                    )
                })
                .collect(),
        );
        let q = Query::boolean(
            v.sym("b"),
            (0..3)
                .map(|i| Atom::new(preds[i], vec![Term::Var(x)]))
                .collect(),
        );
        let (result, stats) = mcg_with_stats(&q, &tcs);
        let result = result.unwrap();
        assert_eq!(result.size(), 0);
        assert_eq!(stats.atoms_removed, 3);
        // Iterations: three removals plus the fixpoint-confirming pass.
        assert_eq!(stats.iterations, 4);
        assert!(stats.iterations <= q.size() + 1);
    }

    #[test]
    fn mcg_is_contained_in_every_complete_generalization() {
        // Proposition 12(d) on the running example: Q_ppb (the MCG of
        // Q_pbl) is contained in the coarser complete generalization that
        // keeps only the school atom... which is not a generalization
        // candidate here because dropping pupil makes q(N) unsafe. Use a
        // Boolean variant to get a non-trivial lattice.
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q_named = q_pbl(&mut v);
        let q = Query::boolean(v.sym("b"), q_named.body.clone());
        let tilde = mcg(&q, &tcs).unwrap();
        // Every complete subquery of q must contain tilde.
        for mask in 0u32..(1 << q.size()) {
            let mut idx = 0;
            let sub = q.subquery(|_| {
                let keep = mask & (1 << idx) != 0;
                idx += 1;
                keep
            });
            if is_complete(&sub, &tcs) {
                assert!(
                    is_contained_in(&tilde, &sub),
                    "MCG must be contained in every complete generalization"
                );
            }
        }
    }

    #[test]
    fn g_op_is_monotone_proposition_10() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let q_gen = q.without_atom(2); // drop learns => more general
        assert!(is_contained_in(&q, &q_gen));
        let gq = g_op(&q, &tcs);
        let gq_gen = g_op(&q_gen, &tcs);
        assert!(is_contained_in(&gq, &gq_gen));
    }

    #[test]
    fn fixed_point_characterizes_completeness_proposition_10() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let complete_q = q_ppb(&mut v);
        let incomplete_q = q_pbl(&mut v);
        assert!(are_equivalent(&g_op(&complete_q, &tcs), &complete_q));
        assert!(!are_equivalent(&g_op(&incomplete_q, &tcs), &incomplete_q));
    }

    #[test]
    fn flight_example_has_no_mcg() {
        let mut v = Vocabulary::new();
        let (tcs, q) = flight(&mut v);
        // G_C immediately drops the only atom: conn(X, Y) is not complete
        // (its condition needs an extension), leaving q(X) unsafe.
        assert_eq!(mcg(&q, &tcs), None);
    }
}
