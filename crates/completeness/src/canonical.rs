//! Canonical forms of conjunctive queries, for verdict caching.
//!
//! A long-running service (`magik-server`) answers the same completeness
//! questions over and over: `is_complete(Q, C)` depends only on `Q` and the
//! TCS set `C`, never on the stored facts, so its verdict can be cached
//! until `C` changes. The cache key must identify `Q` *up to the renamings
//! and redundancies that do not affect the verdict* — otherwise textual
//! noise (variable names, atom order, duplicated atoms) defeats the cache.
//!
//! [`CanonicalQuery::of`] computes such a form:
//!
//! 1. the query is **minimized** ([`magik_relalg::minimize`]), removing
//!    redundant atoms — minimization preserves equivalence, hence the
//!    completeness verdict (completeness is invariant under equivalence,
//!    Proposition 1 of the paper);
//! 2. body atoms are **sorted** by a variable-name-independent key,
//!    iteratively refined so that the order stabilizes independently of the
//!    input order;
//! 3. variables are **renamed** to `0, 1, 2, …` in order of first
//!    occurrence (head first, then the sorted body), erasing the original
//!    variable identities.
//!
//! Equality of canonical forms is *sound* for caching: equal forms describe
//! alpha-equivalent minimized queries, so they have the same completeness
//! verdict. It is deliberately not *complete* — two equivalent queries
//! whose minimal cores are isomorphic but sort differently under the
//! refinement may still get distinct forms (exact CQ canonicalization is
//! graph-isomorphism-hard). A cache miss costs a recomputation; a false
//! hit would cost correctness, so the trade goes this way.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use magik_relalg::{minimize, Cst, Pred, Query, Term, Var};

/// A term of a canonical query: a canonically numbered variable or an
/// (unchanged) constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CanonTerm {
    /// The `n`-th distinct variable, in order of first occurrence.
    Var(u32),
    /// A constant, kept verbatim (constants are vocabulary-interned and
    /// already canonical).
    Cst(Cst),
}

/// The canonical form of a conjunctive query. See the module docs for the
/// construction and the soundness guarantee.
///
/// The query's *name* is not part of the form — it is display-only and
/// does not affect any verdict.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalQuery {
    head: Vec<CanonTerm>,
    body: Vec<(Pred, Vec<CanonTerm>)>,
}

impl CanonicalQuery {
    /// Computes the canonical form of `q`.
    pub fn of(q: &Query) -> CanonicalQuery {
        let q = minimize(q);

        // Start from a variable-identity-free ordering: each atom keyed by
        // its predicate and its *local* pattern (constants verbatim,
        // variables by position of first occurrence within the atom).
        let mut order: Vec<usize> = (0..q.body.len()).collect();
        order.sort_by_key(|&i| local_key(&q, i));

        // Refine: number variables by first occurrence under the current
        // order, re-sort by the full numbered key, and repeat until the
        // order is stable. Each round can only use information derived
        // from the previous order, so the result is independent of the
        // input atom order whenever the refinement separates the atoms.
        for _ in 0..=q.body.len() {
            let ranks = var_ranks(&q, &order);
            let mut next = order.clone();
            next.sort_by(|&a, &b| {
                global_key(&q, a, &ranks)
                    .cmp(&global_key(&q, b, &ranks))
                    .then_with(|| local_key(&q, a).cmp(&local_key(&q, b)))
            });
            if next == order {
                break;
            }
            order = next;
        }

        let ranks = var_ranks(&q, &order);
        let canon_term = |t: &Term| match t {
            Term::Var(v) => CanonTerm::Var(ranks[v]),
            Term::Cst(c) => CanonTerm::Cst(*c),
        };
        CanonicalQuery {
            head: q.head.iter().map(canon_term).collect(),
            body: order
                .iter()
                .map(|&i| {
                    let a = &q.body[i];
                    (a.pred, a.args.iter().map(canon_term).collect())
                })
                .collect(),
        }
    }

    /// A 64-bit FNV-1a fingerprint of the form. Deterministic across runs
    /// and platforms (unlike `DefaultHasher`), so it can be logged,
    /// compared between processes, and used in metrics. Collisions are
    /// possible; exact caches must compare the full form.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::default();
        self.hash(&mut h);
        h.finish()
    }
}

/// Assigns `0, 1, 2, …` to variables by first occurrence in the head, then
/// in the body atoms in the order given by `order`.
fn var_ranks(q: &Query, order: &[usize]) -> BTreeMap<Var, u32> {
    let mut ranks = BTreeMap::new();
    let mut note = |t: &Term| {
        if let Term::Var(v) = t {
            let next = ranks.len() as u32;
            ranks.entry(*v).or_insert(next);
        }
    };
    q.head.iter().for_each(&mut note);
    for &i in order {
        q.body[i].args.iter().for_each(&mut note);
    }
    ranks
}

/// Atom key using only information local to the atom: predicate, and each
/// argument as either a constant or the position where its variable first
/// occurs within this atom (capturing repeated-variable patterns like
/// `r(X, X)` vs `r(X, Y)`).
fn local_key(q: &Query, i: usize) -> (Pred, Vec<CanonTerm>) {
    let a = &q.body[i];
    let mut first = BTreeMap::new();
    let args = a
        .args
        .iter()
        .enumerate()
        .map(|(pos, t)| match t {
            Term::Cst(c) => CanonTerm::Cst(*c),
            Term::Var(v) => CanonTerm::Var(*first.entry(*v).or_insert(pos as u32)),
        })
        .collect();
    (a.pred, args)
}

/// Atom key under a candidate global variable numbering.
fn global_key(q: &Query, i: usize, ranks: &BTreeMap<Var, u32>) -> (Pred, Vec<CanonTerm>) {
    let a = &q.body[i];
    let args = a
        .args
        .iter()
        .map(|t| match t {
            Term::Cst(c) => CanonTerm::Cst(*c),
            Term::Var(v) => CanonTerm::Var(ranks[v]),
        })
        .collect();
    (a.pred, args)
}

/// FNV-1a, 64-bit: tiny, deterministic, good enough for fingerprints.
#[derive(Debug)]
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::{are_equivalent, Atom, Vocabulary};

    fn pupil_query(v: &mut Vocabulary, names: [&str; 3], shuffled: bool) -> Query {
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let (n, c, s) = (v.var(names[0]), v.var(names[1]), v.var(names[2]));
        let primary = v.cst("primary");
        let merano = v.cst("merano");
        let a1 = Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]);
        let a2 = Atom::new(
            school,
            vec![Term::Var(s), Term::Cst(primary), Term::Cst(merano)],
        );
        let body = if shuffled { vec![a2, a1] } else { vec![a1, a2] };
        Query::new(v.sym("q"), vec![Term::Var(n)], body)
    }

    #[test]
    fn invariant_under_renaming_and_reordering() {
        let mut v = Vocabulary::new();
        let original = pupil_query(&mut v, ["N", "C", "S"], false);
        let renamed = pupil_query(&mut v, ["A", "B", "Z"], true);
        assert_ne!(original, renamed);
        assert_eq!(CanonicalQuery::of(&original), CanonicalQuery::of(&renamed));
        assert_eq!(
            CanonicalQuery::of(&original).fingerprint(),
            CanonicalQuery::of(&renamed).fingerprint()
        );
    }

    #[test]
    fn minimization_is_folded_in() {
        let mut v = Vocabulary::new();
        let r = v.pred("r", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        // q(X) <- r(X, Y), r(X, Z)  minimizes to  q(X) <- r(X, Y).
        let redundant = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(r, vec![Term::Var(x), Term::Var(z)]),
            ],
        );
        let core = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(r, vec![Term::Var(x), Term::Var(y)])],
        );
        assert_eq!(CanonicalQuery::of(&redundant), CanonicalQuery::of(&core));
    }

    #[test]
    fn distinguishes_repeated_variable_patterns() {
        let mut v = Vocabulary::new();
        let r = v.pred("r", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let diag = Query::boolean(
            v.sym("q"),
            vec![Atom::new(r, vec![Term::Var(x), Term::Var(x)])],
        );
        let full = Query::boolean(
            v.sym("q"),
            vec![Atom::new(r, vec![Term::Var(x), Term::Var(y)])],
        );
        assert_ne!(CanonicalQuery::of(&diag), CanonicalQuery::of(&full));
        assert!(!are_equivalent(&diag, &full));
    }

    #[test]
    fn name_is_ignored_but_head_matters() {
        let mut v = Vocabulary::new();
        let r = v.pred("r", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let body = vec![Atom::new(r, vec![Term::Var(x), Term::Var(y)])];
        let q1 = Query::new(v.sym("q1"), vec![Term::Var(x)], body.clone());
        let q2 = Query::new(v.sym("q2"), vec![Term::Var(x)], body.clone());
        let qy = Query::new(v.sym("q1"), vec![Term::Var(y)], body);
        assert_eq!(CanonicalQuery::of(&q1), CanonicalQuery::of(&q2));
        assert_ne!(CanonicalQuery::of(&q1), CanonicalQuery::of(&qy));
    }

    #[test]
    fn repeated_variables_across_atoms_are_distinguished() {
        // r(X, Y), s(Y) joins the atoms; r(X, Y), s(Z) does not. The
        // atoms' local patterns agree, so only the global refinement can
        // tell them apart.
        let mut v = Vocabulary::new();
        let r = v.pred("r", 2);
        let s = v.pred("s", 1);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let joined = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(s, vec![Term::Var(y)]),
            ],
        );
        let split = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(s, vec![Term::Var(z)]),
            ],
        );
        assert_ne!(CanonicalQuery::of(&joined), CanonicalQuery::of(&split));
        assert!(!are_equivalent(&joined, &split));
    }

    #[test]
    fn constant_only_atoms_canonicalize_deterministically() {
        // Atoms without any variable survive canonicalization verbatim
        // and sort stably regardless of input order.
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let r = v.pred("r", 2);
        let x = v.var("X");
        let (a, b) = (v.cst("a"), v.cst("b"));
        let ra = Atom::new(r, vec![Term::Cst(a), Term::Cst(b)]);
        let rb = Atom::new(r, vec![Term::Cst(b), Term::Cst(a)]);
        let px = Atom::new(p, vec![Term::Var(x)]);
        let one = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![ra.clone(), rb.clone(), px.clone()],
        );
        let two = Query::new(v.sym("q"), vec![Term::Var(x)], vec![px, rb, ra]);
        let canon = CanonicalQuery::of(&one);
        assert_eq!(canon, CanonicalQuery::of(&two));
        // The constant atoms are distinct (no variables to rename), so
        // both survive minimization into the form.
        assert_eq!(canon.body.len(), 3);
        assert!(canon
            .body
            .iter()
            .any(|(_, args)| args == &vec![CanonTerm::Cst(a), CanonTerm::Cst(b)]));
    }

    #[test]
    fn canonicalization_is_idempotent() {
        // Rebuilding a query from its canonical form and canonicalizing
        // again reproduces the same form: minimize → sort → rename is a
        // fixpoint after one application.
        let mut v = Vocabulary::new();
        let queries = [pupil_query(&mut v, ["N", "C", "S"], true), {
            let r = v.pred("r", 2);
            let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
            Query::new(
                v.sym("q"),
                vec![Term::Var(x)],
                vec![
                    Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
                    Atom::new(r, vec![Term::Var(y), Term::Var(z)]),
                    Atom::new(r, vec![Term::Var(x), Term::Var(x)]),
                ],
            )
        }];
        for q in &queries {
            let canon = CanonicalQuery::of(q);
            let rebuild_term = |t: &CanonTerm, v: &mut Vocabulary| match t {
                CanonTerm::Var(n) => Term::Var(v.var(&format!("V{n}"))),
                CanonTerm::Cst(c) => Term::Cst(*c),
            };
            let head = canon.head.iter().map(|t| rebuild_term(t, &mut v)).collect();
            let body = canon
                .body
                .iter()
                .map(|(pred, args)| {
                    Atom::new(
                        *pred,
                        args.iter().map(|t| rebuild_term(t, &mut v)).collect(),
                    )
                })
                .collect();
            let rebuilt = Query::new(q.name, head, body);
            assert_eq!(CanonicalQuery::of(&rebuilt), canon);
        }
    }

    #[test]
    fn equal_forms_are_equivalent_queries() {
        // Soundness spot-check on a pair that sorts differently.
        let mut v = Vocabulary::new();
        let original = pupil_query(&mut v, ["N", "C", "S"], false);
        let renamed = pupil_query(&mut v, ["Q", "P", "O"], true);
        assert_eq!(CanonicalQuery::of(&original), CanonicalQuery::of(&renamed));
        assert!(are_equivalent(&original, &renamed));
    }
}
