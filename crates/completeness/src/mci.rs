//! Maximal complete instantiations (Definition 19, Algorithm 2).

use std::collections::HashSet;

use magik_relalg::{is_contained_in, Atom, Query, Substitution, Term, Vocabulary};
use magik_unify::Unifier;

use crate::tcs::TcSet;
use crate::unifiers::{complete_unifiers, for_each_complete_unifier, SearchBudget, VarPool};

/// Keeps one representative per equivalence class and drops strictly
/// contained queries. Shared by Algorithm 2 (line 6–7) and Algorithm 3
/// (line 5–6).
pub(crate) fn retain_maximal(cands: Vec<Query>) -> Vec<Query> {
    let mut out: Vec<Query> = Vec::new();
    'next: for q in cands {
        let mut i = 0;
        while i < out.len() {
            if is_contained_in(&q, &out[i]) {
                // q is subsumed (or equivalent to) a kept candidate.
                continue 'next;
            }
            if is_contained_in(&out[i], &q) {
                // Strictly contained (the equivalent case was caught above).
                out.swap_remove(i);
                continue;
            }
            i += 1;
        }
        out.push(q);
    }
    out
}

/// Renames the variables of `q` to position-canonical names, so that
/// α-equivalent candidates become syntactically identical and can be
/// deduplicated cheaply before the quadratic maximality filter. Body atoms
/// are sorted by a shape key first to make the renaming order robust.
pub(crate) fn canonical_form(q: &Query, vocab: &mut Vocabulary) -> Query {
    let mut sorted = q.clone();
    sorted.dedup_body();
    // Shape key: predicate and the constant/variable pattern of arguments
    // (variable identity masked).
    let shape = |a: &Atom| {
        (
            a.pred,
            a.args
                .iter()
                .map(|t| match t {
                    Term::Var(_) => None,
                    Term::Cst(c) => Some(*c),
                })
                .collect::<Vec<_>>(),
        )
    };
    sorted.body.sort_by_key(|a| shape(a));
    let mut renaming = Substitution::identity();
    let mut counter = 0;
    let mut visit = |t: Term, renaming: &mut Substitution, vocab: &mut Vocabulary| {
        if let Term::Var(v) = t {
            if renaming.get(v).is_none() {
                let fresh = vocab.var(&format!("${counter}"));
                counter += 1;
                renaming.bind(v, Term::Var(fresh));
            }
        }
    };
    for &t in &sorted.head {
        visit(t, &mut renaming, vocab);
    }
    for a in &sorted.body {
        for &t in &a.args {
            visit(t, &mut renaming, vocab);
        }
    }
    renaming.apply_query(&sorted)
}

/// Decides whether `candidate` is an instantiation of `q`: whether some
/// substitution α satisfies `αQ = candidate` (same head, same body as a
/// set of atoms).
pub fn is_instantiation_of(candidate: &Query, q: &Query) -> bool {
    if candidate.head.len() != q.head.len() {
        return false;
    }
    let cand_body: HashSet<&Atom> = candidate.body.iter().collect();
    // Backtracking: map every body atom of q onto some atom of candidate
    // under a single substitution that also maps the head exactly.
    fn assign(
        qa: &[Atom],
        i: usize,
        cand_atoms: &[&Atom],
        u: &mut Unifier,
        q: &Query,
        candidate: &Query,
        cand_body: &HashSet<&Atom>,
    ) -> bool {
        if i == qa.len() {
            // Verify αQ equals candidate exactly (image set and head).
            let alpha = u.to_substitution();
            let image = alpha.apply_query(q);
            if image.head != candidate.head {
                return false;
            }
            let image_set: HashSet<&Atom> = image.body.iter().collect();
            return image_set == *cand_body;
        }
        for target in cand_atoms {
            let cp = u.checkpoint();
            if unify_onto(u, &qa[i], target)
                && assign(qa, i + 1, cand_atoms, u, q, candidate, cand_body)
            {
                return true;
            }
            u.rollback(cp);
        }
        false
    }
    /// One-directional match: bind variables of `pattern` so that it
    /// becomes exactly `target` (variables of `target` are constants-like:
    /// they may only be images, never bound).
    fn unify_onto(u: &mut Unifier, pattern: &Atom, target: &Atom) -> bool {
        if pattern.pred != target.pred || pattern.args.len() != target.args.len() {
            return false;
        }
        let cp = u.checkpoint();
        for (&p, &t) in pattern.args.iter().zip(&target.args) {
            let resolved = u.resolve(p);
            let ok = match resolved {
                Term::Var(v) => {
                    // Already equal (literally or through the bindings)?
                    resolved == t
                        || u.resolve(t) == resolved
                        // Otherwise bind the pattern variable to the target.
                        || (u.unify_terms(Term::Var(v), t) && u.resolve(Term::Var(v)) == t)
                }
                other => other == t,
            };
            if !ok {
                u.rollback(cp);
                return false;
            }
        }
        true
    }
    let cand_atoms: Vec<&Atom> = candidate.body.iter().collect();
    let mut u = Unifier::new();
    assign(&q.body, 0, &cand_atoms, &mut u, q, candidate, &cand_body)
}

/// Decides whether `candidate` is an MCI of `q` wrt `tcs` — the decision
/// problem of Theorem 25 (in `Π₂ᵖ`), implemented by the three steps of
/// its proof sketch: (I) is the candidate complete, (II) is it an
/// instantiation of (the minimized) `q`, (III) is no complete
/// instantiation strictly more general.
pub fn is_mci(candidate: &Query, q: &Query, tcs: &TcSet, vocab: &mut Vocabulary) -> bool {
    // (I) completeness.
    if !crate::check::is_complete(candidate, tcs) {
        return false;
    }
    // (II) instantiation of the query as given (Definition 19).
    if !is_instantiation_of(candidate, q) {
        return false;
    }
    // (III) maximality among complete instantiations: every MCI that
    // contains the candidate must be equivalent to it.
    mcis(q, tcs, vocab)
        .iter()
        .all(|m| !is_contained_in(candidate, m) || is_contained_in(m, candidate))
}

/// Computes all maximal complete instantiations of `q` wrt `tcs`
/// (Algorithm 2). The result contains one representative per equivalence
/// class, each a complete instantiation of `q` maximal wrt containment.
///
/// The search runs on the query **as given** (not its core): redundant
/// atoms enlarge the space of instantiations — e.g. `q(X) ← p(X,Y),
/// p(X,Z)` has the MCI `p(X,a), p(X,b)` under mutually-conditioned
/// statements, which no instantiation of the one-atom core reaches.
/// Proposition 21 (complete unifiers yield complete queries) holds for
/// arbitrary conjunctive queries, so soundness is unaffected.
pub fn mcis(q: &Query, tcs: &TcSet, vocab: &mut Vocabulary) -> Vec<Query> {
    let mut seen = HashSet::new();
    let mut cands = Vec::new();
    for gamma in complete_unifiers(q, tcs, vocab) {
        let mut qi = gamma.apply_query(q);
        qi.dedup_body();
        let canon = canonical_form(&qi, vocab);
        if seen.insert(canon) {
            cands.push(qi);
        }
    }
    retain_maximal(cands)
}

/// Computes the complete instantiations of `q` with at most `max_size`
/// distinct body atoms, maximal within that space — the `MCI_{≤n+k}`
/// subroutine of Algorithm 3.
pub fn mcis_bounded(q: &Query, tcs: &TcSet, vocab: &mut Vocabulary, max_size: usize) -> Vec<Query> {
    let mut pool = VarPool::new("T");
    let (cands, _, _) = collect_bounded_instantiations(
        q,
        tcs,
        vocab,
        &mut pool,
        max_size,
        true,
        SearchBudget::default(),
    );
    retain_maximal(cands)
}

/// Enumerates complete instantiations of `q` (not necessarily minimal!)
/// whose deduplicated size is at most `max_size`. Returns the candidates
/// (syntactically deduplicated), the unifier-search stats, and whether the
/// search ran to exhaustion. Shared with Algorithm 3.
pub(crate) fn collect_bounded_instantiations(
    q: &Query,
    tcs: &TcSet,
    vocab: &mut Vocabulary,
    pool: &mut VarPool,
    max_size: usize,
    indexed: bool,
    budget: SearchBudget,
) -> (Vec<Query>, crate::unifiers::UnifierSearchStats, bool) {
    let mut seen = HashSet::new();
    let mut cands = Vec::new();
    // The visitor cannot borrow `vocab` (the search holds it), so
    // canonicalization for dedup happens on a second pass below.
    let (stats, complete) =
        for_each_complete_unifier(q, tcs, vocab, pool, indexed, budget, &mut |gamma| {
            let mut qi = gamma.apply_query(q);
            qi.dedup_body();
            if qi.size() <= max_size {
                cands.push(qi);
            }
            true
        });
    let mut deduped = Vec::new();
    for qi in cands {
        let canon = canonical_form(&qi, vocab);
        if seen.insert(canon) {
            deduped.push(qi);
        }
    }
    (deduped, stats, complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::is_complete;
    use crate::testutil::{flight, q_pbl, school_tcs, table1};
    use magik_relalg::{are_equivalent, Term, Vocabulary};

    #[test]
    fn mci_of_q_pbl_is_the_english_specialization() {
        // Example 22/24: the single MCI replaces L by english.
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let result = mcis(&q, &tcs, &mut v);
        assert_eq!(result.len(), 1);
        let mci = &result[0];
        assert!(is_complete(mci, &tcs));
        assert!(is_instantiation_of(mci, &q));
        assert!(is_contained_in(mci, &q));
        let learns = v.pred("learns", 2);
        let english = v.cst("english");
        let learns_atom = mci.body.iter().find(|a| a.pred == learns).unwrap();
        assert_eq!(learns_atom.args[1], Term::Cst(english));
    }

    #[test]
    fn mci_of_flight_query_is_the_self_loop() {
        // Theorem 17 illustration: Q'(X) <- conn(X, X) is the only MCI.
        let mut v = Vocabulary::new();
        let (tcs, q) = flight(&mut v);
        let result = mcis(&q, &tcs, &mut v);
        assert_eq!(result.len(), 1);
        let conn = v.pred("conn", 2);
        let mci = &result[0];
        assert_eq!(mci.body.len(), 1);
        assert_eq!(mci.body[0].pred, conn);
        assert_eq!(mci.body[0].args[0], mci.body[0].args[1]);
        assert_eq!(mci.head[0], mci.body[0].args[0]);
    }

    #[test]
    fn table1_query_has_no_mci() {
        let mut v = Vocabulary::new();
        let (tcs, q) = table1(&mut v);
        assert!(mcis(&q, &tcs, &mut v).is_empty());
    }

    #[test]
    fn complete_query_has_itself_as_only_mci() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = crate::testutil::q_ppb(&mut v);
        let result = mcis(&q, &tcs, &mut v);
        assert_eq!(result.len(), 1);
        assert!(are_equivalent(&result[0], &q));
    }

    #[test]
    fn retain_maximal_keeps_incomparable_and_drops_subsumed() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let r = v.pred("r", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let a = v.cst("a");
        let general = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
        );
        let special = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Cst(a)])],
        );
        let other = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(r, vec![Term::Var(x), Term::Var(y)])],
        );
        let kept = retain_maximal(vec![special.clone(), general.clone(), other.clone()]);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|q| are_equivalent(q, &general)));
        assert!(kept.iter().any(|q| are_equivalent(q, &other)));
        // Equivalent duplicates collapse to one representative.
        let kept = retain_maximal(vec![general.clone(), general.clone()]);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn is_instantiation_of_accepts_collapses_and_rejects_generalizations() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let a = v.cst("a");
        // q(X) <- p(X, Y), p(Y, X)
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(p, vec![Term::Var(y), Term::Var(x)]),
            ],
        );
        // Collapse Y -> X: q(X) <- p(X, X).
        let collapsed = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(x)])],
        );
        assert!(is_instantiation_of(&collapsed, &q));
        // Ground: q(a) <- p(a, a).
        let ground = Query::new(
            v.sym("q"),
            vec![Term::Cst(a)],
            vec![Atom::new(p, vec![Term::Cst(a), Term::Cst(a)])],
        );
        assert!(is_instantiation_of(&ground, &q));
        // A generalization is not an instantiation.
        let single = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
        );
        assert!(!is_instantiation_of(&single, &q));
        // Extra atoms are not instantiations either.
        let z = v.var("Z");
        let extended = q.with_atoms([Atom::new(p, vec![Term::Var(z), Term::Var(z)])]);
        assert!(!is_instantiation_of(&extended, &q));
    }

    #[test]
    fn canonical_form_identifies_alpha_equivalent_queries() {
        let mut v = Vocabulary::new();
        let p = v.pred("p", 2);
        let (x, y, u, w) = (v.var("X"), v.var("Y"), v.var("U"), v.var("W"));
        let q1 = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(y)])],
        );
        let q2 = Query::new(
            v.sym("q"),
            vec![Term::Var(u)],
            vec![Atom::new(p, vec![Term::Var(u), Term::Var(w)])],
        );
        let c1 = canonical_form(&q1, &mut v);
        let mut c2 = canonical_form(&q2, &mut v);
        c2.name = c1.name;
        let mut c1 = c1;
        c1.name = c2.name;
        assert_eq!(c1.head, c2.head);
        assert_eq!(c1.body, c2.body);
    }

    #[test]
    fn is_mci_decision_problem() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        // The english specialization is the MCI.
        let the_mci = mcis(&q, &tcs, &mut v).pop().unwrap();
        assert!(is_mci(&the_mci, &q, &tcs, &mut v));
        // q itself is not (incomplete).
        assert!(!is_mci(&q, &q, &tcs, &mut v));
        // A complete but non-maximal instantiation (Example 24's query,
        // which additionally fixes the class code) is not an MCI.
        let c = v.var("C");
        let one = v.cst("1");
        let narrower =
            magik_relalg::Substitution::from_pairs([(c, Term::Cst(one))]).apply_query(&the_mci);
        assert!(crate::check::is_complete(&narrower, &tcs));
        assert!(!is_mci(&narrower, &q, &tcs, &mut v));
        // A complete query that is no instantiation of q is not an MCI.
        let other = crate::testutil::q_ppb(&mut v);
        assert!(!is_mci(&other, &q, &tcs, &mut v));
    }

    #[test]
    fn is_mcg_decision_problem() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let expected = crate::testutil::q_ppb(&mut v);
        assert!(crate::generalize::is_mcg(&expected, &q, &tcs));
        // q itself is not its own MCG (it is incomplete).
        assert!(!crate::generalize::is_mcg(&q, &q, &tcs));
        // Dropping one more atom is complete but not minimal... dropping
        // the pupil atom makes the head unsafe, so use the school-only
        // Boolean variant on a Boolean query instead.
        let bool_q = Query::boolean(v.sym("b"), q.body.clone());
        let school_only = bool_q.subquery(|a| a.pred == v.pred("school", 3));
        assert!(crate::check::is_complete(&school_only, &tcs));
        assert!(!crate::generalize::is_mcg(&school_only, &bool_q, &tcs));
    }

    #[test]
    fn mcis_bounded_respects_the_size_bound() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let unbounded = mcis_bounded(&q, &tcs, &mut v, 10);
        assert_eq!(unbounded.len(), 1);
        let too_small = mcis_bounded(&q, &tcs, &mut v, 1);
        assert!(too_small.is_empty());
    }
}
