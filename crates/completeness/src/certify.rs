//! Certificate emission: proof-carrying verdicts for Theorem 3.
//!
//! [`certify`] upgrades [`crate::is_complete`]'s boolean into a
//! [`Certificate`] that the independent checker crate (`magik-cert`) can
//! validate by direct definition-checking:
//!
//! * **complete** — the witnessing assignment θ from
//!   [`magik_relalg::has_answer_witness`] over `T_C(D_Q)`, plus one
//!   [`FactDerivation`] per body atom naming the statement and grounding
//!   that guarantee its θ-image;
//! * **incomplete** — the canonical counterexample (available state
//!   `T_C(D_Q)` inside ideal state `D_Q`, lost answer `θū`) and a
//!   **minimal repair**: unconditional statements whose addition flips
//!   the verdict, computed greedy-then-minimize over the canonical
//!   database so that removing any single element flips it back.
//!
//! The emitter lives on the engine side and may use every engine
//! shortcut; soundness is the checker's problem, which is the point of
//! the split.

use magik_cert::{
    Binding, CertStatement, Certificate, CompleteCert, FactDerivation, IncompleteCert, RepairCert,
};
use magik_relalg::{
    canonical_database, freeze_term, has_answer_witness, homomorphisms, Atom, Cst, Instance, Query,
    Substitution, Term, Var,
};

use crate::check::is_complete;
use crate::tc_op::tc_apply;
use crate::tcs::{TcSet, TcStatement};

/// Converts a TCS into the checker's statement representation, preserving
/// order (certificates index into this list).
pub fn cert_statements(tcs: &TcSet) -> Vec<CertStatement> {
    tcs.statements()
        .iter()
        .map(|s| CertStatement {
            head: s.head.clone(),
            condition: s.condition.clone(),
        })
        .collect()
}

fn binding_of(sub: &Substitution) -> Binding {
    sub.iter()
        .filter_map(|(v, t)| match t {
            Term::Cst(c) => Some((v, c)),
            Term::Var(_) => None,
        })
        .collect()
}

fn subst_of(binding: &[(Var, Cst)]) -> Substitution {
    Substitution::from_pairs(binding.iter().map(|&(v, c)| (v, Term::Cst(c))))
}

/// Finds, for one guaranteed fact, a statement and grounding that put it
/// into `T_C(D_Q)` — by re-enumerating each statement's associated-query
/// homomorphisms over the canonical database.
fn derive_fact(fact: &magik_relalg::Fact, tcs: &TcSet, db: &Instance) -> Option<(usize, Binding)> {
    for (si, stmt) in tcs.statements().iter().enumerate() {
        let assoc = stmt.associated_query();
        for hom in homomorphisms(&assoc.body, db) {
            if hom.apply_atom(&stmt.head).to_fact().as_ref() == Some(fact) {
                return Some((si, binding_of(&hom)));
            }
        }
    }
    None
}

/// Emits a completeness witness, or `None` when `C ⊭ Compl(Q)`.
fn complete_cert(q: &Query, tcs: &TcSet) -> Option<CompleteCert> {
    let db = canonical_database(q);
    let guaranteed = tc_apply(tcs, &db);
    let target: Vec<Cst> = q.head.iter().map(|&t| freeze_term(t)).collect();
    let witness = has_answer_witness(q, &guaranteed, &target)?;
    let theta = witness.binding;
    let sub = subst_of(&theta);
    let mut derivations = Vec::with_capacity(q.body.len());
    for atom in &q.body {
        let fact = sub
            .apply_atom(atom)
            .to_fact()
            .expect("θ grounds every body atom");
        let (statement, binding) =
            derive_fact(&fact, tcs, &db).expect("θ-images of body atoms are in T_C(D_Q)");
        derivations.push(FactDerivation {
            fact,
            statement,
            binding,
        });
    }
    Some(CompleteCert { theta, derivations })
}

/// Emits the canonical counterexample for an incomplete verdict: ideal
/// state `D_Q`, available state `T_C(D_Q)`, lost answer `θū`.
fn incomplete_cert(q: &Query, tcs: &TcSet) -> IncompleteCert {
    let db = canonical_database(q);
    let guaranteed = tc_apply(tcs, &db);
    IncompleteCert {
        available: guaranteed.iter_facts().collect(),
        target: q.head.iter().map(|&t| freeze_term(t)).collect(),
    }
}

fn with_statements(tcs: &TcSet, extra: &[Atom]) -> TcSet {
    let mut statements: Vec<TcStatement> = tcs.statements().to_vec();
    statements.extend(
        extra
            .iter()
            .map(|a| TcStatement::new(a.clone(), Vec::new())),
    );
    TcSet::new(statements)
}

/// Computes a 1-minimal repair for an incomplete verdict: a set of
/// unconditional statements (one per uncovered body atom pattern) whose
/// addition makes `Q` complete, minimized greedily so that removing any
/// single element makes it incomplete again.
///
/// Always succeeds for incomplete verdicts: adding `Compl(a; true)` for
/// *every* body atom makes `T_C(D_Q) = D_Q`, under which the identity
/// assignment witnesses completeness.
pub fn repair_suggestions(q: &Query, tcs: &TcSet) -> Vec<TcStatement> {
    let mut candidates: Vec<Atom> = Vec::new();
    for a in &q.body {
        if !candidates.contains(a) {
            candidates.push(a.clone());
        }
    }
    // Greedy minimize: drop every candidate whose removal keeps the
    // repaired set complete. The survivors form a 1-minimal repair.
    let mut kept = candidates.clone();
    let mut i = 0;
    while i < kept.len() {
        let mut reduced = kept.clone();
        reduced.remove(i);
        if is_complete(q, &with_statements(tcs, &reduced)) {
            kept = reduced;
        } else {
            i += 1;
        }
    }
    kept.into_iter()
        .map(|a| TcStatement::new(a, Vec::new()))
        .collect()
}

/// Emits a full repair certificate for an incomplete verdict, or `None`
/// when the verdict is complete (nothing to repair).
fn repair_cert(q: &Query, tcs: &TcSet) -> Option<RepairCert> {
    let additions: Vec<Atom> = repair_suggestions(q, tcs)
        .into_iter()
        .map(|s| s.head)
        .collect();
    if additions.is_empty() {
        return None;
    }
    let complete = complete_cert(q, &with_statements(tcs, &additions))
        .expect("the un-minimized repair set restores completeness");
    let minimality = additions
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let mut reduced = additions.clone();
            reduced.remove(i);
            incomplete_cert(q, &with_statements(tcs, &reduced))
        })
        .collect();
    Some(RepairCert {
        additions,
        complete,
        minimality,
    })
}

/// Decides `C ⊨ Compl(Q)` and emits a checkable [`Certificate`] for the
/// verdict: a completeness witness, or a counterexample plus a minimal
/// repair.
///
/// The certificate validates against
/// [`magik_cert::check_certificate`]`(q, &cert_statements(tcs), …)`.
pub fn certify(q: &Query, tcs: &TcSet) -> Certificate {
    match complete_cert(q, tcs) {
        Some(c) => Certificate::Complete(c),
        None => Certificate::Incomplete {
            counterexample: incomplete_cert(q, tcs),
            repair: repair_cert(q, tcs),
        },
    }
}

/// Like [`crate::mcg`], but pairs the generalization with its completeness
/// witness (an MCG is complete by construction).
pub fn mcg_certified(q: &Query, tcs: &TcSet) -> Option<(Query, CompleteCert)> {
    let g = crate::generalize::mcg(q, tcs)?;
    let cert = complete_cert(&g, tcs).expect("the MCG is complete by construction");
    Some((g, cert))
}

/// Like [`crate::k_mcs`], but pairs every specialization with its
/// completeness witness (each k-MCS is complete by construction).
pub fn k_mcs_certified(
    q: &Query,
    tcs: &TcSet,
    vocab: &mut magik_relalg::Vocabulary,
    options: crate::specialize::KMcsOptions,
) -> Vec<(Query, CompleteCert)> {
    crate::specialize::k_mcs(q, tcs, vocab, options)
        .queries
        .into_iter()
        .map(|s| {
            let cert = complete_cert(&s, tcs).expect("each k-MCS is complete by construction");
            (s, cert)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{flight, q_pbl, q_ppb, school_tcs, table1};
    use magik_cert::{check_certificate, check_complete, check_repair, CertError};
    use magik_relalg::Vocabulary;

    fn assert_valid(q: &Query, tcs: &TcSet) -> Certificate {
        let cert = certify(q, tcs);
        assert_eq!(
            check_certificate(q, &cert_statements(tcs), &cert),
            Ok(()),
            "emitted certificate must validate"
        );
        cert
    }

    #[test]
    fn complete_verdicts_carry_valid_witnesses() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_ppb(&mut v);
        let cert = assert_valid(&q, &tcs);
        assert!(matches!(cert, Certificate::Complete(_)));
    }

    #[test]
    fn incomplete_verdicts_carry_counterexample_and_repair() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let cert = assert_valid(&q, &tcs);
        match cert {
            Certificate::Incomplete { repair, .. } => {
                let repair = repair.expect("incomplete verdicts carry a repair");
                // The repair is exactly the uncovered learns-atom.
                assert_eq!(repair.additions.len(), 1);
            }
            Certificate::Complete(_) => panic!("q_pbl is incomplete"),
        }
    }

    #[test]
    fn cyclic_and_table1_fixtures_certify() {
        let mut v = Vocabulary::new();
        let (tcs, q) = flight(&mut v);
        assert_valid(&q, &tcs);
        let mut v = Vocabulary::new();
        let (tcs, q) = table1(&mut v);
        assert_valid(&q, &tcs);
    }

    #[test]
    fn repair_removal_flips_validation() {
        // Acceptance criterion: the repair set is 1-minimal — removing any
        // element makes the completeness half of the repair fail.
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let Certificate::Incomplete {
            repair: Some(repair),
            ..
        } = certify(&q, &tcs)
        else {
            panic!("q_pbl is incomplete with a repair");
        };
        let stmts = cert_statements(&tcs);
        assert_eq!(check_repair(&q, &stmts, &repair), Ok(()));
        for i in 0..repair.additions.len() {
            let mut broken = repair.clone();
            broken.additions.remove(i);
            broken.minimality.remove(i);
            assert!(
                check_repair(&q, &stmts, &broken).is_err(),
                "removing addition {i} must flip validation"
            );
        }
    }

    #[test]
    fn empty_tcs_repair_covers_every_body_pattern() {
        let mut v = Vocabulary::new();
        let q = q_ppb(&mut v);
        let tcs = TcSet::default();
        let repairs = repair_suggestions(&q, &tcs);
        assert!(!repairs.is_empty());
        assert!(is_complete(
            &q,
            &with_statements(
                &tcs,
                &repairs.iter().map(|s| s.head.clone()).collect::<Vec<_>>()
            )
        ));
        assert!(matches!(
            certify(&q, &tcs),
            Certificate::Incomplete {
                repair: Some(_),
                ..
            }
        ));
        assert_valid(&q, &tcs);
    }

    #[test]
    fn mcg_and_kmcs_pair_with_valid_complete_certs() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let (g, cert) = mcg_certified(&q, &tcs).expect("q_pbl has an MCG");
        assert_eq!(check_complete(&g, &cert_statements(&tcs), &cert), Ok(()));
        let specs = k_mcs_certified(&q, &tcs, &mut v, crate::specialize::KMcsOptions::new(1));
        for (s, cert) in &specs {
            assert_eq!(check_complete(s, &cert_statements(&tcs), cert), Ok(()));
        }
    }

    #[test]
    fn forged_certificates_are_rejected() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_ppb(&mut v);
        let Certificate::Complete(mut cert) = certify(&q, &tcs) else {
            panic!("q_ppb is complete");
        };
        // Swap the verdict's witness onto a weaker statement set: the
        // checker catches the now-dangling statement indices or unmet
        // conditions.
        let weak = TcSet::new(vec![tcs.statements()[0].clone()]);
        assert!(check_complete(&q, &cert_statements(&weak), &cert).is_err());
        // Forge θ: claim the head maps elsewhere.
        cert.theta.clear();
        assert!(matches!(
            check_complete(&q, &cert_statements(&tcs), &cert),
            Err(CertError::Unbound(_))
        ));
    }
}
