//! k-MCS computation (Algorithm 3): maximal complete specializations
//! within the space of queries with at most `|Q| + k` body atoms.
//!
//! Two engines are provided:
//!
//! * [`KMcsEngine::Naive`] follows Algorithm 3 literally, the way the
//!   authors' first Prolog implementation did: enumerate every *ordered
//!   tuple* of `n + k - 1` fresh atoms over the signature `Σ_C`, run the
//!   complete-unifier search (without predicate indexing) on each
//!   extension, collect all bounded candidates, and filter maximal ones at
//!   the very end. Its runtime reproduces the exponential growth of the
//!   paper's Table 1.
//! * [`KMcsEngine::Optimized`] implements the Section 5 optimizations:
//!   extensions are enumerated as canonical *multisets* of increasing size
//!   (`0, 1, …, n+k-1`); extensions mentioning a relation with no
//!   matching statement head are skipped; candidates subsumed by an
//!   already-collected specialization are pruned immediately, keeping the
//!   working set (and memory) small.
//!
//! Both engines return the same set of k-MCSs up to equivalence; the test
//! suite asserts the agreement.

use std::collections::HashSet;
use std::sync::Arc;

use magik_exec::Executor;
use magik_relalg::{is_contained_in, minimize, Atom, Pred, Query, Term, Vocabulary};

use crate::mci::{canonical_form, collect_bounded_instantiations, retain_maximal};
use crate::tcs::TcSet;
use crate::unifiers::{SearchBudget, VarPool};

/// Which Algorithm 3 implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KMcsEngine {
    /// Literal Algorithm 3 (ordered extensions, unindexed search, post-hoc
    /// maximality filter).
    Naive,
    /// Section 5 optimizations (incremental multiset extensions, indexed
    /// search, subsumption pruning).
    Optimized,
}

/// Options for [`k_mcs`].
#[derive(Debug, Clone, Copy)]
pub struct KMcsOptions {
    /// The size slack: specializations may have up to `|Q| + k` body atoms.
    pub k: usize,
    /// The engine to use.
    pub engine: KMcsEngine,
    /// Abort the search after this many unification calls (the result is
    /// then marked incomplete). Guards long benchmark sweeps.
    pub max_unify_calls: u64,
}

impl KMcsOptions {
    /// Default options for the given `k`: optimized engine, no practical
    /// budget limit.
    pub fn new(k: usize) -> Self {
        KMcsOptions {
            k,
            engine: KMcsEngine::Optimized,
            max_unify_calls: u64::MAX,
        }
    }
}

/// Search statistics of a [`k_mcs`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KMcsStats {
    /// Extensions (fresh-atom tuples or multisets) processed.
    pub extensions: u64,
    /// Extensions skipped before searching (optimized engine only).
    pub extensions_skipped: u64,
    /// Total unification calls across all extensions.
    pub unify_calls: u64,
    /// Complete-unifier configurations visited.
    pub configurations: u64,
    /// Candidates collected (bounded, syntactically deduplicated).
    pub candidates: u64,
    /// Candidates dropped by incremental subsumption pruning (optimized
    /// engine only).
    pub pruned_by_subsumption: u64,
}

/// The result of a [`k_mcs`] computation.
#[derive(Debug, Clone)]
pub struct KMcsOutcome {
    /// The k-MCSs, one representative per equivalence class.
    pub queries: Vec<Query>,
    /// Search statistics.
    pub stats: KMcsStats,
    /// `false` iff the unification budget was exhausted, in which case
    /// `queries` may be missing results.
    pub complete_search: bool,
}

/// A fresh atom `R(V₁, …, Vₙ)` over pairwise distinct variables drawn
/// from `pool` (reused across extensions; distinctness is only needed
/// within one extension).
fn fresh_atom(pred: Pred, pool: &mut VarPool, vocab: &mut Vocabulary) -> Atom {
    let arity = vocab.arity(pred);
    let args = (0..arity).map(|_| Term::Var(pool.draw(vocab))).collect();
    Atom::new(pred, args)
}

/// Enumerates ordered tuples over `preds` of exactly `len` entries.
fn ordered_tuples(preds: &[Pred], len: usize) -> Vec<Vec<Pred>> {
    let mut out = vec![Vec::new()];
    for _ in 0..len {
        let mut next = Vec::with_capacity(out.len() * preds.len());
        for tuple in &out {
            for &p in preds {
                let mut t = tuple.clone();
                t.push(p);
                next.push(t);
            }
        }
        out = next;
    }
    out
}

/// Enumerates multisets over `preds` of exactly `len` entries, as
/// non-decreasing tuples.
fn multisets(preds: &[Pred], len: usize) -> Vec<Vec<Pred>> {
    fn rec(
        preds: &[Pred],
        start: usize,
        len: usize,
        acc: &mut Vec<Pred>,
        out: &mut Vec<Vec<Pred>>,
    ) {
        if len == 0 {
            out.push(acc.clone());
            return;
        }
        for i in start..preds.len() {
            acc.push(preds[i]);
            rec(preds, i, len - 1, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    rec(preds, 0, len, &mut Vec::new(), &mut out);
    out
}

/// Computes the k-MCSs of `q` wrt `tcs` (Algorithm 3).
///
/// The size budget `|Q| + k` is taken from the query **as given**; the
/// search base is then minimized (Section 4 assumes a minimal query, and
/// minimization preserves the set of complete specializations up to
/// equivalence — the budget, however, must not shrink).
///
/// ```
/// use magik_relalg::{Vocabulary, DisplayWith};
/// use magik_parser::{parse_document, parse_query};
/// use magik_completeness::{k_mcs, KMcsOptions};
///
/// let mut v = Vocabulary::new();
/// let tcs = parse_document(
///     "compl school(S, primary, D) ; true.
///      compl pupil(N, C, S) ; school(S, T, merano).
///      compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).",
///     &mut v,
/// ).unwrap().tcs;
/// let q = parse_query(
///     "q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).",
///     &mut v,
/// ).unwrap();
///
/// let outcome = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(0));
/// assert_eq!(outcome.queries.len(), 1);
/// assert_eq!(outcome.queries[0].display(&v).to_string(),
///            "q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, english)");
/// ```
pub fn k_mcs(q: &Query, tcs: &TcSet, vocab: &mut Vocabulary, options: KMcsOptions) -> KMcsOutcome {
    k_mcs_on(q, tcs, vocab, options, &Executor::Sequential)
}

/// Like [`k_mcs`], but fanning the per-extension unifier searches out over
/// `exec`. The searches for the extensions of one size are independent —
/// only the candidate *merge* (canonical dedup and subsumption pruning)
/// is order-sensitive, and it runs sequentially in enumeration order — so
/// the outcome (queries **and** stats) is identical to the sequential run.
///
/// Parallelism applies to the optimized engine with an unlimited
/// unification budget; a finite [`KMcsOptions::max_unify_calls`] threads a
/// running total through the extension order that parallel tasks cannot
/// observe, so budgeted runs (and the naive engine, which exists to
/// reproduce the paper's sequential baseline) fall back to sequential
/// search.
pub fn k_mcs_on(
    q: &Query,
    tcs: &TcSet,
    vocab: &mut Vocabulary,
    options: KMcsOptions,
    exec: &Executor,
) -> KMcsOutcome {
    // The k-MCS space is defined by the size of the query *as given*
    // (at most |Q| + k atoms); minimization below only shrinks the
    // search base, never the space.
    let bound = q.size() + options.k;
    let q = minimize(q);
    let max_extension = bound.saturating_sub(1);
    let sigma: Vec<Pred> = tcs.signature().into_iter().collect();
    let head_preds: HashSet<Pred> = tcs.statements().iter().map(|c| c.head.pred).collect();

    if options.engine == KMcsEngine::Optimized
        && exec.threads() > 1
        && options.max_unify_calls == u64::MAX
    {
        return k_mcs_parallel(
            &q,
            tcs,
            vocab,
            bound,
            max_extension,
            &sigma,
            &head_preds,
            exec,
        );
    }

    let mut stats = KMcsStats::default();
    let mut complete_search = true;
    let mut budget_left = options.max_unify_calls;
    // Variable pools reused across all extensions (see `VarPool`).
    let mut ext_pool = VarPool::new("F");
    let mut stmt_pool = VarPool::new("T");

    match options.engine {
        KMcsEngine::Naive => {
            // Line 2 of Algorithm 3, literally: all extensions of size
            // exactly n + k - 1 (ordered, as a naive generate-and-test
            // enumeration produces them).
            let mut all_candidates = Vec::new();
            let mut seen = HashSet::new();
            for tuple in ordered_tuples(&sigma, max_extension) {
                if !complete_search {
                    break;
                }
                stats.extensions += 1;
                ext_pool.release(0);
                let extension: Vec<Atom> = tuple
                    .iter()
                    .map(|&p| fresh_atom(p, &mut ext_pool, vocab))
                    .collect();
                let q2 = q.with_atoms(extension);
                let (cands, search_stats, exhausted) = collect_bounded_instantiations(
                    &q2,
                    tcs,
                    vocab,
                    &mut stmt_pool,
                    bound,
                    false,
                    SearchBudget {
                        max_unify_calls: budget_left,
                    },
                );
                stats.unify_calls += search_stats.unify_calls;
                stats.configurations += search_stats.configurations;
                budget_left = budget_left.saturating_sub(search_stats.unify_calls);
                if !exhausted {
                    complete_search = false;
                }
                for c in cands {
                    let canon = canonical_form(&c, vocab);
                    if seen.insert(canon) {
                        stats.candidates += 1;
                        all_candidates.push(c);
                    }
                }
            }
            // Lines 5–7: one global maximality pass at the very end.
            KMcsOutcome {
                queries: retain_maximal(all_candidates),
                stats,
                complete_search,
            }
        }
        KMcsEngine::Optimized => {
            let mut kept: Vec<Query> = Vec::new();
            let mut seen = HashSet::new();
            'sizes: for size in 0..=max_extension {
                for multiset in multisets(&sigma, size) {
                    if !complete_search {
                        break 'sizes;
                    }
                    // An extension atom whose relation heads no statement
                    // can never be matched; skip the whole extension.
                    if multiset.iter().any(|p| !head_preds.contains(p)) {
                        stats.extensions_skipped += 1;
                        continue;
                    }
                    stats.extensions += 1;
                    ext_pool.release(0);
                    let extension: Vec<Atom> = multiset
                        .iter()
                        .map(|&p| fresh_atom(p, &mut ext_pool, vocab))
                        .collect();
                    let q2 = q.with_atoms(extension);
                    let (cands, search_stats, exhausted) = collect_bounded_instantiations(
                        &q2,
                        tcs,
                        vocab,
                        &mut stmt_pool,
                        bound,
                        true,
                        SearchBudget {
                            max_unify_calls: budget_left,
                        },
                    );
                    stats.unify_calls += search_stats.unify_calls;
                    stats.configurations += search_stats.configurations;
                    budget_left = budget_left.saturating_sub(search_stats.unify_calls);
                    if !exhausted {
                        complete_search = false;
                    }
                    for c in cands {
                        let canon = canonical_form(&c, vocab);
                        if !seen.insert(canon) {
                            continue;
                        }
                        stats.candidates += 1;
                        // Incremental subsumption pruning (Section 5).
                        if kept.iter().any(|f| is_contained_in(&c, f)) {
                            stats.pruned_by_subsumption += 1;
                            continue;
                        }
                        kept.retain(|f| !is_contained_in(f, &c));
                        kept.push(c);
                    }
                }
            }
            KMcsOutcome {
                queries: kept,
                stats,
                complete_search,
            }
        }
    }
}

/// The parallel optimized engine: for each extension size, mint all
/// searchable extensions up front (vocabulary mutation stays on the
/// calling thread), fan the bounded-instantiation searches out over
/// `exec`, then merge the per-extension candidate lists sequentially in
/// enumeration order so canonical dedup and subsumption pruning see
/// exactly the sequence the sequential engine sees.
///
/// Tasks must not touch the shared vocabulary, yet the candidates they
/// return may mention statement-pool variables. The statement pool is
/// therefore pre-filled (against the shared vocabulary) to the deepest
/// stock one search path can draw — every body atom renames at most one
/// statement — and each task clones that pool plus a vocabulary snapshot;
/// the snapshot only absorbs throwaway `$n` canonicalization interning.
#[allow(clippy::too_many_arguments)]
fn k_mcs_parallel(
    q: &Query,
    tcs: &TcSet,
    vocab: &mut Vocabulary,
    bound: usize,
    max_extension: usize,
    sigma: &[Pred],
    head_preds: &HashSet<Pred>,
    exec: &Executor,
) -> KMcsOutcome {
    let mut stats = KMcsStats::default();
    let mut ext_pool = VarPool::new("F");
    let mut stmt_pool = VarPool::new("T");
    let max_stmt_vars = tcs
        .statements()
        .iter()
        .map(|c| c.all_vars().len())
        .max()
        .unwrap_or(0);
    // Deepest possible path: every atom of the largest extended query
    // renames the largest statement.
    for _ in 0..(q.size() + max_extension) * max_stmt_vars {
        stmt_pool.draw(vocab);
    }
    stmt_pool.release(0);
    let shared_tcs = Arc::new(tcs.clone());
    let pool_template = Arc::new(stmt_pool);

    let mut kept: Vec<Query> = Vec::new();
    let mut seen = HashSet::new();
    for size in 0..=max_extension {
        let mut batch: Vec<Query> = Vec::new();
        for multiset in multisets(sigma, size) {
            if multiset.iter().any(|p| !head_preds.contains(p)) {
                stats.extensions_skipped += 1;
                continue;
            }
            ext_pool.release(0);
            let extension: Vec<Atom> = multiset
                .iter()
                .map(|&p| fresh_atom(p, &mut ext_pool, vocab))
                .collect();
            batch.push(q.with_atoms(extension));
        }
        // Snapshot the vocabulary *after* minting this size's extension
        // atoms, so every variable of every `q2` resolves in the clone.
        let vocab_template = Arc::new(vocab.clone());
        let task_tcs = Arc::clone(&shared_tcs);
        let task_pool = Arc::clone(&pool_template);
        let searched = exec.map(batch, move |q2| {
            let mut v = (*vocab_template).clone();
            let mut pool = (*task_pool).clone();
            collect_bounded_instantiations(
                &q2,
                &task_tcs,
                &mut v,
                &mut pool,
                bound,
                true,
                SearchBudget::default(),
            )
        });
        for (cands, search_stats, _exhausted) in searched {
            stats.extensions += 1;
            stats.unify_calls += search_stats.unify_calls;
            stats.configurations += search_stats.configurations;
            for c in cands {
                let canon = canonical_form(&c, vocab);
                if !seen.insert(canon) {
                    continue;
                }
                stats.candidates += 1;
                if kept.iter().any(|f| is_contained_in(&c, f)) {
                    stats.pruned_by_subsumption += 1;
                    continue;
                }
                kept.retain(|f| !is_contained_in(f, &c));
                kept.push(c);
            }
        }
    }
    KMcsOutcome {
        queries: kept,
        stats,
        complete_search: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::is_complete;
    use crate::testutil::{flight, q_pbl, school_tcs, table1};
    use magik_relalg::are_equivalent;

    #[test]
    fn zero_mcs_of_q_pbl_is_the_english_specialization() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        for engine in [KMcsEngine::Naive, KMcsEngine::Optimized] {
            let outcome = k_mcs(
                &q,
                &tcs,
                &mut v,
                KMcsOptions {
                    engine,
                    ..KMcsOptions::new(0)
                },
            );
            assert!(outcome.complete_search);
            assert_eq!(outcome.queries.len(), 1, "engine {engine:?}");
            let mcs = &outcome.queries[0];
            assert!(is_complete(mcs, &tcs));
            assert!(is_contained_in(mcs, &q));
        }
    }

    /// A directed cycle query of length `len` over `conn`.
    fn cycle_query(v: &mut Vocabulary, len: usize) -> Query {
        let conn = v.pred("conn", 2);
        let vars: Vec<_> = (0..len).map(|i| v.var(&format!("CY{i}"))).collect();
        let body = (0..len)
            .map(|i| {
                Atom::new(
                    conn,
                    vec![Term::Var(vars[i]), Term::Var(vars[(i + 1) % len])],
                )
            })
            .collect();
        Query::new(v.sym("q"), vec![Term::Var(vars[0])], body)
    }

    #[test]
    fn flight_k_mcs_produces_growing_cycles() {
        // Theorem 17: the 0-MCS is the self-loop conn(X, X); larger k
        // admit longer round trips, each strictly more general. (For k ≥ 1
        // "lasso"-shaped specializations — a chain into a shorter cycle —
        // are further incomparable k-MCSs, so we check membership and
        // structural invariants rather than exact counts.)
        let mut v = Vocabulary::new();
        let (tcs, q) = flight(&mut v);
        let k0 = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(0));
        assert_eq!(k0.queries.len(), 1);
        assert_eq!(k0.queries[0].size(), 1);
        assert!(are_equivalent(&k0.queries[0], &cycle_query(&mut v, 1)));

        // k = 1: the 2-cycle is a 1-MCS and strictly subsumes the loop.
        let k1 = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(1));
        let two_cycle = cycle_query(&mut v, 2);
        assert!(
            k1.queries.iter().any(|m| are_equivalent(m, &two_cycle)),
            "the 2-cycle must be a 1-MCS"
        );
        assert!(is_contained_in(&k0.queries[0], &two_cycle));
        assert!(!is_contained_in(&two_cycle, &k0.queries[0]));

        // k = 3: the 4-cycle appears; the 2-cycle is subsumed by it and
        // must be gone; the self-loop is long gone.
        let k3 = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(3));
        let four_cycle = cycle_query(&mut v, 4);
        assert!(k3.queries.iter().any(|m| are_equivalent(m, &four_cycle)));
        for small in [1usize, 2] {
            let c = cycle_query(&mut v, small);
            assert!(
                !k3.queries.iter().any(|m| are_equivalent(m, &c)),
                "the {small}-cycle is subsumed and must not be a 3-MCS"
            );
        }
        for mcs in &k3.queries {
            assert!(is_complete(mcs, &tcs));
            assert!(is_contained_in(mcs, &q));
            assert!(mcs.size() <= q.size() + 3);
        }
        // All results are pairwise incomparable (true maximality).
        for (i, a) in k3.queries.iter().enumerate() {
            for (j, b) in k3.queries.iter().enumerate() {
                if i != j {
                    assert!(!is_contained_in(a, b), "results must be incomparable");
                }
            }
        }
    }

    #[test]
    fn naive_and_optimized_agree_on_flight() {
        let mut v = Vocabulary::new();
        let (tcs, q) = flight(&mut v);
        for k in 0..=2 {
            let naive = k_mcs(
                &q,
                &tcs,
                &mut v,
                KMcsOptions {
                    engine: KMcsEngine::Naive,
                    ..KMcsOptions::new(k)
                },
            );
            let optimized = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(k));
            assert_eq!(naive.queries.len(), optimized.queries.len(), "k = {k}");
            for nq in &naive.queries {
                assert!(
                    optimized.queries.iter().any(|oq| are_equivalent(nq, oq)),
                    "k = {k}: naive result missing from optimized"
                );
            }
        }
    }

    #[test]
    fn table1_workload_has_no_k_mcs() {
        // The class relation heads no statement, so no specialization of
        // Q_l can be complete — for any k.
        let mut v = Vocabulary::new();
        let (tcs, q) = table1(&mut v);
        for k in 0..=3 {
            let outcome = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(k));
            assert!(outcome.complete_search);
            assert!(outcome.queries.is_empty(), "k = {k}");
        }
    }

    #[test]
    fn optimized_engine_skips_and_prunes() {
        let mut v = Vocabulary::new();
        let (tcs, q) = table1(&mut v);
        let outcome = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(2));
        // Extensions involving `class` are skipped up front.
        assert!(outcome.stats.extensions_skipped > 0);
        let naive = k_mcs(
            &q,
            &tcs,
            &mut v,
            KMcsOptions {
                engine: KMcsEngine::Naive,
                ..KMcsOptions::new(2)
            },
        );
        assert!(naive.stats.unify_calls > outcome.stats.unify_calls);
    }

    #[test]
    fn budget_marks_search_incomplete() {
        let mut v = Vocabulary::new();
        let (tcs, q) = table1(&mut v);
        let outcome = k_mcs(
            &q,
            &tcs,
            &mut v,
            KMcsOptions {
                engine: KMcsEngine::Naive,
                max_unify_calls: 3,
                ..KMcsOptions::new(3)
            },
        );
        assert!(!outcome.complete_search);
    }

    #[test]
    fn every_k_mcs_is_a_complete_specialization() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let outcome = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(1));
        assert!(!outcome.queries.is_empty());
        for mcs in &outcome.queries {
            assert!(is_complete(mcs, &tcs));
            assert!(is_contained_in(mcs, &q));
            assert!(mcs.size() <= q.size() + 1);
        }
    }

    #[test]
    fn parallel_k_mcs_matches_sequential_exactly() {
        // Same queries, same order, same stats — the parallel fan-out
        // merges in enumeration order, so nothing distinguishes it.
        let exec = Executor::with_threads(4);
        for k in 0..=2 {
            let mut v1 = Vocabulary::new();
            let (tcs1, q1) = flight(&mut v1);
            let seq = k_mcs(&q1, &tcs1, &mut v1, KMcsOptions::new(k));
            let mut v2 = Vocabulary::new();
            let (tcs2, q2) = flight(&mut v2);
            let par = k_mcs_on(&q2, &tcs2, &mut v2, KMcsOptions::new(k), &exec);
            assert!(par.complete_search);
            assert_eq!(seq.stats, par.stats, "k = {k}");
            assert_eq!(seq.queries.len(), par.queries.len(), "k = {k}");
            for (s, p) in seq.queries.iter().zip(&par.queries) {
                assert!(are_equivalent(s, p), "k = {k}");
            }
        }
    }

    #[test]
    fn parallel_k_mcs_matches_sequential_on_school() {
        let exec = Executor::with_threads(4);
        let mut v1 = Vocabulary::new();
        let tcs1 = school_tcs(&mut v1);
        let q1 = q_pbl(&mut v1);
        let seq = k_mcs(&q1, &tcs1, &mut v1, KMcsOptions::new(1));
        let mut v2 = Vocabulary::new();
        let tcs2 = school_tcs(&mut v2);
        let q2 = q_pbl(&mut v2);
        let par = k_mcs_on(&q2, &tcs2, &mut v2, KMcsOptions::new(1), &exec);
        assert_eq!(seq.stats, par.stats);
        assert_eq!(seq.queries.len(), par.queries.len());
        for (s, p) in seq.queries.iter().zip(&par.queries) {
            assert!(are_equivalent(s, p));
        }
    }

    #[test]
    fn budgeted_parallel_run_falls_back_to_sequential() {
        // A finite budget is order-sensitive; the parallel entry point
        // must produce the budgeted sequential result, not ignore it.
        let mut v = Vocabulary::new();
        let (tcs, q) = table1(&mut v);
        let exec = Executor::with_threads(4);
        let outcome = k_mcs_on(
            &q,
            &tcs,
            &mut v,
            KMcsOptions {
                max_unify_calls: 3,
                ..KMcsOptions::new(3)
            },
            &exec,
        );
        assert!(!outcome.complete_search);
    }

    #[test]
    fn k_mcs_results_grow_monotonically_with_k() {
        // Every k-MCS is subsumed by some (k+1)-MCS (the space only grows).
        let mut v = Vocabulary::new();
        let (tcs, q) = flight(&mut v);
        let k1 = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(1));
        let k2 = k_mcs(&q, &tcs, &mut v, KMcsOptions::new(2));
        for small in &k1.queries {
            assert!(
                k2.queries.iter().any(|big| is_contained_in(small, big)),
                "a 1-MCS must be below some 2-MCS"
            );
        }
    }
}
