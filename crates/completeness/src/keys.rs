//! Key constraints: the remaining reasoning feature of the CIKM'15
//! follow-up (Nutt, Paramonov, Savković).
//!
//! A key on relation `R` says that the *ideal* instance never holds two
//! `R`-tuples agreeing on the key columns. The reasoning mechanism is
//! **chasing the query** with the key EGDs: two body atoms of `Q` over
//! `R` that agree on the key columns must denote the same ideal tuple, so
//! their remaining columns are unified. If unification fails on distinct
//! constants, `Q` has no answers over any consistent ideal instance and
//! is trivially complete.
//!
//! Notably, the chase is also *complete* for this setting: after chasing,
//! no two atoms of the canonical database share a key, so the canonical
//! counterexample of Theorem 3 is itself key-consistent and the classical
//! check applies verbatim to the chased query. (A "key closure" of the
//! guaranteed set — adding frozen atoms whose key matches a guaranteed
//! one — can never fire post-chase and is deliberately absent.)

use std::collections::HashMap;
use std::fmt;

use magik_relalg::{Atom, Cst, Fact, Instance, Pred, Query, Vocabulary};
use magik_unify::Unifier;

/// A key constraint: the listed columns functionally determine the rest
/// of `pred` in every (consistent) ideal instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key {
    /// The constrained relation.
    pub pred: Pred,
    /// The key columns (0-based, non-empty, strictly increasing).
    pub columns: Vec<usize>,
}

impl magik_relalg::DisplayWith for Key {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key {}[", vocab.pred_name(self.pred))?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str("]")
    }
}

/// A key violation in a concrete instance: two facts agreeing on the key
/// columns but differing elsewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyViolation {
    /// The violated key.
    pub key: Key,
    /// The two conflicting facts.
    pub facts: (Fact, Fact),
}

impl Key {
    /// The key projection of a fact's arguments.
    fn project(&self, args: &[Cst]) -> Vec<Cst> {
        self.columns.iter().map(|&c| args[c]).collect()
    }

    /// Checks a concrete instance for violations.
    pub fn check_instance(&self, db: &Instance) -> Result<(), KeyViolation> {
        let Some(rel) = db.relation(self.pred) else {
            return Ok(());
        };
        let mut seen: HashMap<Vec<Cst>, Vec<Cst>> = HashMap::new();
        for row in rel.iter() {
            let tuple = row.to_vec();
            if let Some(other) = seen.get(&self.project(&tuple)) {
                if *other != tuple {
                    return Err(KeyViolation {
                        key: self.clone(),
                        facts: (
                            Fact::new(self.pred, other.clone()),
                            Fact::new(self.pred, tuple),
                        ),
                    });
                }
            } else {
                seen.insert(self.project(&tuple), tuple);
            }
        }
        Ok(())
    }
}

/// The outcome of chasing a query with key constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// The chased query (body atoms merged where keys force equality).
    Chased(Query),
    /// The chase failed on distinct constants: the query has no answers
    /// over any key-consistent ideal instance.
    Unsatisfiable,
}

/// Chases `q` with the key EGDs: whenever two body atoms over a keyed
/// relation agree on the key columns (syntactically, after unification so
/// far), their remaining columns are unified. Runs to fixpoint.
pub fn chase_query(q: &Query, keys: &[Key]) -> ChaseOutcome {
    let mut u = Unifier::new();
    // Fixpoint: each round scans all pairs under the current bindings.
    loop {
        let mut changed = false;
        for key in keys {
            let atoms: Vec<&Atom> = q.body.iter().filter(|a| a.pred == key.pred).collect();
            for i in 0..atoms.len() {
                for j in i + 1..atoms.len() {
                    let same_key = key
                        .columns
                        .iter()
                        .all(|&c| u.resolve(atoms[i].args[c]) == u.resolve(atoms[j].args[c]));
                    if !same_key {
                        continue;
                    }
                    for c in 0..atoms[i].args.len() {
                        let (ta, tb) = (atoms[i].args[c], atoms[j].args[c]);
                        if u.resolve(ta) == u.resolve(tb) {
                            continue;
                        }
                        if !u.unify_terms(ta, tb) {
                            return ChaseOutcome::Unsatisfiable;
                        }
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    if u.is_empty() {
        return ChaseOutcome::Chased(q.clone());
    }
    let subst = u.to_substitution();
    let mut chased = subst.apply_query(q);
    chased.dedup_body();
    ChaseOutcome::Chased(chased)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::{Term, Var};

    fn setup() -> (Vocabulary, Pred, Var, Var, Var, Var, Var) {
        let mut v = Vocabulary::new();
        let pupil = v.pred("pupil", 3);
        let (n, c, s, c2, s2) = (v.var("N"), v.var("C"), v.var("S"), v.var("C2"), v.var("S2"));
        (v, pupil, n, c, s, c2, s2)
    }

    #[test]
    fn chase_merges_atoms_sharing_a_key() {
        let (mut v, pupil, n, c, s, c2, s2) = setup();
        let key = Key {
            pred: pupil,
            columns: vec![0],
        };
        // q(N) <- pupil(N, C, S), pupil(N, C2, S2): the two atoms denote
        // the same ideal tuple.
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(n)],
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c2), Term::Var(s2)]),
            ],
        );
        let ChaseOutcome::Chased(chased) = chase_query(&q, &[key]) else {
            panic!("chase must succeed");
        };
        assert_eq!(chased.size(), 1, "the atoms merge");
    }

    #[test]
    fn chase_fails_on_distinct_constants() {
        let (mut v, pupil, n, c, s, _, _) = setup();
        let key = Key {
            pred: pupil,
            columns: vec![0],
        };
        let (g, d) = (v.cst("goethe"), v.cst("dante"));
        // Same pupil at two distinct schools: inconsistent with the key.
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(n)],
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Cst(g)]),
                Atom::new(pupil, vec![Term::Var(n), Term::Var(s), Term::Cst(d)]),
            ],
        );
        assert_eq!(chase_query(&q, &[key]), ChaseOutcome::Unsatisfiable);
    }

    #[test]
    fn chase_propagates_transitively() {
        // Key forces X = Y in a first merge, which triggers a second.
        let mut v = Vocabulary::new();
        let r = v.pred("r", 2);
        let (x, y, z, w) = (v.var("X"), v.var("Y"), v.var("Z"), v.var("W"));
        let key = Key {
            pred: r,
            columns: vec![0],
        };
        let a = v.cst("a");
        // r(a, X), r(a, Y), r(X, Z), r(Y, W): first merge X = Y, then the
        // last two atoms share their key and merge Z = W.
        let q = Query::boolean(
            v.sym("q"),
            vec![
                Atom::new(r, vec![Term::Cst(a), Term::Var(x)]),
                Atom::new(r, vec![Term::Cst(a), Term::Var(y)]),
                Atom::new(r, vec![Term::Var(x), Term::Var(z)]),
                Atom::new(r, vec![Term::Var(y), Term::Var(w)]),
            ],
        );
        let ChaseOutcome::Chased(chased) = chase_query(&q, &[key]) else {
            panic!()
        };
        assert_eq!(chased.size(), 2);
    }

    #[test]
    fn composite_keys_use_all_columns() {
        let mut v = Vocabulary::new();
        let r = v.pred("r", 3);
        let (x, y) = (v.var("X"), v.var("Y"));
        let (a, b, c) = (v.cst("a"), v.cst("b"), v.cst("c"));
        let key = Key {
            pred: r,
            columns: vec![0, 1],
        };
        // Keys (a, b) and (a, c) differ: no merge.
        let q = Query::boolean(
            v.sym("q"),
            vec![
                Atom::new(r, vec![Term::Cst(a), Term::Cst(b), Term::Var(x)]),
                Atom::new(r, vec![Term::Cst(a), Term::Cst(c), Term::Var(y)]),
            ],
        );
        let ChaseOutcome::Chased(chased) = chase_query(&q, std::slice::from_ref(&key)) else {
            panic!()
        };
        assert_eq!(chased.size(), 2);
        // Keys (a, b) and (a, b) agree: merge.
        let q2 = Query::boolean(
            v.sym("q"),
            vec![
                Atom::new(r, vec![Term::Cst(a), Term::Cst(b), Term::Var(x)]),
                Atom::new(r, vec![Term::Cst(a), Term::Cst(b), Term::Var(y)]),
            ],
        );
        let ChaseOutcome::Chased(chased) = chase_query(&q2, &[key]) else {
            panic!()
        };
        assert_eq!(chased.size(), 1);
    }

    #[test]
    fn instance_key_validation() {
        let mut v = Vocabulary::new();
        let r = v.pred("r", 2);
        let key = Key {
            pred: r,
            columns: vec![0],
        };
        let mut ok = Instance::new();
        ok.insert(Fact::new(r, vec![v.cst("a"), v.cst("x")]));
        ok.insert(Fact::new(r, vec![v.cst("b"), v.cst("x")]));
        assert!(key.check_instance(&ok).is_ok());
        let mut bad = ok.clone();
        bad.insert(Fact::new(r, vec![v.cst("a"), v.cst("y")]));
        let violation = key.check_instance(&bad).unwrap_err();
        assert_eq!(violation.facts.0.args[0], v.cst("a"));
        assert_eq!(violation.facts.1.args[0], v.cst("a"));
    }
}
