//! Table-completeness statements and TCS sets.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use magik_relalg::{Atom, DisplayWith, Pred, Query, Symbol, Var, Vocabulary};

/// A table-completeness statement `Compl(R(s̄); G)`.
///
/// It asserts that the available database contains every ideal `R`-tuple
/// that matches `s̄` and joins with the condition `G` (evaluated over the
/// ideal database). An empty condition is the paper's `true`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TcStatement {
    /// The constrained atom `R(s̄)`.
    pub head: Atom,
    /// The condition `G`: a (possibly empty) conjunction of atoms.
    pub condition: Vec<Atom>,
}

impl TcStatement {
    /// Creates a statement.
    pub fn new(head: Atom, condition: Vec<Atom>) -> Self {
        TcStatement { head, condition }
    }

    /// The associated query `Q_C(s̄) ← R(s̄), G` that defines the
    /// statement's semantics.
    pub fn associated_query(&self) -> Query {
        let mut body = Vec::with_capacity(1 + self.condition.len());
        body.push(self.head.clone());
        body.extend(self.condition.iter().cloned());
        Query::new(Symbol::placeholder(), self.head.args.clone(), body)
    }

    /// All variables of the statement.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut vars: BTreeSet<Var> = self.head.vars().collect();
        vars.extend(self.condition.iter().flat_map(Atom::vars));
        vars
    }

    /// Renames every variable to a fresh one; returns the renamed
    /// statement. Needed whenever the statement is unified against a query
    /// (each *use* gets its own copy).
    pub fn rename_apart(&self, vocab: &mut Vocabulary) -> TcStatement {
        let renaming: magik_relalg::Substitution = self
            .all_vars()
            .into_iter()
            .map(|v| {
                let name = vocab.var_name(v).to_owned();
                (v, magik_relalg::Term::Var(vocab.fresh_var(&name)))
            })
            .collect();
        TcStatement {
            head: renaming.apply_atom(&self.head),
            condition: self
                .condition
                .iter()
                .map(|a| renaming.apply_atom(a))
                .collect(),
        }
    }

    /// Total number of atoms (head plus condition) — the statement size
    /// used by the Theorem 18 bound.
    pub fn size(&self) -> usize {
        1 + self.condition.len()
    }
}

impl DisplayWith for TcStatement {
    fn fmt_with(&self, vocab: &Vocabulary, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compl {} ; ", self.head.display(vocab))?;
        if self.condition.is_empty() {
            f.write_str("true")?;
        }
        for (i, a) in self.condition.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", a.display(vocab))?;
        }
        Ok(())
    }
}

/// A set of table-completeness statements with its dependency structure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TcSet {
    statements: Vec<TcStatement>,
}

impl TcSet {
    /// Creates a set from statements.
    pub fn new(statements: Vec<TcStatement>) -> Self {
        TcSet { statements }
    }

    /// The statements.
    pub fn statements(&self) -> &[TcStatement] {
        &self.statements
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Adds a statement.
    pub fn push(&mut self, c: TcStatement) {
        self.statements.push(c);
    }

    /// The statements whose head is over `pred`.
    pub fn for_pred(&self, pred: Pred) -> impl Iterator<Item = &TcStatement> {
        self.statements.iter().filter(move |c| c.head.pred == pred)
    }

    /// All relation names (predicates) appearing anywhere in the set —
    /// the paper's `Σ_C`, the alphabet of fresh extension atoms in
    /// Algorithm 3.
    pub fn signature(&self) -> BTreeSet<Pred> {
        let mut preds = BTreeSet::new();
        for c in &self.statements {
            preds.insert(c.head.pred);
            preds.extend(c.condition.iter().map(|a| a.pred));
        }
        preds
    }

    /// The dependency graph of the set: an edge `R → R'` iff `R'` appears
    /// in the condition of a statement whose head is over `R`.
    pub fn dependency_graph(&self) -> BTreeMap<Pred, BTreeSet<Pred>> {
        let mut graph: BTreeMap<Pred, BTreeSet<Pred>> = BTreeMap::new();
        for c in &self.statements {
            let entry = graph.entry(c.head.pred).or_default();
            entry.extend(c.condition.iter().map(|a| a.pred));
        }
        graph
    }

    /// `true` iff the dependency graph is acyclic. For acyclic sets the
    /// size of every MCS is bounded (Theorem 18), so `k`-MCSs coincide
    /// with MCSs for large enough `k`.
    pub fn is_acyclic(&self) -> bool {
        let graph = self.dependency_graph();
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            InProgress,
            Done,
        }
        fn visit(
            p: Pred,
            graph: &BTreeMap<Pred, BTreeSet<Pred>>,
            marks: &mut BTreeMap<Pred, Mark>,
        ) -> bool {
            match marks.get(&p) {
                Some(Mark::InProgress) => return false,
                Some(Mark::Done) => return true,
                None => {}
            }
            marks.insert(p, Mark::InProgress);
            if let Some(succs) = graph.get(&p) {
                for &s in succs {
                    if !visit(s, graph, marks) {
                        return false;
                    }
                }
            }
            marks.insert(p, Mark::Done);
            true
        }
        let mut marks = BTreeMap::new();
        graph.keys().all(|&p| visit(p, &graph, &mut marks))
    }

    /// `true` iff the set is **weakly acyclic** in the sense of data
    /// exchange (Fagin, Kolaitis, Miller, Popa — the paper's footnote 3
    /// notes this relaxation of acyclicity still bounds MCS size).
    ///
    /// Each statement `Compl(A; G)` is read as the dependency `A → G`:
    /// for every variable `x` of `A` at position `p` we add a *regular*
    /// edge `p → q` for every occurrence of `x` in `G` at position `q`,
    /// and a *special* edge `p → q'` for every position `q'` of `G`
    /// holding a variable that does not occur in `A` (a "fresh" variable
    /// the specialization search must invent). The set is weakly acyclic
    /// iff the position graph has no cycle through a special edge.
    pub fn is_weakly_acyclic(&self) -> bool {
        use std::collections::BTreeMap as Map;
        type Position = (Pred, usize);
        // edges[p] = set of (target, is_special).
        let mut edges: Map<Position, BTreeSet<(Position, bool)>> = Map::new();
        for c in &self.statements {
            let head_vars: BTreeSet<Var> = c.head.vars().collect();
            let mut head_positions: Map<Var, Vec<Position>> = Map::new();
            for (i, &t) in c.head.args.iter().enumerate() {
                if let Some(v) = t.as_var() {
                    head_positions.entry(v).or_default().push((c.head.pred, i));
                }
            }
            for g in &c.condition {
                for (j, &t) in g.args.iter().enumerate() {
                    let Some(v) = t.as_var() else { continue };
                    let target = (g.pred, j);
                    if head_vars.contains(&v) {
                        // Regular edge from every head position of v.
                        for &p in &head_positions[&v] {
                            edges.entry(p).or_default().insert((target, false));
                        }
                    } else {
                        // Special edge from every head position of every
                        // head variable (the fresh variable is invented
                        // whenever the statement fires).
                        for positions in head_positions.values() {
                            for &p in positions {
                                edges.entry(p).or_default().insert((target, true));
                            }
                        }
                    }
                }
            }
        }
        // Weak acyclicity: no strongly connected component of the position
        // graph contains a special edge. Check via DFS for each special
        // edge (u, v): reject if v reaches u.
        fn reaches(
            from: Position,
            to: Position,
            edges: &Map<Position, BTreeSet<(Position, bool)>>,
            seen: &mut BTreeSet<Position>,
        ) -> bool {
            if from == to {
                return true;
            }
            if !seen.insert(from) {
                return false;
            }
            edges
                .get(&from)
                .is_some_and(|succ| succ.iter().any(|&(next, _)| reaches(next, to, edges, seen)))
        }
        for (&u, succ) in &edges {
            for &(v, special) in succ {
                if special && reaches(v, u, &edges, &mut BTreeSet::new()) {
                    return false;
                }
            }
        }
        true
    }

    /// The Theorem 18 bound on the number of atoms in any MCS of `q`:
    /// `|Q| · (M + M² + … + M^s)` where `M` is the maximum statement size
    /// and `s` the number of relation names in the set. Returns `None` if
    /// the set is cyclic (no bound exists in general — Theorem 17).
    ///
    /// Saturates at `usize::MAX` instead of overflowing.
    pub fn mcs_size_bound(&self, q: &Query) -> Option<usize> {
        if !self.is_acyclic() {
            return None;
        }
        let s = self.signature().len();
        let m = self
            .statements
            .iter()
            .map(TcStatement::size)
            .max()
            .unwrap_or(0);
        let mut total: usize = 0;
        let mut power: usize = 1;
        for _ in 0..s {
            power = power.saturating_mul(m);
            total = total.saturating_add(power);
        }
        Some(q.size().saturating_mul(total).max(q.size()))
    }
}

impl FromIterator<TcStatement> for TcSet {
    fn from_iter<I: IntoIterator<Item = TcStatement>>(iter: I) -> Self {
        TcSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::Term;

    /// Builds the paper's running-example statements
    /// {C_sp, C_pb, C_enp} (Example 1).
    pub(crate) fn school_tcs(v: &mut Vocabulary) -> TcSet {
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let learns = v.pred("learns", 2);
        let (n, c, s, t, d) = (v.var("N"), v.var("C"), v.var("S"), v.var("T"), v.var("D"));
        let (primary, merano, english) = (v.cst("primary"), v.cst("merano"), v.cst("english"));
        TcSet::new(vec![
            // C_sp: Compl(school(S, primary, D); true)
            TcStatement::new(
                Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Var(d)]),
                vec![],
            ),
            // C_pb: Compl(pupil(N, C, S); school(S, T, merano))
            TcStatement::new(
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                vec![Atom::new(
                    school,
                    vec![Term::Var(s), Term::Var(t), Term::Cst(merano)],
                )],
            ),
            // C_enp: Compl(learns(N, english); pupil(N, C, S), school(S, primary, D))
            TcStatement::new(
                Atom::new(learns, vec![Term::Var(n), Term::Cst(english)]),
                vec![
                    Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                    Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Var(d)]),
                ],
            ),
        ])
    }

    #[test]
    fn associated_query_has_head_atom_first() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let c_pb = &tcs.statements()[1];
        let q = c_pb.associated_query();
        assert_eq!(q.body.len(), 2);
        assert_eq!(q.body[0], c_pb.head);
        assert_eq!(q.head, c_pb.head.args);
        assert!(q.is_safe());
    }

    #[test]
    fn rename_apart_refreshes_all_vars() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let c_enp = tcs.statements()[2].clone();
        let renamed = c_enp.rename_apart(&mut v);
        let old = c_enp.all_vars();
        for var in renamed.all_vars() {
            assert!(!old.contains(&var));
        }
        // Shared variables stay shared: N occurs in head and condition.
        assert_eq!(renamed.head.args[0], renamed.condition[0].args[0]);
    }

    #[test]
    fn signature_and_dependency_graph() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let learns = v.pred("learns", 2);
        assert_eq!(tcs.signature(), BTreeSet::from([pupil, school, learns]));
        let graph = tcs.dependency_graph();
        assert_eq!(graph[&learns], BTreeSet::from([pupil, school]));
        assert_eq!(graph[&pupil], BTreeSet::from([school]));
        assert_eq!(graph[&school], BTreeSet::new());
    }

    #[test]
    fn school_tcs_is_acyclic() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        assert!(tcs.is_acyclic());
    }

    #[test]
    fn flight_tcs_is_cyclic() {
        // Compl(conn(X, Y); conn(Y, Z)) from Theorem 17.
        let mut v = Vocabulary::new();
        let conn = v.pred("conn", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let tcs = TcSet::new(vec![TcStatement::new(
            Atom::new(conn, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(conn, vec![Term::Var(y), Term::Var(z)])],
        )]);
        assert!(!tcs.is_acyclic());
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(conn, vec![Term::Var(x), Term::Var(y)])],
        );
        assert_eq!(tcs.mcs_size_bound(&q), None);
    }

    #[test]
    fn weak_acyclicity_refines_acyclicity() {
        let mut v = Vocabulary::new();
        // Acyclic implies weakly acyclic.
        let school = school_tcs(&mut v);
        assert!(school.is_acyclic());
        assert!(school.is_weakly_acyclic());

        // Compl(p(X, Y); p(Y, X)): cyclic at the relation level, but no
        // fresh variables — weakly acyclic (footnote 3's motivating case).
        let p = v.pred("p", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let swap = TcSet::new(vec![TcStatement::new(
            Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(p, vec![Term::Var(y), Term::Var(x)])],
        )]);
        assert!(!swap.is_acyclic());
        assert!(swap.is_weakly_acyclic());

        // The flight statement invents a fresh variable on a cycle: not
        // weakly acyclic (and indeed MCSs are unbounded, Theorem 17).
        let conn = v.pred("conn", 2);
        let z = v.var("Z");
        let flight = TcSet::new(vec![TcStatement::new(
            Atom::new(conn, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(conn, vec![Term::Var(y), Term::Var(z)])],
        )]);
        assert!(!flight.is_acyclic());
        assert!(!flight.is_weakly_acyclic());
    }

    #[test]
    fn weak_acyclicity_detects_fresh_variable_cycles_across_statements() {
        // Compl(p(X); q(X, Z)) and Compl(q(X, Y); p(Y)): the fresh Z flows
        // into q's second column, which feeds back into p via the second
        // statement — a special edge on a cycle.
        let mut v = Vocabulary::new();
        let p = v.pred("p", 1);
        let q = v.pred("q", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let set = TcSet::new(vec![
            TcStatement::new(
                Atom::new(p, vec![Term::Var(x)]),
                vec![Atom::new(q, vec![Term::Var(x), Term::Var(z)])],
            ),
            TcStatement::new(
                Atom::new(q, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(p, vec![Term::Var(y)])],
            ),
        ]);
        assert!(!set.is_acyclic());
        assert!(!set.is_weakly_acyclic());
    }

    #[test]
    fn mcs_size_bound_formula() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let learns = v.pred("learns", 2);
        let (n, l) = (v.var("N"), v.var("L"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(n)],
            vec![Atom::new(learns, vec![Term::Var(n), Term::Var(l)])],
        );
        // s = 3, M = 3 (C_enp has head + 2 condition atoms), |Q| = 1:
        // bound = 1 * (3 + 9 + 27) = 39.
        assert_eq!(tcs.mcs_size_bound(&q), Some(39));
    }

    #[test]
    fn display_statement() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        assert_eq!(
            tcs.statements()[0].display(&v).to_string(),
            "compl school(S, primary, D) ; true"
        );
        assert_eq!(
            tcs.statements()[1].display(&v).to_string(),
            "compl pupil(N, C, S) ; school(S, T, merano)"
        );
    }

    #[test]
    fn empty_set_properties() {
        let tcs = TcSet::default();
        assert!(tcs.is_empty());
        assert!(tcs.is_acyclic());
        assert!(tcs.signature().is_empty());
    }
}
