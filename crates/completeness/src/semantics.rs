//! Model-theoretic semantics: incomplete databases, TCS satisfaction, and
//! query completeness over a concrete ideal/available pair.
//!
//! The reasoning algorithms of this crate work symbolically (Theorem 3 and
//! onward); this module implements the definitions they abstract, so that
//! soundness can be tested: whenever the reasoner claims `C ⊨ Compl(Q)`,
//! every generated incomplete database satisfying `C` must satisfy
//! `Compl(Q)`.

use std::fmt;

use magik_relalg::{answers, AnswerSet, EvalError, Fact, Instance, Query};

use crate::tc_op::tc_apply;
use crate::tcs::{TcSet, TcStatement};

/// An incomplete database `𝒟 = (Dⁱ, Dᵃ)` with `Dᵃ ⊆ Dⁱ` (Motro-style
/// "partial database", Section 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncompleteDatabase {
    ideal: Instance,
    available: Instance,
}

/// Error constructing an [`IncompleteDatabase`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotASubset {
    /// A fact of the available state missing from the ideal state.
    pub witness: Fact,
}

impl fmt::Display for NotASubset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "available state is not contained in the ideal state (offending relation id {})",
            self.witness.pred.index()
        )
    }
}

impl std::error::Error for NotASubset {}

impl IncompleteDatabase {
    /// Creates an incomplete database, validating `Dᵃ ⊆ Dⁱ`.
    pub fn new(ideal: Instance, available: Instance) -> Result<Self, NotASubset> {
        if let Some(witness) = available.iter_facts().find(|f| !ideal.contains(f)) {
            return Err(NotASubset { witness });
        }
        Ok(IncompleteDatabase { ideal, available })
    }

    /// The ideal state `Dⁱ`.
    pub fn ideal(&self) -> &Instance {
        &self.ideal
    }

    /// The available state `Dᵃ`.
    pub fn available(&self) -> &Instance {
        &self.available
    }

    /// `𝒟 ⊨ Compl(R(s̄); G)`: every ideal tuple matching the statement is
    /// available, i.e. `Q_C(Dⁱ) ⊆ R(Dᵃ)`.
    pub fn satisfies(&self, c: &TcStatement) -> bool {
        let q = c.associated_query();
        let matched = answers(&q, &self.ideal).expect("associated queries are safe");
        matched
            .into_iter()
            .all(|tuple| self.available.contains(&Fact::new(c.head.pred, tuple)))
    }

    /// `𝒟 ⊨ C` for a whole set.
    pub fn satisfies_all(&self, tcs: &TcSet) -> bool {
        tcs.statements().iter().all(|c| self.satisfies(c))
    }

    /// `𝒟 ⊨ Compl(Q)`: the query returns the same answers over the ideal
    /// and the available state.
    pub fn query_complete(&self, q: &Query) -> Result<bool, EvalError> {
        let ideal: AnswerSet = answers(q, &self.ideal)?;
        let avail: AnswerSet = answers(q, &self.available)?;
        // Dᵃ ⊆ Dⁱ and monotonicity make avail ⊆ ideal automatic; equality
        // reduces to the ⊆ direction.
        debug_assert!(avail.is_subset(&ideal));
        Ok(ideal == avail)
    }

    /// The *minimal completion* of an ideal state under `C`: the pair
    /// `(D, T_C(D))`, which satisfies `C` with the smallest possible
    /// available state (Proposition 2). This is the canonical way to build
    /// adversarial instances in tests.
    pub fn minimal_completion(ideal: Instance, tcs: &TcSet) -> Self {
        let available = tc_apply(tcs, &ideal);
        IncompleteDatabase { ideal, available }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{q_pbl, q_ppb, school_tcs};
    use magik_relalg::Vocabulary;

    fn fact(v: &mut Vocabulary, name: &str, arity: usize, args: &[&str]) -> Fact {
        let p = v.pred(name, arity);
        Fact::new(p, args.iter().map(|s| v.cst(s)).collect())
    }

    #[test]
    fn available_must_be_subset_of_ideal() {
        let mut v = Vocabulary::new();
        let extra = fact(&mut v, "p", 1, &["a"]);
        let mut available = Instance::new();
        available.insert(extra.clone());
        let err = IncompleteDatabase::new(Instance::new(), available).unwrap_err();
        assert_eq!(err.witness, extra);
    }

    #[test]
    fn paper_example_1_satisfaction() {
        // D^a = {school(goethe, primary, merano)},
        // D^i = D^a ∪ {pupil(john, 1, goethe)}:
        // satisfies C_sp but not C_pb.
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let school_fact = fact(&mut v, "school", 3, &["goethe", "primary", "merano"]);
        let pupil_fact = fact(&mut v, "pupil", 3, &["john", "1", "goethe"]);
        let mut available = Instance::new();
        available.insert(school_fact.clone());
        let mut ideal = available.clone();
        ideal.insert(pupil_fact);
        let db = IncompleteDatabase::new(ideal, available).unwrap();
        let c_sp = &tcs.statements()[0];
        let c_pb = &tcs.statements()[1];
        assert!(db.satisfies(c_sp));
        assert!(!db.satisfies(c_pb));
        assert!(!db.satisfies_all(&tcs));
    }

    #[test]
    fn query_completeness_over_concrete_pair() {
        let mut v = Vocabulary::new();
        let school_fact = fact(&mut v, "school", 3, &["goethe", "primary", "merano"]);
        let pupil_fact = fact(&mut v, "pupil", 3, &["john", "c1", "goethe"]);
        let mut ideal = Instance::new();
        ideal.insert(school_fact.clone());
        ideal.insert(pupil_fact.clone());

        // Complete pair: available = ideal.
        let full = IncompleteDatabase::new(ideal.clone(), ideal.clone()).unwrap();
        let q = q_ppb(&mut v);
        assert!(full.query_complete(&q).unwrap());

        // Missing pupil: query loses an answer.
        let mut available = Instance::new();
        available.insert(school_fact);
        let partial = IncompleteDatabase::new(ideal, available).unwrap();
        assert!(!partial.query_complete(&q).unwrap());
    }

    #[test]
    fn minimal_completion_satisfies_the_set() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let mut ideal = Instance::new();
        ideal.insert(fact(&mut v, "school", 3, &["goethe", "primary", "merano"]));
        ideal.insert(fact(&mut v, "pupil", 3, &["john", "c1", "goethe"]));
        ideal.insert(fact(&mut v, "learns", 2, &["john", "german"]));
        let db = IncompleteDatabase::minimal_completion(ideal, &tcs);
        assert!(db.satisfies_all(&tcs));
        // The german learner is not covered by any statement, so the
        // minimal completion drops it.
        let learns = v.pred("learns", 2);
        assert!(db.ideal().relation(learns).is_some());
        assert!(db.available().relation(learns).is_none());
    }

    #[test]
    fn example_motivating_incompleteness_of_q_pbl() {
        // Build an ideal state where some pupil learns a non-English
        // language; the minimal completion satisfies all statements but
        // Q_pbl loses that answer, witnessing C ⊭ Compl(Q_pbl).
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let mut ideal = Instance::new();
        ideal.insert(fact(&mut v, "school", 3, &["goethe", "primary", "merano"]));
        ideal.insert(fact(&mut v, "pupil", 3, &["john", "c1", "goethe"]));
        ideal.insert(fact(&mut v, "learns", 2, &["john", "german"]));
        let db = IncompleteDatabase::minimal_completion(ideal, &tcs);
        assert!(db.satisfies_all(&tcs));
        let q = q_pbl(&mut v);
        assert!(!db.query_complete(&q).unwrap());
        // Q_ppb, in contrast, stays complete on this pair.
        let q2 = q_ppb(&mut v);
        assert!(db.query_complete(&q2).unwrap());
    }
}
