//! Query answering with completeness guarantees.
//!
//! The introduction of the paper motivates approximation with two use
//! cases: *searching* (don't miss anything — generalize) and *statistics*
//! (publish only what is final — specialize). This module packages both
//! into an answering API over a concrete available database `Dᵃ` that is
//! assumed to satisfy the statement set:
//!
//! * **certain answers** — `Q(Dᵃ)`: by monotonicity and `Dᵃ ⊆ Dⁱ`, every
//!   one of them is an ideal answer; if `C ⊨ Compl(Q)` they are *all* of
//!   the ideal answers;
//! * **possible answers** — `MCG(Dᵃ) \ Q(Dᵃ)`: since the ideal answers
//!   of `Q` are contained in those of its (complete) MCG, any answer
//!   that is not in this envelope is certainly *not* an ideal answer;
//! * **count bounds** — `[|Q(Dᵃ)|, |MCG(Dᵃ)|]` brackets the true count
//!   `|Q(Dⁱ)|` for every ideal state compatible with the statements;
//! * **publishable counts** — the k-MCSs evaluated over `Dᵃ` give exact
//!   sub-statistics (each equals its ideal count).

use magik_relalg::{answers, AnswerSet, EvalError, Instance, Query, Vocabulary};

use crate::check::is_complete;
use crate::generalize::mcg;
use crate::specialize::{k_mcs, KMcsOptions};
use crate::tcs::TcSet;

/// Answers of a query over an available state, classified by certainty.
#[derive(Debug, Clone)]
pub struct AnswerReport {
    /// Answers guaranteed to be ideal answers of the query.
    pub certain: AnswerSet,
    /// Further tuples that *may* be ideal answers: the MCG envelope minus
    /// the certain answers. `None` when the query has no complete
    /// generalization (the envelope is unbounded).
    pub possible: Option<AnswerSet>,
    /// `true` iff `C ⊨ Compl(Q)`: the certain answers are exactly the
    /// ideal answers.
    pub exact: bool,
}

/// Classifies the answers of `q` over the available state `db` (which is
/// assumed to satisfy `tcs`).
///
/// ```
/// use magik_relalg::Vocabulary;
/// use magik_parser::parse_document;
/// use magik_completeness::classify_answers;
///
/// let mut v = Vocabulary::new();
/// let doc = parse_document(
///     "compl school(S, primary, D) ; true.
///      compl pupil(N, C, S) ; school(S, T, merano).
///      compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).
///      query q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).
///      fact school(goethe, primary, merano).
///      fact pupil(john, c1, goethe).
///      fact pupil(mary, c1, goethe).
///      fact learns(john, english).",
///     &mut v,
/// ).unwrap();
///
/// let report = classify_answers(&doc.queries[0], &doc.tcs, &doc.facts).unwrap();
/// assert_eq!(report.certain.len(), 1);                   // john, final
/// assert_eq!(report.possible.unwrap().len(), 1);         // mary, pending
/// assert!(!report.exact);
/// ```
pub fn classify_answers(q: &Query, tcs: &TcSet, db: &Instance) -> Result<AnswerReport, EvalError> {
    let certain = answers(q, db)?;
    let exact = is_complete(q, tcs);
    let possible = if exact {
        Some(AnswerSet::new())
    } else {
        match mcg(q, tcs) {
            Some(envelope) => {
                let env_answers = answers(&envelope, db)?;
                Some(env_answers.difference(&certain).cloned().collect())
            }
            None => None,
        }
    };
    Ok(AnswerReport {
        certain,
        possible,
        exact,
    })
}

/// Bounds on the ideal answer count of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountBounds {
    /// `|Q(Dᵃ)| ≤ |Q(Dⁱ)|` always.
    pub lower: usize,
    /// `|Q(Dⁱ)| ≤ |MCG(Dᵃ)|` when the MCG exists.
    pub upper: Option<usize>,
    /// `true` iff lower is the exact ideal count (`C ⊨ Compl(Q)`).
    pub exact: bool,
}

/// Computes certain bounds on `|Q(Dⁱ)|` from the available state alone.
pub fn count_bounds(q: &Query, tcs: &TcSet, db: &Instance) -> Result<CountBounds, EvalError> {
    let report = classify_answers(q, tcs, db)?;
    let lower = report.certain.len();
    let upper = if report.exact {
        Some(lower)
    } else {
        report.possible.map(|p| lower + p.len())
    };
    Ok(CountBounds {
        lower,
        upper,
        exact: report.exact,
    })
}

/// A guaranteed-exact partial statistic: a maximal complete
/// specialization together with its (final) answer count over the
/// available state.
#[derive(Debug, Clone)]
pub struct PublishableCount {
    /// The complete specialization.
    pub query: Query,
    /// Its answer count — equal to the ideal count by completeness.
    pub count: usize,
}

/// Evaluates every k-MCS of `q` over the available state: each row is a
/// partial statistic that can be published immediately (its count cannot
/// change as missing data arrives).
pub fn publishable_counts(
    q: &Query,
    tcs: &TcSet,
    vocab: &mut Vocabulary,
    db: &Instance,
    k: usize,
) -> Result<Vec<PublishableCount>, EvalError> {
    let outcome = k_mcs(q, tcs, vocab, KMcsOptions::new(k));
    let mut rows = Vec::with_capacity(outcome.queries.len());
    for m in outcome.queries {
        let count = answers(&m, db)?.len();
        rows.push(PublishableCount { query: m, count });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::IncompleteDatabase;
    use crate::testutil::{q_pbl, q_ppb, school_tcs};
    use magik_relalg::Fact;

    fn scenario(v: &mut Vocabulary) -> IncompleteDatabase {
        let school = v.pred("school", 3);
        let pupil = v.pred("pupil", 3);
        let learns = v.pred("learns", 2);
        let mut ideal = Instance::new();
        ideal.insert(Fact::new(
            school,
            vec![v.cst("goethe"), v.cst("primary"), v.cst("merano")],
        ));
        for (name, lang) in [("ann", "english"), ("bob", "german"), ("cli", "english")] {
            ideal.insert(Fact::new(
                pupil,
                vec![v.cst(name), v.cst("c1"), v.cst("goethe")],
            ));
            ideal.insert(Fact::new(learns, vec![v.cst(name), v.cst(lang)]));
        }
        IncompleteDatabase::minimal_completion(ideal, &school_tcs(v))
    }

    #[test]
    fn certain_answers_are_ideal_answers() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let db = scenario(&mut v);
        let q = q_pbl(&mut v);
        let report = classify_answers(&q, &tcs, db.available()).unwrap();
        let ideal = answers(&q, db.ideal()).unwrap();
        assert!(report.certain.is_subset(&ideal));
        assert!(!report.exact);
        // ann and cli are certain (English learners); bob is possible.
        assert_eq!(report.certain.len(), 2);
        let possible = report.possible.unwrap();
        assert_eq!(possible.len(), 1);
        assert!(possible.contains(&vec![v.cst("bob")]));
    }

    #[test]
    fn exact_report_for_complete_queries() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let db = scenario(&mut v);
        let q = q_ppb(&mut v);
        let report = classify_answers(&q, &tcs, db.available()).unwrap();
        assert!(report.exact);
        assert_eq!(report.possible, Some(AnswerSet::new()));
        assert_eq!(report.certain, answers(&q, db.ideal()).unwrap());
    }

    #[test]
    fn bounds_bracket_the_true_count() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let db = scenario(&mut v);
        let q = q_pbl(&mut v);
        let bounds = count_bounds(&q, &tcs, db.available()).unwrap();
        let truth = answers(&q, db.ideal()).unwrap().len();
        assert!(bounds.lower <= truth);
        assert!(truth <= bounds.upper.unwrap());
        assert_eq!((bounds.lower, bounds.upper), (2, Some(3)));
        assert!(!bounds.exact);

        let complete_q = q_ppb(&mut v);
        let exact = count_bounds(&complete_q, &tcs, db.available()).unwrap();
        assert!(exact.exact);
        assert_eq!(exact.upper, Some(exact.lower));
    }

    #[test]
    fn unbounded_envelope_when_no_mcg_exists() {
        let mut v = Vocabulary::new();
        let tcs = TcSet::default();
        let db = Instance::new();
        let q = q_pbl(&mut v);
        let report = classify_answers(&q, &tcs, &db).unwrap();
        assert!(!report.exact);
        assert_eq!(report.possible, None);
        let bounds = count_bounds(&q, &tcs, &db).unwrap();
        assert_eq!(bounds.upper, None);
    }

    #[test]
    fn publishable_counts_are_exact() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let db = scenario(&mut v);
        let q = q_pbl(&mut v);
        let rows = publishable_counts(&q, &tcs, &mut v, db.available(), 0).unwrap();
        assert_eq!(rows.len(), 1);
        for row in &rows {
            let truth = answers(&row.query, db.ideal()).unwrap().len();
            assert_eq!(row.count, truth);
        }
        // The English-learner statistic counts ann and cli.
        assert_eq!(rows[0].count, 2);
    }
}
