//! Complete unifiers (Definition 20) and their enumeration.
//!
//! A substitution γ is a *complete unifier* for `Q` and `C` if every body
//! atom `A` of `Q` unifies with the (renamed-apart) head of some statement
//! `Compl(A'; G)` and the instantiated condition embeds into the
//! instantiated body: `γA = γA'` and `γG ⊆ γB`. Applying a complete
//! unifier yields a complete query (Proposition 21), and every complete
//! instantiation is subsumed by one obtained from a most general complete
//! unifier (Theorem 23).
//!
//! Enumeration is a backtracking search over *matching configurations*:
//! for every body atom a statement whose head it unifies with, and for
//! every condition atom of that statement a body atom it collapses onto.
//! The search shares one [`Unifier`] and prunes on unification failure —
//! the discipline a Prolog engine applies when running Algorithm 2.

use magik_relalg::{Atom, Query, Substitution, Term, Var, Vocabulary};
use magik_unify::Unifier;

use crate::tcs::{TcSet, TcStatement};

/// A stack-like pool of reusable variables.
///
/// The unifier search renames a statement apart on every attempt; minting
/// a fresh interned variable per attempt would grow the vocabulary (and
/// its string arena) without bound on long runs — the Rust analogue of
/// the paper's Prolog implementation running out of memory. Instead,
/// attempts draw variables from this pool and release them on
/// backtracking, so the vocabulary only ever holds as many scratch
/// variables as the deepest single search path needs.
///
/// Reuse is sound because (a) bindings are rolled back before a variable
/// is released and (b) variables only need to be distinct *within* one
/// candidate configuration, never across independent ones.
///
/// A pool is `Clone` so that a pre-filled pool (whose variables live in
/// the shared vocabulary) can be handed to parallel search tasks: each
/// task clones the pool and draws from the pre-minted stock without ever
/// touching the vocabulary.
#[derive(Debug, Clone, Default)]
pub(crate) struct VarPool {
    vars: Vec<Var>,
    top: usize,
    hint: &'static str,
}

impl VarPool {
    pub(crate) fn new(hint: &'static str) -> Self {
        VarPool {
            vars: Vec::new(),
            top: 0,
            hint,
        }
    }

    /// Current stack position; pass to [`VarPool::release`] to free
    /// everything drawn after this point.
    pub(crate) fn mark(&self) -> usize {
        self.top
    }

    pub(crate) fn release(&mut self, mark: usize) {
        self.top = mark;
    }

    pub(crate) fn draw(&mut self, vocab: &mut Vocabulary) -> Var {
        if self.top == self.vars.len() {
            self.vars.push(vocab.fresh_var(self.hint));
        }
        let v = self.vars[self.top];
        self.top += 1;
        v
    }
}

/// Renames a statement apart using pool variables (drawn, not minted).
fn rename_with_pool(c: &TcStatement, pool: &mut VarPool, vocab: &mut Vocabulary) -> TcStatement {
    let renaming: Substitution = c
        .all_vars()
        .into_iter()
        .map(|v| (v, Term::Var(pool.draw(vocab))))
        .collect();
    TcStatement {
        head: renaming.apply_atom(&c.head),
        condition: c.condition.iter().map(|a| renaming.apply_atom(a)).collect(),
    }
}

/// Counters describing one enumeration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnifierSearchStats {
    /// Atom-level unification attempts.
    pub unify_calls: u64,
    /// Complete configurations reached (one per unifier visited).
    pub configurations: u64,
}

/// Bounded enumeration control: the search aborts once `unify_calls`
/// exceeds the budget.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SearchBudget {
    pub max_unify_calls: u64,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_unify_calls: u64::MAX,
        }
    }
}

struct Search<'a> {
    body: &'a [Atom],
    statements: &'a [TcStatement],
    vocab: &'a mut Vocabulary,
    pool: &'a mut VarPool,
    /// Use predicate pre-filtering when selecting candidate statements and
    /// body atoms (the optimized engine). Without it the search still
    /// succeeds/fails identically — unification rejects mismatched
    /// predicates — but performs many more calls, like a Prolog program
    /// without clause indexing.
    indexed: bool,
    u: Unifier,
    stats: UnifierSearchStats,
    budget: SearchBudget,
    exhausted: bool,
}

impl Search<'_> {
    fn over_budget(&mut self) -> bool {
        if self.stats.unify_calls > self.budget.max_unify_calls {
            self.exhausted = true;
            return true;
        }
        false
    }

    /// Chooses a statement for body atom `i`; `visit` is called on every
    /// complete configuration. Returns `false` to stop the whole search.
    fn atom_level(&mut self, i: usize, visit: &mut dyn FnMut(&Unifier) -> bool) -> bool {
        if i == self.body.len() {
            self.stats.configurations += 1;
            return visit(&self.u);
        }
        if self.over_budget() {
            return false;
        }
        let atom = &self.body[i];
        for si in 0..self.statements.len() {
            if self.indexed && self.statements[si].head.pred != atom.pred {
                continue;
            }
            let cp = self.u.checkpoint();
            let pool_mark = self.pool.mark();
            // Each *use* of a statement gets its own (pooled) variables.
            let renamed = rename_with_pool(&self.statements[si], self.pool, self.vocab);
            self.stats.unify_calls += 1;
            if self.u.unify_atoms(&renamed.head, atom)
                && !self.cond_level(&renamed.condition, 0, i, visit)
            {
                self.u.rollback(cp);
                self.pool.release(pool_mark);
                return false;
            }
            self.u.rollback(cp);
            self.pool.release(pool_mark);
        }
        true
    }

    /// Chooses a body atom for condition atom `j` of the statement picked
    /// for body atom `next`, then continues with the next body atom.
    fn cond_level(
        &mut self,
        condition: &[Atom],
        j: usize,
        next: usize,
        visit: &mut dyn FnMut(&Unifier) -> bool,
    ) -> bool {
        if j == condition.len() {
            return self.atom_level(next + 1, visit);
        }
        if self.over_budget() {
            return false;
        }
        for b in self.body {
            if self.indexed && b.pred != condition[j].pred {
                continue;
            }
            let cp = self.u.checkpoint();
            self.stats.unify_calls += 1;
            if self.u.unify_atoms(&condition[j], b)
                && !self.cond_level(condition, j + 1, next, visit)
            {
                self.u.rollback(cp);
                return false;
            }
            self.u.rollback(cp);
        }
        true
    }
}

/// Enumerates the most general complete unifiers of `q` and `tcs` — the
/// paper's `mgu(Q, 2^C)` — calling `visit` with each (restricted to the
/// variables of `q`). `visit` returns `false` to stop. Returns the stats
/// and whether the search ran to exhaustion.
pub(crate) fn for_each_complete_unifier(
    q: &Query,
    tcs: &TcSet,
    vocab: &mut Vocabulary,
    pool: &mut VarPool,
    indexed: bool,
    budget: SearchBudget,
    visit: &mut dyn FnMut(&Substitution) -> bool,
) -> (UnifierSearchStats, bool) {
    let q_vars = q.all_vars();
    let mut search = Search {
        body: &q.body,
        statements: tcs.statements(),
        vocab,
        pool,
        indexed,
        u: Unifier::new(),
        stats: UnifierSearchStats::default(),
        budget,
        exhausted: false,
    };
    let mut adapter = |u: &Unifier| {
        let gamma = u.to_substitution().restrict(|v| q_vars.contains(&v));
        visit(&gamma)
    };
    search.atom_level(0, &mut adapter);
    let exhausted = search.exhausted;
    (search.stats, !exhausted)
}

/// Collects all most general complete unifiers of `q` and `tcs`
/// (duplicates possible: distinct configurations may yield equal
/// substitutions).
pub fn complete_unifiers(q: &Query, tcs: &TcSet, vocab: &mut Vocabulary) -> Vec<Substitution> {
    let mut out = Vec::new();
    let mut pool = VarPool::new("T");
    for_each_complete_unifier(
        q,
        tcs,
        vocab,
        &mut pool,
        true,
        SearchBudget::default(),
        &mut |g| {
            out.push(g.clone());
            true
        },
    );
    out
}

/// Like [`complete_unifiers`] but without predicate indexing: every
/// statement is tried for every atom and every body atom for every
/// condition atom, with unification failure as the only pruning. Produces
/// the same set; exposed to quantify the cost of indexing (ablation A4).
pub fn complete_unifiers_naive(
    q: &Query,
    tcs: &TcSet,
    vocab: &mut Vocabulary,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    let mut pool = VarPool::new("T");
    for_each_complete_unifier(
        q,
        tcs,
        vocab,
        &mut pool,
        false,
        SearchBudget::default(),
        &mut |g| {
            out.push(g.clone());
            true
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::is_complete;
    use crate::testutil::{flight, q_pbl, school_tcs, table1};
    use magik_relalg::{Term, Vocabulary};

    #[test]
    fn example_22_unifier_is_found() {
        // γ = {L -> english} for Q_pbl and the school statements.
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let l = v.var("L");
        let english = v.cst("english");
        let unifiers = complete_unifiers(&q, &tcs, &mut v);
        assert!(!unifiers.is_empty());
        assert!(
            unifiers
                .iter()
                .any(|g| g.apply_term(Term::Var(l)) == Term::Cst(english)),
            "the L -> english unifier must be found"
        );
        // Every returned unifier yields a complete query (Proposition 21).
        for g in &unifiers {
            assert!(is_complete(&g.apply_query(&q), &tcs));
        }
    }

    #[test]
    fn flight_example_unifier_merges_the_cycle() {
        // For Q(X) <- conn(X, Y), the only complete unifier merges X and Y.
        let mut v = Vocabulary::new();
        let (tcs, q) = flight(&mut v);
        let unifiers = complete_unifiers(&q, &tcs, &mut v);
        assert!(!unifiers.is_empty());
        for g in &unifiers {
            let qi = g.apply_query(&q);
            assert_eq!(qi.body[0].args[0], qi.body[0].args[1], "X and Y merged");
            assert!(is_complete(&qi, &tcs));
        }
    }

    #[test]
    fn table1_query_has_no_complete_unifier() {
        // learns(N, L) must match C_enp, whose condition needs pupil and
        // school atoms that are not in the body.
        let mut v = Vocabulary::new();
        let (tcs, q) = table1(&mut v);
        assert!(complete_unifiers(&q, &tcs, &mut v).is_empty());
    }

    #[test]
    fn indexed_and_naive_enumeration_agree() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let indexed: Vec<_> = complete_unifiers(&q, &tcs, &mut v)
            .iter()
            .map(|g| g.apply_query(&q))
            .collect();
        let naive: Vec<_> = complete_unifiers_naive(&q, &tcs, &mut v)
            .iter()
            .map(|g| g.apply_query(&q))
            .collect();
        assert_eq!(indexed, naive);
    }

    #[test]
    fn naive_enumeration_performs_more_unify_calls() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let run = |v: &mut Vocabulary, indexed: bool| {
            let mut pool = VarPool::new("T");
            let (stats, complete) = for_each_complete_unifier(
                &q,
                &tcs,
                v,
                &mut pool,
                indexed,
                SearchBudget::default(),
                &mut |_| true,
            );
            assert!(complete);
            stats
        };
        let fast = run(&mut v, true);
        let slow = run(&mut v, false);
        assert!(slow.unify_calls > fast.unify_calls);
        assert_eq!(slow.configurations, fast.configurations);
    }

    #[test]
    fn budget_aborts_search() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let mut pool = VarPool::new("T");
        let (_, complete) = for_each_complete_unifier(
            &q,
            &tcs,
            &mut v,
            &mut pool,
            true,
            SearchBudget { max_unify_calls: 1 },
            &mut |_| true,
        );
        assert!(!complete);
    }

    #[test]
    fn empty_body_has_the_identity_unifier() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = magik_relalg::Query::boolean(v.sym("t"), vec![]);
        let unifiers = complete_unifiers(&q, &tcs, &mut v);
        assert_eq!(unifiers.len(), 1);
        assert!(unifiers[0].is_identity());
    }

    #[test]
    fn unifier_respects_condition_embedding() {
        // Compl(r(X); s(X)) and q() <- r(A), s(B): the condition forces
        // A = B.
        let mut v = Vocabulary::new();
        let r = v.pred("r", 1);
        let s = v.pred("s", 1);
        let (x, a, b) = (v.var("X"), v.var("A"), v.var("B"));
        let tcs = TcSet::new(vec![
            crate::tcs::TcStatement::new(
                Atom::new(r, vec![Term::Var(x)]),
                vec![Atom::new(s, vec![Term::Var(x)])],
            ),
            crate::tcs::TcStatement::new(Atom::new(s, vec![Term::Var(x)]), vec![]),
        ]);
        let q = magik_relalg::Query::boolean(
            v.sym("q"),
            vec![
                Atom::new(r, vec![Term::Var(a)]),
                Atom::new(s, vec![Term::Var(b)]),
            ],
        );
        let unifiers = complete_unifiers(&q, &tcs, &mut v);
        assert!(!unifiers.is_empty());
        for g in &unifiers {
            assert_eq!(g.apply_term(Term::Var(a)), g.apply_term(Term::Var(b)));
        }
    }
}
