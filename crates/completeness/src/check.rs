//! Completeness checking (Theorem 3).
//!
//! `C ⊨ Compl(Q)` iff `θū ∈ Q(T_C(D_Q))`: freeze the query into its
//! canonical database, apply `T_C` once, and test whether the query still
//! retrieves the frozen head tuple.

use magik_relalg::{canonical_database, freeze_term, has_answer, Cst, Query, Vocabulary};

use crate::tc_op::{tc_apply, tc_apply_datalog};
use crate::tcs::TcSet;

/// Decides `C ⊨ Compl(Q)` (Theorem 3), using the direct `T_C`
/// implementation.
pub fn is_complete(q: &Query, tcs: &TcSet) -> bool {
    let db = canonical_database(q);
    let guaranteed = tc_apply(tcs, &db);
    let target: Vec<Cst> = q.head.iter().map(|&t| freeze_term(t)).collect();
    has_answer(q, &guaranteed, &target)
}

/// Decides `C ⊨ Compl(Q)` via the Section 5 Datalog encoding of `T_C`.
///
/// Computes exactly the same answer as [`is_complete`]; exposed for
/// cross-validation and benchmarking of the two engines.
pub fn is_complete_via_datalog(q: &Query, tcs: &TcSet, vocab: &mut Vocabulary) -> bool {
    let db = canonical_database(q);
    let guaranteed = tc_apply_datalog(tcs, &db, vocab);
    let target: Vec<Cst> = q.head.iter().map(|&t| freeze_term(t)).collect();
    has_answer(q, &guaranteed, &target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::IncompleteDatabase;
    use crate::tcs::TcStatement;
    use crate::testutil::{flight, q_pbl, q_ppb, school_tcs, table1};
    use magik_relalg::{Atom, Fact, Instance, Term};

    #[test]
    fn q_ppb_is_complete_example_4() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_ppb(&mut v);
        assert!(is_complete(&q, &tcs));
        assert!(is_complete_via_datalog(&q, &tcs, &mut v));
    }

    #[test]
    fn q_pbl_is_incomplete_example_1() {
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        assert!(!is_complete(&q, &tcs));
        assert!(!is_complete_via_datalog(&q, &tcs, &mut v));
    }

    #[test]
    fn q_pbl_spec_is_complete_example_5() {
        // Replacing learns(N, L) with learns(N, english) yields a complete
        // query thanks to C_enp.
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_pbl(&mut v);
        let l = v.var("L");
        let english = v.cst("english");
        let spec =
            magik_relalg::Substitution::from_pairs([(l, Term::Cst(english))]).apply_query(&q);
        assert!(is_complete(&spec, &tcs));
    }

    #[test]
    fn empty_tcs_makes_only_trivial_queries_complete() {
        let mut v = Vocabulary::new();
        let tcs = TcSet::default();
        let q = q_ppb(&mut v);
        assert!(!is_complete(&q, &tcs));
        // A query with an empty body has no completeness requirements.
        let trivial = Query::boolean(v.sym("t"), vec![]);
        assert!(is_complete(&trivial, &tcs));
    }

    #[test]
    fn unconditional_statements_make_their_relation_complete() {
        let mut v = Vocabulary::new();
        let r = v.pred("r", 2);
        let (x, y) = (v.var("X"), v.var("Y"));
        let tcs = TcSet::new(vec![TcStatement::new(
            Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
            vec![],
        )]);
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(r, vec![Term::Var(x), Term::Var(y)])],
        );
        assert!(is_complete(&q, &tcs));
    }

    #[test]
    fn flight_query_is_incomplete_theorem_17() {
        let mut v = Vocabulary::new();
        let (tcs, q) = flight(&mut v);
        assert!(!is_complete(&q, &tcs));
        // But the self-loop specialization conn(X, X) is complete.
        let conn = v.pred("conn", 2);
        let x = v.var("X");
        let self_loop = Query::new(
            v.sym("q"),
            vec![Term::Var(x)],
            vec![Atom::new(conn, vec![Term::Var(x), Term::Var(x)])],
        );
        assert!(is_complete(&self_loop, &tcs));
        assert!(is_complete_via_datalog(&self_loop, &tcs, &mut v));
    }

    #[test]
    fn table1_query_is_incomplete() {
        let mut v = Vocabulary::new();
        let (tcs, q) = table1(&mut v);
        assert!(!is_complete(&q, &tcs));
    }

    #[test]
    fn completeness_claim_is_sound_on_concrete_pair() {
        // Soundness spot check: C ⊨ Compl(Q_ppb) per the reasoner, so on a
        // concrete minimal completion Q_ppb must lose no answers.
        let mut v = Vocabulary::new();
        let tcs = school_tcs(&mut v);
        let q = q_ppb(&mut v);
        assert!(is_complete(&q, &tcs));
        let mut ideal = Instance::new();
        let school = v.pred("school", 3);
        let pupil = v.pred("pupil", 3);
        ideal.insert(Fact::new(
            school,
            vec![v.cst("goethe"), v.cst("primary"), v.cst("merano")],
        ));
        ideal.insert(Fact::new(
            pupil,
            vec![v.cst("john"), v.cst("c1"), v.cst("goethe")],
        ));
        let db = IncompleteDatabase::minimal_completion(ideal, &tcs);
        assert!(db.satisfies_all(&tcs));
        assert!(db.query_complete(&q).unwrap());
    }

    #[test]
    fn frozen_constants_do_not_clash_with_data_constants() {
        // A statement conditioned on a constant that also appears as a
        // variable name elsewhere must not confuse freezing.
        let mut v = Vocabulary::new();
        let r = v.pred("r", 1);
        let x = v.var("X");
        let x_const = v.cst("X");
        let tcs = TcSet::new(vec![TcStatement::new(
            Atom::new(r, vec![Term::Cst(x_const)]),
            vec![],
        )]);
        // q() <- r(X) is incomplete (only the constant X tuple is covered).
        let q = Query::boolean(v.sym("q"), vec![Atom::new(r, vec![Term::Var(x)])]);
        assert!(!is_complete(&q, &tcs));
        // q'() <- r("X") is complete.
        let qc = Query::boolean(v.sym("q"), vec![Atom::new(r, vec![Term::Cst(x_const)])]);
        assert!(is_complete(&qc, &tcs));
    }
}
