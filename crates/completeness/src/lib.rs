//! Query-completeness reasoning: the core contribution of
//! *Complete Approximations of Incomplete Queries* (Corman, Nutt, Savković).
//!
//! Given a conjunctive query `Q` and a set of **table-completeness
//! statements** (TCSs) describing which parts of a partially complete
//! database are guaranteed complete, this crate decides and computes:
//!
//! * whether `Q` is **complete** — all ideal answers are available
//!   ([`is_complete`], Theorem 3);
//! * the **minimal complete generalization** (MCG) of `Q` — the most
//!   specific complete query containing `Q`, unique up to equivalence
//!   ([`mcg`], Algorithm 1, via the monotone [`g_op`] operator);
//! * the **maximal complete instantiations** (MCIs) of `Q` — the most
//!   general complete queries obtained by instantiating `Q`'s variables
//!   ([`mcis`], Algorithm 2, via [complete unifiers](complete_unifiers));
//! * the **k-MCSs** of `Q` — maximal complete specializations with at most
//!   `|Q| + k` body atoms ([`k_mcs`], Algorithm 3), with both a
//!   paper-faithful naive engine and an optimized engine implementing the
//!   Section 5 optimizations.
//!
//! The *semantics* — incomplete databases as ideal/available pairs, TCS
//! satisfaction, query completeness over a concrete pair — is implemented
//! in [`semantics`], so every reasoning result can be (and, in the test
//! suite, is) validated against the model theory it abstracts.
//!
//! # Example — the paper's running example
//!
//! ```
//! use magik_relalg::{Vocabulary, Atom, Query, Term};
//! use magik_completeness::{TcSet, TcStatement, is_complete};
//!
//! let mut v = Vocabulary::new();
//! let pupil = v.pred("pupil", 3);
//! let school = v.pred("school", 3);
//! let (n, c, s, t, d) = (v.var("N"), v.var("C"), v.var("S"), v.var("T"), v.var("D"));
//! let (primary, merano) = (v.cst("primary"), v.cst("merano"));
//!
//! // C_sp: Compl(school(S, primary, D); true)
//! // C_pb: Compl(pupil(N, C, S); school(S, T, merano))
//! let tcs = TcSet::new(vec![
//!     TcStatement::new(
//!         Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Var(d)]),
//!         vec![],
//!     ),
//!     TcStatement::new(
//!         Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
//!         vec![Atom::new(school, vec![Term::Var(s), Term::Var(t), Term::Cst(merano)])],
//!     ),
//! ]);
//!
//! // Q_ppb(N) <- pupil(N, C, S), school(S, primary, merano)
//! let q = Query::new(
//!     v.sym("q"),
//!     vec![Term::Var(n)],
//!     vec![
//!         Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
//!         Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Cst(merano)]),
//!     ],
//! );
//! assert!(is_complete(&q, &tcs));
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod answering;
mod canonical;
pub mod certify;
mod check;
pub mod codec;
pub mod constraints;
pub mod explain;
mod generalize;
pub mod keys;
pub mod lint;
mod mci;
pub mod semantics;
mod specialize;
mod tc_op;
mod tcs;
#[cfg(test)]
pub(crate) mod testutil;
mod unifiers;

pub use answering::{
    classify_answers, count_bounds, publishable_counts, AnswerReport, CountBounds, PublishableCount,
};
pub use canonical::{CanonTerm, CanonicalQuery};
pub use certify::{cert_statements, certify, k_mcs_certified, mcg_certified, repair_suggestions};
pub use check::{is_complete, is_complete_via_datalog};
pub use constraints::{is_complete_under, mcg_under, ConstraintSet, DomainViolation, FiniteDomain};
pub use explain::{
    counterexample, explain_check, render_counterexample, render_explanation,
    render_explanation_with_locations, CheckExplanation, GuaranteeWitness,
};
pub use generalize::{g_op, is_mcg, mcg, mcg_with_stats, McgStats};
pub use keys::{chase_query, ChaseOutcome, Key, KeyViolation};
pub use lint::{lint, Lint};
pub use mci::{is_instantiation_of, is_mci, mcis, mcis_bounded};
pub use specialize::{k_mcs, k_mcs_on, KMcsEngine, KMcsOptions, KMcsOutcome, KMcsStats};
pub use tc_op::{tc_apply, tc_apply_datalog, tc_encoding};
pub use tcs::{TcSet, TcStatement};
pub use unifiers::{complete_unifiers, complete_unifiers_naive};
