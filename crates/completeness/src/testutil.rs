//! Shared fixtures for unit tests: the paper's running example
//! ("schoolBolzano", Example 1) and the Theorem 17 flight example.

use magik_relalg::{Atom, Query, Term, Vocabulary};

use crate::tcs::{TcSet, TcStatement};

/// The school schema and the statements {C_sp, C_pb, C_enp} of Example 1.
pub(crate) fn school_tcs(v: &mut Vocabulary) -> TcSet {
    let pupil = v.pred("pupil", 3);
    let school = v.pred("school", 3);
    let learns = v.pred("learns", 2);
    let (n, c, s, t, d) = (v.var("N"), v.var("C"), v.var("S"), v.var("T"), v.var("D"));
    let (primary, merano, english) = (v.cst("primary"), v.cst("merano"), v.cst("english"));
    TcSet::new(vec![
        // C_sp: Compl(school(S, primary, D); true)
        TcStatement::new(
            Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Var(d)]),
            vec![],
        ),
        // C_pb: Compl(pupil(N, C, S); school(S, T, merano))
        TcStatement::new(
            Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
            vec![Atom::new(
                school,
                vec![Term::Var(s), Term::Var(t), Term::Cst(merano)],
            )],
        ),
        // C_enp: Compl(learns(N, english); pupil(N, C, S), school(S, primary, D))
        TcStatement::new(
            Atom::new(learns, vec![Term::Var(n), Term::Cst(english)]),
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                Atom::new(school, vec![Term::Var(s), Term::Cst(primary), Term::Var(d)]),
            ],
        ),
    ])
}

/// `Q_ppb(N) ← pupil(N, C, S), school(S, primary, merano)` — complete wrt
/// the school statements.
pub(crate) fn q_ppb(v: &mut Vocabulary) -> Query {
    let pupil = v.pred("pupil", 3);
    let school = v.pred("school", 3);
    let (n, c, s) = (v.var("N"), v.var("C"), v.var("S"));
    let (primary, merano) = (v.cst("primary"), v.cst("merano"));
    Query::new(
        v.sym("q_ppb"),
        vec![Term::Var(n)],
        vec![
            Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
            Atom::new(
                school,
                vec![Term::Var(s), Term::Cst(primary), Term::Cst(merano)],
            ),
        ],
    )
}

/// `Q_pbl(N) ← pupil(N, C, S), school(S, primary, merano), learns(N, L)` —
/// incomplete wrt the school statements.
pub(crate) fn q_pbl(v: &mut Vocabulary) -> Query {
    let learns = v.pred("learns", 2);
    let (n, l) = (v.var("N"), v.var("L"));
    let base = q_ppb(v);
    let mut body = base.body;
    body.push(Atom::new(learns, vec![Term::Var(n), Term::Var(l)]));
    Query::new(v.sym("q_pbl"), vec![Term::Var(n)], body)
}

/// The Theorem 17 flight statement `Compl(conn(X, Y); conn(Y, Z))` and
/// query `Q(X) ← conn(X, Y)`.
pub(crate) fn flight(v: &mut Vocabulary) -> (TcSet, Query) {
    let conn = v.pred("conn", 2);
    let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
    let tcs = TcSet::new(vec![TcStatement::new(
        Atom::new(conn, vec![Term::Var(x), Term::Var(y)]),
        vec![Atom::new(conn, vec![Term::Var(y), Term::Var(z)])],
    )]);
    let q = Query::new(
        v.sym("q"),
        vec![Term::Var(x)],
        vec![Atom::new(conn, vec![Term::Var(x), Term::Var(y)])],
    );
    (tcs, q)
}

/// The Table 1 workload: `Q_l(N) ← learns(N, L)` and the school statements
/// minus `C_pb`, extended with two `class`-conditioned pupil statements
/// (Section 5).
pub(crate) fn table1(v: &mut Vocabulary) -> (TcSet, Query) {
    let school = school_tcs(v);
    let pupil = v.pred("pupil", 3);
    let learns = v.pred("learns", 2);
    let class = v.pred("class", 4);
    let (n, c, s, l) = (v.var("N"), v.var("C"), v.var("S"), v.var("L"));
    let (half, full) = (v.cst("halfDay"), v.cst("fullDay"));
    let mut stmts: Vec<TcStatement> = school
        .statements()
        .iter()
        .filter(|c| c.head.pred != pupil) // drop C_pb
        .cloned()
        .collect();
    stmts.push(TcStatement::new(
        Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
        vec![Atom::new(
            class,
            vec![Term::Var(c), Term::Var(s), Term::Var(l), Term::Cst(half)],
        )],
    ));
    stmts.push(TcStatement::new(
        Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
        vec![Atom::new(
            class,
            vec![Term::Var(c), Term::Var(s), Term::Var(l), Term::Cst(full)],
        )],
    ));
    let q = Query::new(
        v.sym("q_l"),
        vec![Term::Var(n)],
        vec![Atom::new(learns, vec![Term::Var(n), Term::Var(l)])],
    );
    (TcSet::new(stmts), q)
}
