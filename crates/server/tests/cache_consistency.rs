//! Property test: the cached, epoch-guarded engine always answers exactly
//! like a fresh single-shot computation.
//!
//! Random sequences interleave TCS additions (bumping the TCS epoch),
//! fact assertions/retractions (bumping the data epoch), completeness
//! checks, and evaluations. After every mutation, every previously issued
//! check and eval is replayed — if an epoch bump failed to invalidate a
//! stale cache entry, the replay would return the old verdict and diverge
//! from the oracle. Every check/eval is also issued twice in a row so the
//! second request exercises the cache-hit path.

use std::collections::BTreeSet;

use proptest::prelude::*;

use magik_completeness::{is_complete, TcSet};
use magik_parser::{parse_atom, parse_query, parse_tcs};
use magik_relalg::{answers, DisplayWith, Instance, Vocabulary};
use magik_server::Engine;

const PRED_ARITY: [usize; 3] = [1, 2, 2];

#[derive(Debug, Clone)]
enum AT {
    V(u8),
    C(u8),
}

fn term_str(t: &AT) -> String {
    match t {
        AT::V(v) => format!("X{v}"),
        AT::C(c) => format!("c{c}"),
    }
}

#[derive(Debug, Clone)]
struct AAtom {
    pred: usize,
    args: Vec<AT>,
}

fn atom_str(a: &AAtom) -> String {
    let args: Vec<String> = a.args.iter().map(term_str).collect();
    format!("p{}({})", a.pred, args.join(", "))
}

/// A safe query string over `body`: the head projects the first body
/// variable (or a constant, for variable-free bodies).
fn query_str(body: &[AAtom]) -> String {
    let head = body
        .iter()
        .flat_map(|a| a.args.iter())
        .find(|t| matches!(t, AT::V(_)))
        .map_or_else(|| "c1".to_string(), term_str);
    let atoms: Vec<String> = body.iter().map(atom_str).collect();
    format!("q({head}) :- {}.", atoms.join(", "))
}

fn cond_str(cond: &[AAtom]) -> String {
    if cond.is_empty() {
        "true".to_string()
    } else {
        let atoms: Vec<String> = cond.iter().map(atom_str).collect();
        atoms.join(", ")
    }
}

fn aatom() -> impl Strategy<Value = AAtom> {
    (0..3usize).prop_flat_map(|pred| {
        proptest::collection::vec(
            prop_oneof![
                3 => (0..4u8).prop_map(AT::V),
                1 => (1..4u8).prop_map(AT::C),
            ],
            PRED_ARITY[pred],
        )
        .prop_map(move |args| AAtom { pred, args })
    })
}

/// A ground atom (a fact).
fn afact() -> impl Strategy<Value = AAtom> {
    (0..3usize).prop_flat_map(|pred| {
        proptest::collection::vec((1..4u8).prop_map(AT::C), PRED_ARITY[pred])
            .prop_map(move |args| AAtom { pred, args })
    })
}

#[derive(Debug, Clone)]
enum AOp {
    AddTcs(AAtom, Vec<AAtom>),
    Assert(AAtom),
    Retract(AAtom),
    Check(Vec<AAtom>),
    Eval(Vec<AAtom>),
}

fn aop() -> impl Strategy<Value = AOp> {
    prop_oneof![
        2 => (aatom(), proptest::collection::vec(aatom(), 0..2))
            .prop_map(|(h, c)| AOp::AddTcs(h, c)),
        3 => afact().prop_map(AOp::Assert),
        2 => afact().prop_map(AOp::Retract),
        4 => proptest::collection::vec(aatom(), 1..3).prop_map(AOp::Check),
        3 => proptest::collection::vec(aatom(), 1..3).prop_map(AOp::Eval),
    ]
}

/// The cache-free single-shot path: parses every request fresh and calls
/// the reasoning library directly.
struct Oracle {
    vocab: Vocabulary,
    tcs: TcSet,
    db: Instance,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle {
            vocab: Vocabulary::new(),
            tcs: TcSet::new(Vec::new()),
            db: Instance::new(),
        }
    }

    fn check(&mut self, qsrc: &str) -> bool {
        let q = parse_query(qsrc, &mut self.vocab).expect("query parses");
        is_complete(&q, &self.tcs)
    }

    fn eval(&mut self, qsrc: &str) -> BTreeSet<String> {
        let q = parse_query(qsrc, &mut self.vocab).expect("query parses");
        answers(&q, &self.db)
            .expect("generated queries are safe")
            .iter()
            .map(|t| t.display(&self.vocab).to_string())
            .collect()
    }
}

fn assert_check(engine: &Engine, oracle: &mut Oracle, body: &[AAtom]) {
    let q = query_str(body);
    let reply = engine.handle(&format!("check {q}"));
    let expected = if oracle.check(&q) {
        "ok complete"
    } else {
        "ok incomplete"
    };
    assert_eq!(reply, expected, "check {q}");
}

fn assert_eval(engine: &Engine, oracle: &mut Oracle, body: &[AAtom]) {
    let q = query_str(body);
    let reply = engine.handle(&format!("eval {q}"));
    let expected = oracle.eval(&q);
    let payload = reply.strip_prefix("ok ").unwrap_or_else(|| {
        panic!("eval {q} failed: {reply}");
    });
    let (n, rest) = payload.split_once(' ').unwrap_or((payload, ""));
    let n: usize = n.parse().expect("answer count");
    let got: BTreeSet<String> = if rest.is_empty() {
        BTreeSet::new()
    } else {
        rest.split("; ").map(str::to_string).collect()
    };
    assert_eq!(n, expected.len(), "eval {q}");
    assert_eq!(got, expected, "eval {q}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_agrees_with_single_shot_path(ops in proptest::collection::vec(aop(), 1..12)) {
        let engine = Engine::new();
        let mut oracle = Oracle::new();
        let mut seen_checks: Vec<Vec<AAtom>> = Vec::new();
        let mut seen_evals: Vec<Vec<AAtom>> = Vec::new();
        for op in &ops {
            match op {
                AOp::AddTcs(head, cond) => {
                    let stmt = format!("{} ; {}.", atom_str(head), cond_str(cond));
                    let reply = engine.handle(&format!("compl {stmt}"));
                    prop_assert!(reply.starts_with("ok epoch="), "compl reply: {}", reply);
                    let parsed = parse_tcs(&stmt, &mut oracle.vocab).expect("tcs parses");
                    oracle.tcs.push(parsed);
                    // The TCS epoch bump must invalidate cached verdicts.
                    for q in &seen_checks {
                        assert_check(&engine, &mut oracle, q);
                    }
                }
                AOp::Assert(f) => {
                    let reply = engine.handle(&format!("assert {}.", atom_str(f)));
                    prop_assert!(reply == "ok inserted" || reply == "ok duplicate");
                    let fact = parse_atom(&atom_str(f), &mut oracle.vocab)
                        .expect("fact parses")
                        .to_fact()
                        .expect("fact is ground");
                    oracle.db.insert(fact);
                    // The data epoch bump must invalidate cached answers;
                    // cached verdicts must *survive* (they do not depend
                    // on facts) and still agree with the oracle.
                    for q in &seen_evals {
                        assert_eval(&engine, &mut oracle, q);
                    }
                    for q in &seen_checks {
                        assert_check(&engine, &mut oracle, q);
                    }
                }
                AOp::Retract(f) => {
                    let reply = engine.handle(&format!("retract {}.", atom_str(f)));
                    prop_assert!(reply == "ok retracted" || reply == "ok absent");
                    let fact = parse_atom(&atom_str(f), &mut oracle.vocab)
                        .expect("fact parses")
                        .to_fact()
                        .expect("fact is ground");
                    oracle.db.remove(&fact);
                    for q in &seen_evals {
                        assert_eval(&engine, &mut oracle, q);
                    }
                    for q in &seen_checks {
                        assert_check(&engine, &mut oracle, q);
                    }
                }
                AOp::Check(body) => {
                    assert_check(&engine, &mut oracle, body);
                    // Again: the second request hits the verdict cache.
                    assert_check(&engine, &mut oracle, body);
                    seen_checks.push(body.clone());
                }
                AOp::Eval(body) => {
                    assert_eval(&engine, &mut oracle, body);
                    assert_eval(&engine, &mut oracle, body);
                    seen_evals.push(body.clone());
                }
            }
        }
    }
}
