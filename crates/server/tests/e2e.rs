//! End-to-end test: a real server on an ephemeral port, driven by several
//! concurrent client connections, checked against the single-shot
//! reasoning path (`magik_completeness::is_complete` on freshly parsed
//! input).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use magik_completeness::{is_complete, TcSet};
use magik_parser::{parse_query, parse_tcs};
use magik_relalg::Vocabulary;
use magik_server::{Engine, Server};

/// A line-oriented protocol client.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("receive");
        reply.trim_end().to_string()
    }
}

const TCS: [&str; 2] = [
    "school(S, primary, D) ; true.",
    "pupil(N, C, S) ; school(S, T, merano).",
];

const COMPLETE_Q: &str = "q(N) :- pupil(N, C, S), school(S, primary, merano).";
const INCOMPLETE_Q: &str = "q(N) :- pupil(N, C, S), school(S, primary, bolzano).";

/// The single-shot path: parse everything fresh and run `is_complete`
/// directly, with no engine, cache, or server involved.
fn single_shot_verdict(query: &str) -> bool {
    let mut vocab = Vocabulary::new();
    let tcs = TcSet::new(
        TCS.iter()
            .map(|s| parse_tcs(s, &mut vocab).expect("tcs parses"))
            .collect(),
    );
    let q = parse_query(query, &mut vocab).expect("query parses");
    is_complete(&q, &tcs)
}

#[test]
fn concurrent_clients_agree_with_single_shot_reasoning() {
    let server = Server::start(Arc::new(Engine::new()), "127.0.0.1:0", 4).expect("bind");
    let addr = server.local_addr();

    // Session setup on its own connection.
    let mut setup = Client::connect(addr);
    assert_eq!(setup.request("ping"), "ok pong");
    for (i, tcs) in TCS.iter().enumerate() {
        assert_eq!(
            setup.request(&format!("compl {tcs}")),
            format!("ok epoch={}", i + 1)
        );
    }

    // Three concurrent clients, each mixing mutations and queries. The
    // completeness verdict depends only on the TCS set (never on stored
    // facts), so it must be stable no matter how the clients' assertions
    // interleave.
    let expect_complete = single_shot_verdict(COMPLETE_Q);
    let expect_incomplete = single_shot_verdict(INCOMPLETE_Q);
    assert!(
        expect_complete && !expect_incomplete,
        "paper example sanity"
    );
    let clients: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for round in 0..10 {
                    let fact = format!("assert pupil(p{i}_{round}, c1, hofer).");
                    assert_eq!(c.request(&fact), "ok inserted");
                    assert_eq!(c.request(&format!("check {COMPLETE_Q}")), "ok complete");
                    assert_eq!(c.request(&format!("check {INCOMPLETE_Q}")), "ok incomplete");
                }
                let g = c.request(&format!("generalize {INCOMPLETE_Q}"));
                assert!(g.starts_with("ok "), "generalize reply: {g}");
                let m = c.request("metrics");
                assert!(m.starts_with("ok "), "metrics reply: {m}");
                assert!(m.contains("check.count="), "metrics reply: {m}");
                assert_eq!(c.request("quit"), "ok bye");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // All 30 assertions from the three clients landed.
    let mut verify = Client::connect(addr);
    let reply = verify.request("eval q(N) :- pupil(N, C, S).");
    assert!(reply.starts_with("ok 30 "), "eval reply: {reply}");

    // The verdict cache served the repeated checks: 60 check requests,
    // at most a handful of misses (one per distinct canonical query).
    let metrics = verify.request("metrics");
    let hits: u64 = metrics
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("verdict_cache.hits="))
        .expect("hits field")
        .parse()
        .expect("hits number");
    assert!(hits >= 58, "expected >= 58 verdict cache hits: {metrics}");

    server.stop();
}

#[test]
fn malformed_lines_do_not_kill_the_connection() {
    let server = Server::start(Arc::new(Engine::new()), "127.0.0.1:0", 2).expect("bind");
    let mut c = Client::connect(server.local_addr());
    assert!(c.request("nonsense").starts_with("err proto "));
    assert!(c.request("check not a query").starts_with("err parse "));
    assert_eq!(c.request("ping"), "ok pong");
    server.stop();
}

#[test]
fn stop_unblocks_idle_connections() {
    let server = Server::start(Arc::new(Engine::new()), "127.0.0.1:0", 1).expect("bind");
    // An idle connection pins the only worker; stop() must still return
    // (handlers poll the stop flag between reads).
    let _idle = TcpStream::connect(server.local_addr()).expect("connect");
    server.stop();
}

#[test]
fn oversized_request_line_is_rejected_and_connection_dropped() {
    let server = Server::start(Arc::new(Engine::new()), "127.0.0.1:0", 2).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Stream one byte past the 1 MiB request-line cap with no newline in
    // sight. The server must refuse to buffer more — it replies and
    // closes instead of growing memory until a newline shows up. (Writing
    // exactly to the trigger point keeps the close clean: nothing is left
    // unread on the server side to turn the close into a reset that could
    // discard the reply.)
    let chunk = [b'x'; 64 * 1024];
    for _ in 0..16 {
        if stream.write_all(&chunk).is_err() {
            break; // server already closed its read side
        }
    }
    let _ = stream.write_all(b"x");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert_eq!(reply.trim_end(), "err line too long");
    // Clean close: the next read is EOF, not a hung connection.
    reply.clear();
    assert_eq!(reader.read_line(&mut reply).expect("read eof"), 0);
    server.stop();
}

#[test]
fn stop_returns_promptly_under_wildcard_bind() {
    let server = Server::start(Arc::new(Engine::new()), "0.0.0.0:0", 1).expect("bind");
    let port = server.local_addr().port();
    // Sanity: the wildcard listener is reachable via loopback, and an
    // idle connection pins the only worker.
    let mut c = Client::connect(std::net::SocketAddr::from(([127, 0, 0, 1], port)));
    assert_eq!(c.request("ping"), "ok pong");
    // `local_addr()` reports `0.0.0.0:port`, which is not a connectable
    // destination everywhere — shutdown must aim its unblocking probe at
    // loopback instead. Guard with a watchdog so a regression fails fast
    // instead of hanging the suite on the accept-loop join.
    let (tx, rx) = std::sync::mpsc::channel();
    let stopper = std::thread::spawn(move || {
        server.stop();
        let _ = tx.send(());
    });
    rx.recv_timeout(std::time::Duration::from_secs(10))
        .expect("shutdown hung under wildcard bind");
    stopper.join().expect("stopper panicked");
}
