//! Framing torture tests for the event-loop front end: requests arrive
//! byte by byte, split at arbitrary points, pipelined in large batches,
//! as binary frames (well-formed, torn, and oversized), and the same
//! traffic must produce identical replies under both framings.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use magik_server::{Engine, Server};

fn start() -> (Server, SocketAddr) {
    let engine = Arc::new(Engine::new());
    let server = Server::start(engine, "127.0.0.1:0", 4).expect("bind");
    let addr = server.local_addr();
    (server, addr)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).expect("nodelay");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    s
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read line");
    line.trim_end().to_string()
}

/// Reads one `[len u32 LE][payload]` reply frame.
fn read_frame(reader: &mut BufReader<TcpStream>) -> String {
    let mut len = [0u8; 4];
    reader.read_exact(&mut len).expect("frame length");
    let len = u32::from_le_bytes(len) as usize;
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).expect("frame payload");
    String::from_utf8(payload).expect("utf-8 reply")
}

fn frame(cmd: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(cmd.len() + 4);
    buf.extend_from_slice(&(cmd.len() as u32).to_le_bytes());
    buf.extend_from_slice(cmd.as_bytes());
    buf
}

#[test]
fn requests_dripped_one_byte_at_a_time_still_parse() {
    let (server, addr) = start();
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for &(req, reply) in &[
        ("ping\n", "ok pong"),
        ("compl school(S, primary, D) ; true.\n", "ok epoch=1"),
        ("check q(S) :- school(S, primary, bz).\n", "ok complete"),
    ] {
        for b in req.as_bytes() {
            stream.write_all(std::slice::from_ref(b)).expect("drip");
            stream.flush().expect("flush");
        }
        assert_eq!(read_line(&mut reader), reply);
    }
    server.stop();
}

#[test]
fn requests_split_across_arbitrary_write_boundaries_still_parse() {
    let (server, addr) = start();
    // Fixed-width index keeps every iteration's payload the same length,
    // and a unique district keeps each iteration's replies independent
    // of the state earlier iterations left behind.
    let payload_for = |i: usize| {
        format!(
            "ping\nassert school(s{i:03}, primary, d{i:03}).\n\
             eval q(S) :- school(S, primary, d{i:03}).\nping\n"
        )
    };
    let len = payload_for(0).len();
    // Every split point of the pipelined payload, including the
    // boundaries (all-at-once and one-then-rest).
    for split in 0..=len {
        let payload = payload_for(split).into_bytes();
        let mut stream = connect(addr);
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        stream.write_all(&payload[..split]).expect("first half");
        stream.flush().expect("flush");
        // A pause so the server observes a genuine partial request.
        if split % 17 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        stream.write_all(&payload[split..]).expect("second half");
        assert_eq!(read_line(&mut reader), "ok pong", "split at byte {split}");
        assert_eq!(
            read_line(&mut reader),
            "ok inserted",
            "split at byte {split}"
        );
        let eval = read_line(&mut reader);
        assert!(eval.starts_with("ok 1 "), "split at byte {split}: {eval}");
        assert_eq!(read_line(&mut reader), "ok pong", "split at byte {split}");
    }
    server.stop();
}

#[test]
fn pipelined_batch_replies_in_request_order() {
    let (server, addr) = start();
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Dependent prefix: the check only holds once the compl landed, so
    // in-order execution (not just in-order replies) is observable.
    let mut batch = String::from("compl school(S, T, D) ; true.\n");
    let n = 100;
    for i in 0..n {
        batch.push_str(&format!("assert school(s{i}, primary, bz).\n"));
        batch.push_str("check q(S) :- school(S, primary, bz).\n");
    }
    batch.push_str("eval q(S) :- school(S, primary, bz).\nquit\n");
    stream.write_all(batch.as_bytes()).expect("batch");

    assert_eq!(read_line(&mut reader), "ok epoch=1");
    for i in 0..n {
        assert_eq!(read_line(&mut reader), "ok inserted", "assert {i}");
        assert_eq!(read_line(&mut reader), "ok complete", "check {i}");
    }
    let eval = read_line(&mut reader);
    assert!(eval.starts_with(&format!("ok {n} ")), "eval reply: {eval}");
    assert_eq!(read_line(&mut reader), "ok bye");
    // `quit` closes after its reply.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);
    server.stop();
}

#[test]
fn pipelined_status_reflects_the_requests_ahead_of_it() {
    // `replication` is connection-level, but it still takes its turn in
    // the pipeline: a status sent behind mutations must report the
    // epochs those mutations produced, not the parse-time state.
    let (server, addr) = start();
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream
        .write_all(
            b"compl school(S, T, D) ; true.\n\
              assert school(s0, primary, bz).\n\
              assert school(s1, primary, bz).\n\
              replication\n",
        )
        .expect("batch");
    assert_eq!(read_line(&mut reader), "ok epoch=1");
    assert_eq!(read_line(&mut reader), "ok inserted");
    assert_eq!(read_line(&mut reader), "ok inserted");
    assert_eq!(
        read_line(&mut reader),
        "ok role=primary durable=false tcs=1 data=2 subscribers=0"
    );
    server.stop();
}

#[test]
fn binary_framing_negotiates_and_round_trips() {
    let (server, addr) = start();
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // The ack for the switch arrives in the *old* (line) framing.
    stream.write_all(b"frames\n").expect("probe");
    assert_eq!(read_line(&mut reader), "ok frames=line");
    stream.write_all(b"frames binary\n").expect("switch");
    assert_eq!(read_line(&mut reader), "ok frames=binary");

    // From here, both directions are length-prefixed frames.
    stream
        .write_all(&frame("compl pupil(N, C, S) ; true."))
        .expect("compl");
    assert_eq!(read_frame(&mut reader), "ok epoch=1");
    stream.write_all(&frame("frames")).expect("probe");
    assert_eq!(read_frame(&mut reader), "ok frames=binary");

    // And back: the ack for the switch to line framing is the last
    // binary frame.
    stream
        .write_all(&frame("frames line"))
        .expect("switch back");
    assert_eq!(read_frame(&mut reader), "ok frames=line");
    stream.write_all(b"ping\n").expect("ping");
    assert_eq!(read_line(&mut reader), "ok pong");
    server.stop();
}

#[test]
fn identical_traffic_gets_identical_replies_under_both_framings() {
    let requests = [
        "compl school(S, primary, D) ; true.",
        "compl pupil(N, C, S) ; school(S, T, merano).",
        "assert pupil(ann, c1, hofer).",
        "check q(N) :- pupil(N, C, S), school(S, primary, merano).",
        "check q(N) :- pupil(N, C, S), school(S, primary, bolzano).",
        "eval q(N) :- pupil(N, C, S).",
        "metrics",
    ];

    // Line framing, fresh engine.
    let (line_server, line_addr) = start();
    let mut stream = connect(line_addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line_replies = Vec::new();
    for req in &requests {
        stream
            .write_all(format!("{req}\n").as_bytes())
            .expect("send");
        line_replies.push(read_line(&mut reader));
    }
    line_server.stop();

    // Binary framing, fresh engine, same traffic.
    let (bin_server, bin_addr) = start();
    let mut stream = connect(bin_addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream.write_all(b"frames binary\n").expect("switch");
    assert_eq!(read_line(&mut reader), "ok frames=binary");
    let mut bin_replies = Vec::new();
    for req in &requests {
        stream.write_all(&frame(req)).expect("send");
        bin_replies.push(read_frame(&mut reader));
    }
    bin_server.stop();

    // Metrics contain live latency numbers; compare the deterministic
    // prefix only.
    for (req, (line, bin)) in requests.iter().zip(line_replies.iter().zip(&bin_replies)) {
        if *req == "metrics" {
            assert!(line.starts_with("ok "), "line metrics: {line}");
            assert!(bin.starts_with("ok "), "binary metrics: {bin}");
        } else {
            assert_eq!(line, bin, "replies diverge for `{req}`");
        }
    }
}

#[test]
fn torn_binary_frame_is_dropped_without_a_reply() {
    let (server, addr) = start();
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream.write_all(b"frames binary\n").expect("switch");
    assert_eq!(read_line(&mut reader), "ok frames=binary");

    // A frame that claims 100 bytes but delivers 10, then half-close.
    stream.write_all(&100u32.to_le_bytes()).expect("length");
    stream.write_all(b"0123456789").expect("torn payload");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");

    // The tail can never complete: the server closes without replying.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).expect("eof"), 0);
    server.stop();
}

#[test]
fn oversized_and_empty_binary_frames_are_protocol_errors() {
    let (server, addr) = start();

    // Oversized: the declared length exceeds the 1 MiB cap; the server
    // must refuse *before* buffering any payload.
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream.write_all(b"frames binary\n").expect("switch");
    assert_eq!(read_line(&mut reader), "ok frames=binary");
    stream
        .write_all(&(u32::try_from(1 << 20).unwrap() + 1).to_le_bytes())
        .expect("oversized length");
    assert_eq!(
        read_frame(&mut reader),
        "err proto frame exceeds the size cap"
    );
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).expect("eof"), 0);

    // Empty: a zero-length frame is meaningless and likely a desynced
    // client; refuse and close.
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream.write_all(b"frames binary\n").expect("switch");
    assert_eq!(read_line(&mut reader), "ok frames=binary");
    stream.write_all(&0u32.to_le_bytes()).expect("empty frame");
    assert_eq!(read_frame(&mut reader), "err proto empty frame");
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).expect("eof"), 0);

    server.stop();
}

#[test]
fn unknown_framing_name_is_refused_without_switching() {
    let (server, addr) = start();
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream.write_all(b"frames gopher\n").expect("bad name");
    assert_eq!(read_line(&mut reader), "err proto unknown framing `gopher`");
    // Still in line framing, still alive.
    stream.write_all(b"ping\n").expect("ping");
    assert_eq!(read_line(&mut reader), "ok pong");
    server.stop();
}

#[test]
fn slow_reader_on_the_reactor_does_not_starve_other_clients() {
    // The event-loop version of the slow-reader scenario: a client
    // pipelines work and never reads replies. On the reactor this must
    // cost buffers, not a worker — other clients stay served.
    let engine = Arc::new(Engine::new());
    assert!(engine
        .handle("compl school(S, T, D) ; true.")
        .starts_with("ok"));
    for i in 0..500 {
        assert_eq!(
            engine.handle(&format!("assert school(s{i}, primary, bz).")),
            "ok inserted"
        );
    }
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr();

    // The non-reader: pipeline many evals (large replies) and never read.
    let mut glutton = connect(addr);
    let mut batch = String::new();
    for _ in 0..200 {
        batch.push_str("eval q(S) :- school(S, primary, bz).\n");
    }
    glutton.write_all(batch.as_bytes()).expect("flood");

    // Meanwhile a well-behaved client gets prompt service.
    let mut polite = connect(addr);
    let mut reader = BufReader::new(polite.try_clone().expect("clone"));
    for _ in 0..20 {
        polite.write_all(b"ping\n").expect("ping");
        assert_eq!(read_line(&mut reader), "ok pong");
    }
    drop(glutton);
    server.stop();
}
