//! Regression tests for the connection-handling bugfix sweep: the
//! slow-reader worker pinning fixed by the blocking path's write
//! deadline (the accept-loop backoff and poisoned-lock recovery have
//! unit-level regressions next to their code).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use magik_server::{Engine, Server};

/// Pre-fix, a client that pipelines large replies and never reads them
/// pinned its pool worker in `write` forever — with a one-worker pool,
/// a complete denial of service. The write deadline must drop the
/// non-reader and free the worker for the next client.
#[test]
fn blocking_path_drops_a_non_reading_client_instead_of_pinning_its_worker() {
    let engine = Arc::new(Engine::new());
    assert!(engine
        .handle("compl school(S, T, D) ; true.")
        .starts_with("ok"));
    for i in 0..2000 {
        assert_eq!(
            engine.handle(&format!("assert school(s{i}, primary, bz).")),
            "ok inserted"
        );
    }

    // One worker: the non-reader and the polite client compete for it.
    let server = Server::start_blocking(Arc::clone(&engine), "127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr();

    // The non-reader: hundreds of evals whose replies total far more
    // than the socket buffers can absorb, and not a single read.
    let glutton = TcpStream::connect(addr).expect("connect glutton");
    let mut flood = String::new();
    for _ in 0..400 {
        flood.push_str("eval q(S) :- school(S, primary, bz).\n");
    }
    (&glutton).write_all(flood.as_bytes()).expect("flood");

    // Give the worker time to start serving the glutton and hit the
    // full socket.
    std::thread::sleep(Duration::from_millis(300));

    // The polite client: must be served once the write deadline (2 s)
    // drops the glutton. Pre-fix the worker never frees and this read
    // times out.
    let mut polite = TcpStream::connect(addr).expect("connect polite");
    polite
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    let started = Instant::now();
    polite.write_all(b"ping\n").expect("ping");
    let mut reader = BufReader::new(polite.try_clone().expect("clone"));
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .expect("polite client starved: the non-reader is still pinning the worker");
    assert_eq!(reply.trim_end(), "ok pong");
    // Sanity: service resumed via the deadline, not because the flood
    // happened to fit the buffers.
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "took {:?}",
        started.elapsed()
    );

    drop(glutton);
    server.stop();
}
