//! Multi-threaded stress tests for the snapshot-swap engine.
//!
//! One [`Engine`] is shared by eight threads that interleave mutations
//! (assert / retract / compl) with reads (check / eval / guaranteed /
//! specialize / metrics). The engine publishes immutable snapshots, so
//! the tests can pin down strong guarantees even under races:
//!
//! - **Epoch monotonicity**: every observer sees the `(tcs, data)` epoch
//!   pair advance componentwise, never regress.
//! - **Snapshot consistency**: a read never mixes data from two epochs —
//!   an eval during concurrent asserts of a fact *pair* sees both facts
//!   or neither.
//! - **Sequential-replay agreement**: the mutations commute (distinct
//!   facts, distinct statements), so after the storm the engine must
//!   agree exactly with a fresh engine fed the same session sequentially.
//! - **Non-blocking reads**: checks keep completing while another thread
//!   runs a long `specialize` search.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use magik_completeness::TcSet;
use magik_exec::Executor;
use magik_relalg::{Instance, Vocabulary};
use magik_server::Engine;

const THREADS: usize = 8;
const ROUNDS: usize = 40;

/// An engine whose *reasoning* executor is sized by `MAGIK_THREADS`
/// (default 1), so CI can run the whole suite both fully sequential and
/// pooled. The eight client threads exist either way.
fn new_engine() -> Engine {
    let threads = std::env::var("MAGIK_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    Engine::with_session_on(
        Vocabulary::new(),
        TcSet::new(Vec::new()),
        Instance::new(),
        Executor::with_threads(threads),
    )
}

/// Spawn `THREADS` workers against one engine and join them, propagating
/// panics.
fn storm(engine: &Arc<Engine>, f: impl Fn(usize, &Engine) + Send + Sync + 'static) {
    let f = Arc::new(f);
    let handles: Vec<_> = (0..THREADS)
        .map(|id| {
            let engine = Arc::clone(engine);
            let f = Arc::clone(&f);
            thread::spawn(move || f(id, &engine))
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
}

/// Epochs only advance: every thread watches `(tcs_epoch, data_epoch)`
/// while half the threads mutate, and asserts componentwise monotonicity.
#[test]
fn epochs_never_regress_under_concurrent_writes() {
    let engine = Arc::new(new_engine());
    storm(&engine, |id, engine| {
        let mut last = engine.epochs();
        for i in 0..ROUNDS {
            if id % 2 == 0 {
                // Writers: distinct facts and statements per (thread, round).
                engine.handle(&format!("assert p{id}_{i}(c{i})."));
                if i % 8 == 0 {
                    engine.handle(&format!("compl p{id}_{i}(X) ; true."));
                }
                if i % 3 == 0 {
                    engine.handle(&format!("retract p{id}_{i}(c{i})."));
                }
            } else {
                // Readers: issue requests and watch the epochs.
                engine.handle(&format!("check q(X) :- p0_{i}(X)."));
                engine.handle(&format!("eval q(X) :- p0_{i}(X)."));
            }
            let now = engine.epochs();
            assert!(
                now.0 >= last.0 && now.1 >= last.1,
                "epochs regressed: {last:?} -> {now:?}"
            );
            last = now;
        }
    });
}

/// Snapshot isolation: a writer always asserts `a(cI)` *before* `b(cI)`,
/// and a conjunctive query joins both. Because every eval runs on one
/// immutable snapshot, an answer for `b` implies the matching `a` is
/// visible in the same reply — a torn read (b without a) is impossible.
#[test]
fn evals_never_observe_torn_writes() {
    let engine = Arc::new(new_engine());
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            for i in 0..200 {
                assert_eq!(engine.handle(&format!("assert a(c{i}).")), "ok inserted");
                assert_eq!(engine.handle(&format!("assert b(c{i}).")), "ok inserted");
            }
            stop.store(true, Ordering::Release);
        })
    };
    storm(&engine, move |_, engine| {
        while !stop.load(Ordering::Acquire) {
            // #b-answers ≤ #a-answers at every instant of the write order,
            // and a snapshot freezes one instant.
            let only_b = engine.handle("eval q(X) :- b(X).");
            let only_a = engine.handle("eval q(X) :- a(X).");
            let nb = answer_count(&only_b);
            let na = answer_count(&only_a);
            assert!(
                nb <= na,
                "torn read: saw {nb} b-facts but then only {na} a-facts"
            );
            // And a single snapshot must be internally consistent: every
            // b joins with its a inside one eval.
            let joined = engine.handle("eval q(X) :- b(X), a(X).");
            let bs = engine.handle("eval q(X) :- b(X).");
            assert!(
                answer_count(&joined) >= nb,
                "join lost pairs: {joined} vs earlier {bs}"
            );
        }
    });
    writer.join().expect("writer panicked");
}

fn answer_count(reply: &str) -> usize {
    let payload = reply.strip_prefix("ok ").expect("eval succeeds");
    let n = payload.split_whitespace().next().expect("count present");
    n.parse().expect("count parses")
}

/// Parses an `eval` reply into `(count, sorted answer tuples)`.
fn answer_set(reply: &str) -> (usize, std::collections::BTreeSet<String>) {
    let payload = reply.strip_prefix("ok ").expect("eval succeeds");
    let (n, rest) = payload.split_once(' ').unwrap_or((payload, ""));
    let tuples = if rest.is_empty() {
        std::collections::BTreeSet::new()
    } else {
        rest.split("; ").map(str::to_string).collect()
    };
    (n.parse().expect("count parses"), tuples)
}

/// All mutations commute (distinct facts, distinct statements), so the
/// stormed engine must end in exactly the state a sequential engine
/// reaches — same verdicts, same answers, same availability.
#[test]
fn concurrent_session_agrees_with_sequential_replay() {
    let engine = Arc::new(new_engine());
    storm(&engine, |id, engine| {
        for i in 0..ROUNDS {
            assert_eq!(
                engine.handle(&format!("assert edge(c{id}, c{i}).")),
                "ok inserted"
            );
            if i == 0 {
                let reply = engine.handle(&format!("compl edge(c{id}, Y) ; true."));
                assert!(reply.starts_with("ok epoch="), "compl reply: {reply}");
            }
            // Interleave reads to stir the caches mid-storm.
            engine.handle(&format!("check q(X) :- edge(c{id}, X)."));
            engine.handle(&format!("eval q(X) :- edge(c{id}, X)."));
        }
    });

    let replay = new_engine();
    for id in 0..THREADS {
        replay.handle(&format!("compl edge(c{id}, Y) ; true."));
        for i in 0..ROUNDS {
            replay.handle(&format!("assert edge(c{id}, c{i})."));
        }
    }
    for id in 0..THREADS {
        for req in [
            format!("check q(X) :- edge(c{id}, X)."),
            format!("guaranteed edge(c{id}, c3)."),
            format!("check q(X) :- edge(X, c{id})."),
        ] {
            assert_eq!(
                engine.handle(&req),
                replay.handle(&req),
                "divergence on `{req}`"
            );
        }
        // Answer *order* follows constant-interning order, which is
        // request-arrival-dependent — compare evals as sets.
        let req = format!("eval q(X) :- edge(c{id}, X).");
        assert_eq!(
            answer_set(&engine.handle(&req)),
            answer_set(&replay.handle(&req)),
            "divergence on `{req}`"
        );
    }
    // Both engines agree on the final epochs' *data* component count of
    // mutations: THREADS compl bumps and THREADS*ROUNDS inserts.
    assert_eq!(engine.epochs(), replay.epochs());
}

/// Reads never wait on reasoning: while one thread is stuck in a large
/// `specialize` search, checks on other threads still complete. The
/// snapshot-swap design makes this a liveness fact, not a timing race —
/// the checks here would deadlock under a single state lock held across
/// the search.
#[test]
fn checks_proceed_while_specialize_runs() {
    let engine = Arc::new(new_engine());
    // A TCS set that gives specialize a real search space.
    for stmt in [
        "compl pupil(N, C, S) ; school(S, T, D).",
        "compl learns(N, L) ; pupil(N, C, S).",
        "compl school(S, primary, D) ; true.",
        "compl attends(N, S) ; learns(N, L).",
    ] {
        assert!(engine.handle(stmt).starts_with("ok epoch="));
    }
    let slow = {
        let engine = Arc::clone(&engine);
        thread::spawn(move || {
            engine.handle("specialize 2 q(N) :- pupil(N, C, S), school(S, primary, D).")
        })
    };
    storm(&engine, |_, engine| {
        for i in 0..ROUNDS {
            let reply = engine.handle(&format!("check q(X) :- pupil(X, c{i}, c0)."));
            assert!(reply.starts_with("ok "), "check failed: {reply}");
            assert_eq!(engine.handle("ping"), "ok pong");
        }
    });
    let reply = slow.join().expect("specialize panicked");
    assert!(reply.starts_with("ok "), "specialize failed: {reply}");
}

/// A retract-heavy storm over the DRed maintenance path: eight threads
/// assert facts under a completeness statement (so every mutation feeds
/// the materialized T_C model) and immediately retract most of them,
/// with duplicate retracts mixed in. Epochs must stay monotone
/// throughout, and afterwards the engine must agree — verdicts, answers,
/// and guarantees — with a sequential engine fed only the surviving
/// facts.
#[test]
fn retract_storm_keeps_epochs_and_verdicts_coherent() {
    let engine = Arc::new(new_engine());
    assert!(engine
        .handle("compl edge(X, Y) ; true.")
        .starts_with("ok epoch="));
    storm(&engine, |id, engine| {
        let mut last = engine.epochs();
        for i in 0..ROUNDS {
            assert_eq!(
                engine.handle(&format!("assert edge(c{id}, c{i}).")),
                "ok inserted"
            );
            // Stir the verdict and answer caches mid-storm.
            engine.handle(&format!("check q(X) :- edge(c{id}, X)."));
            engine.handle(&format!("eval q(X) :- edge(c{id}, X)."));
            if i % 4 != 0 {
                assert_eq!(
                    engine.handle(&format!("retract edge(c{id}, c{i}).")),
                    "ok retracted"
                );
                // A duplicate retract is a visible no-op.
                assert_eq!(
                    engine.handle(&format!("retract edge(c{id}, c{i}).")),
                    "ok absent"
                );
            }
            let now = engine.epochs();
            assert!(
                now.0 >= last.0 && now.1 >= last.1,
                "epochs regressed: {last:?} -> {now:?}"
            );
            last = now;
        }
    });

    // Quiescent agreement: only every fourth fact survived, and the
    // stormed engine must match a sequential engine that never saw the
    // retracted facts at all.
    let replay = new_engine();
    replay.handle("compl edge(X, Y) ; true.");
    for id in 0..THREADS {
        for i in (0..ROUNDS).step_by(4) {
            replay.handle(&format!("assert edge(c{id}, c{i})."));
        }
    }
    for id in 0..THREADS {
        let req = format!("eval q(X) :- edge(c{id}, X).");
        assert_eq!(
            answer_set(&engine.handle(&req)),
            answer_set(&replay.handle(&req)),
            "divergence on `{req}`"
        );
        let chk = format!("check q(X) :- edge(c{id}, X).");
        assert_eq!(
            engine.handle(&chk),
            replay.handle(&chk),
            "divergence on `{chk}`"
        );
        // Survivors stay guaranteed by the maintained T_C model; the
        // retracted facts must have lost their guarantee through DRed.
        assert_eq!(
            engine.handle(&format!("guaranteed edge(c{id}, c0).")),
            "ok true"
        );
        assert_eq!(
            engine.handle(&format!("guaranteed edge(c{id}, c1).")),
            "ok false"
        );
    }
}

/// The verdict cache stays coherent under racing compl bumps: after the
/// storm settles, every cached verdict replays identically.
#[test]
fn verdict_cache_consistent_across_racing_compl() {
    let engine = Arc::new(new_engine());
    storm(&engine, |id, engine| {
        for i in 0..ROUNDS / 2 {
            if id == 0 {
                let reply = engine.handle(&format!("compl r{i}(X, Y) ; true."));
                assert!(reply.starts_with("ok epoch="));
            } else {
                // Same queries from every reader: populate and re-probe
                // the verdict cache across epoch bumps.
                let q = format!("check q(X) :- r{}(X, Y).", i % 4);
                let first = engine.handle(&q);
                let second = engine.handle(&q);
                assert!(first == "ok complete" || first == "ok incomplete");
                assert!(second == "ok complete" || second == "ok incomplete");
            }
        }
    });
    // Quiescent state: cached and freshly computed verdicts must agree
    // with a sequential engine fed the same statements.
    let replay = new_engine();
    for i in 0..ROUNDS / 2 {
        replay.handle(&format!("compl r{i}(X, Y) ; true."));
    }
    for i in 0..ROUNDS / 2 {
        let q = format!("check q(X) :- r{i}(X, Y).");
        assert_eq!(engine.handle(&q), replay.handle(&q), "divergence on `{q}`");
        assert_eq!(engine.handle(&q), "ok complete");
    }
}
