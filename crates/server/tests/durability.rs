//! Durability integration tests: crash recovery equivalence, clean
//! shutdown, corruption handling, and the `wal.*`/`checkpoint.*` metrics.
//!
//! The property test is the heart: random mutation interleavings run
//! against a durable engine, the engine is dropped *without* a clean
//! shutdown (simulating a crash of a process whose WAL reached the OS),
//! and the state recovered from disk must agree with a fresh in-memory
//! engine fed the same ops — facts, completeness verdicts, and epochs.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use magik_server::{DurabilityOptions, Engine, Server};
use magik_storage::FsyncPolicy;

/// A fresh scratch directory per call (process id + counter keyed, so
/// parallel test binaries never collide).
fn data_dir(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "magik-durability-{name}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn opts(fsync: FsyncPolicy, checkpoint_every: u64) -> DurabilityOptions {
    DurabilityOptions {
        fsync,
        segment_bytes: 1 << 16,
        checkpoint_every,
    }
}

fn open(
    dir: &Path,
    fsync: FsyncPolicy,
    checkpoint_every: u64,
) -> (Engine, magik_server::RecoveryReport) {
    Engine::open_durable(
        dir,
        opts(fsync, checkpoint_every),
        magik_exec::Executor::Sequential,
    )
    .expect("durable open")
}

#[test]
fn durable_engine_recovers_after_unclean_drop() {
    let dir = data_dir("unclean");
    {
        let (engine, report) = open(&dir, FsyncPolicy::Always, 0);
        assert_eq!(report.replayed_ops, 0);
        assert!(!report.from_checkpoint);
        engine.handle("compl school(S, primary, D) ; true.");
        engine.handle("assert school(hofer, primary, merano).");
        engine.handle("assert pupil(anna, c1, hofer).");
        engine.handle("retract pupil(anna, c1, hofer).");
        // No shutdown: the engine just drops, like a killed process.
    }
    let (engine, report) = open(&dir, FsyncPolicy::Always, 0);
    assert_eq!(report.replayed_ops, 4);
    assert_eq!((report.tcs_epoch, report.data_epoch), (1, 3));
    assert_eq!(engine.epochs(), (1, 3));
    assert_eq!(
        engine.handle("eval q(S, T, D) :- school(S, T, D)."),
        "ok 1 (hofer, primary, merano)"
    );
    assert_eq!(engine.handle("eval q(N) :- pupil(N, C, S)."), "ok 0");
    assert_eq!(
        engine.handle("check q(S, D) :- school(S, primary, D)."),
        "ok complete"
    );
}

#[test]
fn explicit_shutdown_then_reopen_replays_nothing() {
    let dir = data_dir("shutdown");
    {
        let (engine, _) = open(&dir, FsyncPolicy::Never, 0);
        engine.handle("assert edge(a, b).");
        engine.handle("assert edge(b, c).");
        engine.shutdown_durability().expect("clean shutdown");
    }
    let (engine, report) = open(&dir, FsyncPolicy::Never, 0);
    assert_eq!(report.replayed_ops, 0, "{report:?}");
    assert!(report.from_checkpoint);
    assert_eq!(engine.epochs(), (0, 2));
    assert_eq!(
        engine.handle("eval q(X, Y) :- edge(X, Y)."),
        "ok 2 (a, b); (b, c)"
    );
}

#[test]
fn server_stop_flushes_durable_state() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let dir = data_dir("server-stop");
    {
        let (engine, _) = open(&dir, FsyncPolicy::Never, 0);
        let server = Server::start(Arc::new(engine), "127.0.0.1:0", 2).expect("server start");
        let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
        conn.write_all(b"compl edge(X, Y) ; true.\nassert edge(a, b).\nepochs\n")
            .expect("send");
        let mut lines = BufReader::new(conn.try_clone().expect("clone")).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "ok epoch=1");
        assert_eq!(lines.next().unwrap().unwrap(), "ok inserted");
        assert_eq!(lines.next().unwrap().unwrap(), "ok tcs=1 data=1");
        server.stop();
    }
    // The clean stop wrote a final checkpoint: nothing left to replay.
    let (engine, report) = open(&dir, FsyncPolicy::Never, 0);
    assert_eq!(report.replayed_ops, 0, "{report:?}");
    assert_eq!(engine.epochs(), (1, 1));
    assert_eq!(engine.handle("check q(X, Y) :- edge(X, Y)."), "ok complete");
    assert_eq!(engine.handle("eval q(X, Y) :- edge(X, Y)."), "ok 1 (a, b)");
}

#[test]
fn torn_wal_tail_is_discarded_on_recovery() {
    let dir = data_dir("torn");
    {
        let (engine, _) = open(&dir, FsyncPolicy::Never, 0);
        engine.handle("assert edge(a, b).");
        engine.handle("assert edge(b, c).");
        engine.shutdown_durability().expect("flush");
    }
    // Remove the shutdown checkpoint so recovery must lean on the WAL,
    // then tear bytes off the end of the newest segment.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "snap") {
            std::fs::remove_file(&path).unwrap();
        }
    }
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    let newest = segments
        .iter()
        .rev()
        .find(|p| std::fs::metadata(p).unwrap().len() > 8)
        .expect("a segment with records");
    let bytes = std::fs::read(newest).unwrap();
    std::fs::write(newest, &bytes[..bytes.len() - 2]).unwrap();
    let (engine, report) = open(&dir, FsyncPolicy::Never, 0);
    assert!(report.discarded_bytes > 0, "{report:?}");
    // The torn record is gone; everything before it recovered. (The mark
    // and the second assert shared the tail segment, so exactly the tear
    // is lost.)
    assert_eq!(engine.epochs(), (0, report.data_epoch));
    let reply = engine.handle("eval q(X, Y) :- edge(X, Y).");
    assert!(
        reply == "ok 1 (a, b)" || reply == "ok 2 (a, b); (b, c)",
        "{reply}"
    );
}

#[test]
fn corrupt_sealed_data_is_a_clean_error_not_a_panic() {
    let dir = data_dir("corrupt");
    {
        let (engine, _) = open(&dir, FsyncPolicy::Never, 0);
        engine.handle("assert edge(a, b).");
        engine.shutdown_durability().expect("flush");
    }
    // Garbage over every checkpoint: recovery must refuse (the WAL may
    // have been truncated against those checkpoints), with an error, not
    // a panic and not a silently empty session.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "snap") {
            std::fs::write(&path, b"not a checkpoint at all").unwrap();
        }
    }
    let err = Engine::open_durable(
        &dir,
        opts(FsyncPolicy::Never, 0),
        magik_exec::Executor::Sequential,
    )
    .expect_err("corrupt checkpoints must refuse recovery");
    let msg = err.to_string();
    assert!(msg.contains("corrupt"), "{msg}");
}

#[test]
fn wal_and_checkpoint_metrics_are_reported() {
    let dir = data_dir("metrics");
    {
        // checkpoint_every=2: the third mutation triggers a background
        // checkpoint.
        let (engine, _) = open(&dir, FsyncPolicy::Always, 2);
        engine.handle("assert edge(a, b).");
        engine.handle("assert edge(b, c).");
        engine.handle("assert edge(c, d).");
        let metrics = engine.handle("metrics");
        assert!(metrics.contains("wal.appends=3"), "{metrics}");
        assert!(metrics.contains("wal.fsyncs=3"), "{metrics}");
        assert!(!metrics.contains("wal.bytes=0"), "{metrics}");
        assert!(metrics.contains("recovery.replayed_ops=0"), "{metrics}");
        // No shutdown: drop unclean so the reopen has records to replay.
    }
    let (engine, _) = open(&dir, FsyncPolicy::Always, 2);
    let metrics = engine.handle("metrics");
    let replayed = metrics
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("recovery.replayed_ops="))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("recovery.replayed_ops rendered");
    // A background checkpoint may or may not have completed before the
    // drop; either way checkpoint coverage plus replay reconstructs all
    // three ops.
    assert!(replayed <= 3, "{metrics}");
    assert_eq!(engine.epochs(), (0, 3));
    assert_eq!(
        engine.handle("eval q(X, Y) :- edge(X, Y)."),
        "ok 3 (a, b); (b, c); (c, d)"
    );
}

#[test]
fn duplicate_asserts_and_absent_retracts_are_not_logged() {
    let dir = data_dir("noop");
    {
        let (engine, _) = open(&dir, FsyncPolicy::Always, 0);
        engine.handle("assert edge(a, b).");
        assert_eq!(engine.handle("assert edge(a, b)."), "ok duplicate");
        assert_eq!(engine.handle("retract edge(z, z)."), "ok absent");
        let metrics = engine.handle("metrics");
        assert!(metrics.contains("wal.appends=1"), "{metrics}");
    }
    let (_, report) = open(&dir, FsyncPolicy::Always, 0);
    assert_eq!(report.replayed_ops, 1);
}

// ---------------------------------------------------------------------
// Property test: recovered-from-disk == fresh-in-memory.

#[derive(Debug, Clone)]
enum DOp {
    Compl(usize, usize),
    Assert(usize, u8, u8),
    Retract(usize, u8, u8),
}

impl DOp {
    /// The protocol request this op issues (identical on both engines).
    fn request(&self) -> String {
        match self {
            // A small TCS pool: `p<i>` complete when `p<j>` rows exist in
            // the ideal DB, plus unconditional variants.
            DOp::Compl(p, c) => match c % 3 {
                0 => format!("compl p{p}(X, Y) ; true."),
                1 => format!("compl p{p}(X, Y) ; p{}(Y, Z).", (p + 1) % 3),
                _ => format!("compl p{p}(X, c1) ; true."),
            },
            DOp::Assert(p, a, b) => format!("assert p{p}(c{a}, c{b})."),
            DOp::Retract(p, a, b) => format!("retract p{p}(c{a}, c{b})."),
        }
    }
}

fn dop() -> impl Strategy<Value = DOp> {
    prop_oneof![
        2 => ((0..3usize), (0..3usize)).prop_map(|(p, c)| DOp::Compl(p, c)),
        4 => ((0..3usize), (1..4u8), (1..4u8)).prop_map(|(p, a, b)| DOp::Assert(p, a, b)),
        2 => ((0..3usize), (1..4u8), (1..4u8)).prop_map(|(p, a, b)| DOp::Retract(p, a, b)),
    ]
}

/// Queries probing both evaluation (facts) and completeness (TCS).
const PROBES: [&str; 4] = [
    "q(X, Y) :- p0(X, Y).",
    "q(X) :- p1(X, Y), p2(Y, Z).",
    "q(X) :- p0(X, c1).",
    "q(X, Z) :- p2(X, Y), p0(Y, Z).",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn recovery_agrees_with_in_memory_engine(ops in proptest::collection::vec(dop(), 1..20)) {
        let dir = data_dir("prop");
        let reference = Engine::new();
        {
            // checkpoint_every=5 exercises the background checkpointer
            // mid-sequence; fsync Never is sound here because the process
            // survives (recovery reads what the page cache holds).
            let (durable, _) = open(&dir, FsyncPolicy::Never, 5);
            for op in &ops {
                let req = op.request();
                prop_assert_eq!(durable.handle(&req), reference.handle(&req), "{}", req);
            }
            // Crash: no shutdown, background checkpoints in whatever
            // state they reached.
        }
        let (recovered, _) = open(&dir, FsyncPolicy::Never, 5);
        prop_assert_eq!(recovered.epochs(), reference.epochs());
        for probe in PROBES {
            let ev = format!("eval {probe}");
            prop_assert_eq!(recovered.handle(&ev), reference.handle(&ev), "{}", ev);
            let ck = format!("check {probe}");
            prop_assert_eq!(recovered.handle(&ck), reference.handle(&ck), "{}", ck);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
