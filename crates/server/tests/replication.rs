//! In-process replication tests: a durable primary served by the event
//! loop, replicas following its WAL over TCP, bootstrap from a
//! checkpoint when the log is pruned, read-only enforcement, and the
//! `replication` status command.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use magik_server::{
    initial_sync, run_replica, DurabilityOptions, Engine, ReplicaStatus, Server, ServerConfig,
};
use magik_storage::FsyncPolicy;

fn data_dir(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "magik-replication-{name}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn open(dir: &std::path::Path, checkpoint_every: u64) -> Engine {
    let (engine, _) = Engine::open_durable(
        dir,
        DurabilityOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 1 << 12,
            checkpoint_every,
        },
        magik_exec::Executor::Sequential,
    )
    .expect("durable open");
    engine
}

fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let start = Instant::now();
    while !pred() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The smallest sequence number among retained `wal-*.log` segments
/// (0 when none exist; a fresh log's first segment is also seq 0, so a
/// value above 0 means checkpointing pruned the front of the log).
fn earliest_wal_seq(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("read data dir")
        .filter_map(|e| {
            let name = e.expect("dir entry").file_name();
            let name = name.to_string_lossy().into_owned();
            name.strip_prefix("wal-")?
                .strip_suffix(".log")?
                .parse::<u64>()
                .ok()
        })
        .min()
        .unwrap_or(0)
}

fn has_checkpoint(dir: &std::path::Path) -> bool {
    std::fs::read_dir(dir).expect("read data dir").any(|e| {
        e.expect("dir entry")
            .file_name()
            .to_string_lossy()
            .starts_with("ckpt-")
    })
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        writer
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { writer, reader }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("receive");
        reply.trim_end().to_string()
    }
}

/// A replica running in this process: durable engine, follower thread,
/// and a read-only server.
struct Replica {
    engine: Arc<Engine>,
    status: Arc<ReplicaStatus>,
    stop: Arc<AtomicBool>,
    server: Server,
    follower: Option<std::thread::JoinHandle<()>>,
}

impl Replica {
    fn start(dir: &std::path::Path, primary: &str) -> Replica {
        initial_sync(primary, dir).expect("initial sync");
        let engine = Arc::new(open(dir, 0));
        let status = Arc::new(ReplicaStatus::new());
        let stop = Arc::new(AtomicBool::new(false));
        let server = Server::start_with(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                read_only: true,
                replica_status: Some(Arc::clone(&status)),
            },
        )
        .expect("bind replica");
        let follower = {
            let engine = Arc::clone(&engine);
            let status = Arc::clone(&status);
            let stop = Arc::clone(&stop);
            let primary = primary.to_string();
            std::thread::spawn(move || run_replica(&engine, &primary, &status, &stop))
        };
        Replica {
            engine,
            status,
            stop,
            server,
            follower: Some(follower),
        }
    }

    fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.follower.take() {
            t.join().expect("follower thread");
        }
        self.server.stop();
    }
}

#[test]
fn replica_follows_a_live_primary_and_serves_identical_verdicts() {
    let primary_dir = data_dir("live-primary");
    let primary_engine = Arc::new(open(&primary_dir, 0));
    let primary = Server::start(Arc::clone(&primary_engine), "127.0.0.1:0", 2).expect("bind");
    let primary_addr = primary.local_addr().to_string();

    // History before the replica exists.
    assert_eq!(
        primary_engine.handle("compl school(S, primary, D) ; true."),
        "ok epoch=1"
    );
    assert_eq!(
        primary_engine.handle("compl pupil(N, C, S) ; school(S, T, merano)."),
        "ok epoch=2"
    );
    for i in 0..10 {
        assert_eq!(
            primary_engine.handle(&format!("assert pupil(p{i}, c1, hofer).")),
            "ok inserted"
        );
    }

    let replica_dir = data_dir("live-replica");
    let replica = Replica::start(&replica_dir, &primary_addr);

    // Catch-up: the replica replays history it never witnessed live.
    wait_until("catch-up", Duration::from_secs(10), || {
        replica.engine.epochs() == primary_engine.epochs()
    });

    // Live streaming: mutations after subscription arrive too.
    for i in 10..20 {
        assert_eq!(
            primary_engine.handle(&format!("assert pupil(p{i}, c1, hofer).")),
            "ok inserted"
        );
    }
    wait_until("live convergence", Duration::from_secs(10), || {
        replica.engine.epochs() == primary_engine.epochs()
    });
    assert!(
        replica.status.is_connected(),
        "follower should be connected"
    );

    // Byte-identical verdicts and answers on both nodes.
    let mut p = Client::connect(primary.local_addr());
    let mut r = Client::connect(replica.server.local_addr());
    for q in [
        "check q(N) :- pupil(N, C, S), school(S, primary, merano).",
        "check q(N) :- pupil(N, C, S), school(S, primary, bolzano).",
        "eval q(N) :- pupil(N, C, S).",
    ] {
        assert_eq!(p.request(q), r.request(q), "nodes diverge on `{q}`");
    }

    // Read-only enforcement on the replica's wire.
    let refused = r.request("assert pupil(x, c1, hofer).");
    assert!(
        refused.starts_with("err readonly"),
        "replica accepted a write: {refused}"
    );

    // Status lines for both roles.
    let ps = p.request("replication");
    assert!(
        ps.starts_with("ok role=primary durable=true") && ps.contains("subscribers=1"),
        "primary status: {ps}"
    );
    let rs = r.request("replication");
    assert!(
        rs.starts_with("ok role=replica connected=true") && rs.ends_with("lag=0"),
        "replica status: {rs}"
    );

    replica.shutdown();
    primary.stop();
}

#[test]
fn replica_bootstraps_from_a_checkpoint_when_the_log_is_pruned() {
    let primary_dir = data_dir("ckpt-primary");
    // Aggressive checkpointing with tiny segments: after enough
    // mutations the early WAL segments are pruned and a joining replica
    // cannot be served from the log alone.
    let primary_engine = Arc::new(open(&primary_dir, 4));
    let primary = Server::start(Arc::clone(&primary_engine), "127.0.0.1:0", 2).expect("bind");
    let primary_addr = primary.local_addr().to_string();

    assert_eq!(
        primary_engine.handle("compl school(S, T, D) ; true."),
        "ok epoch=1"
    );
    for i in 0..200 {
        assert_eq!(
            primary_engine.handle(&format!("assert school(s{i}, primary, bz).")),
            "ok inserted"
        );
    }
    // Checkpoints run in the background; wait until one landed and the
    // initial segment (`wal-0`) is gone — history before the surviving
    // segments is then unreachable from the log alone.
    wait_until("log pruning", Duration::from_secs(10), || {
        has_checkpoint(&primary_dir) && earliest_wal_seq(&primary_dir) > 0
    });

    let replica_dir = data_dir("ckpt-replica");
    let installed = initial_sync(&primary_addr, &replica_dir).expect("initial sync");
    assert!(
        installed.is_some(),
        "a pruned primary must offer its checkpoint to a fresh replica"
    );

    let replica = Replica::start(&replica_dir, &primary_addr);
    wait_until(
        "post-bootstrap convergence",
        Duration::from_secs(10),
        || replica.engine.epochs() == primary_engine.epochs(),
    );

    let mut p = Client::connect(primary.local_addr());
    let mut r = Client::connect(replica.server.local_addr());
    let q = "eval q(S) :- school(S, primary, bz).";
    assert_eq!(p.request(q), r.request(q));

    replica.shutdown();
    primary.stop();
}

#[test]
fn replication_from_a_memory_only_primary_is_refused() {
    let server = Server::start(Arc::new(Engine::new()), "127.0.0.1:0", 2).expect("bind");
    let mut c = Client::connect(server.local_addr());
    let reply = c.request("replicate 0 0");
    assert!(
        reply.starts_with("err proto replication requires a durable primary"),
        "got: {reply}"
    );
    server.stop();
}

#[test]
fn pipelined_replicate_is_refused() {
    let server = Server::start(Arc::new(Engine::new()), "127.0.0.1:0", 2).expect("bind");
    let mut c = Client::connect(server.local_addr());
    // `replicate` hands the raw socket to a streamer; anything pipelined
    // behind it would be silently swallowed, so the server refuses.
    c.writer
        .write_all(b"ping\nreplicate 0 0\nping\n")
        .expect("pipeline");
    let mut first = String::new();
    c.reader.read_line(&mut first).expect("first");
    assert_eq!(first.trim_end(), "ok pong");
    let mut second = String::new();
    c.reader.read_line(&mut second).expect("second");
    assert_eq!(second.trim_end(), "err proto replicate cannot be pipelined");
    server.stop();
}
