//! Log-shipping replication: a primary streams its WAL to replicas.
//!
//! The engine's durability design makes replication almost free: every
//! mutation is already serialized through one writer mutex and appended
//! to the WAL (with its **post-op epochs**) before it is applied, so the
//! log *is* a complete, totally ordered description of the session. A
//! replica is simply a second engine that replays that log through the
//! normal request path — the same path crash recovery uses — and serves
//! the resulting epoch-tagged snapshots read-only.
//!
//! # Protocol
//!
//! A replica connects to the primary's ordinary request port and sends
//! one line, its current position:
//!
//! ```text
//! replicate <tcs_epoch> <data_epoch>
//! ```
//!
//! The primary answers with one of:
//!
//! * `ok replicate stream tcs=<t> data=<d>` — the retained log covers
//!   the replica's position; WAL frames follow immediately.
//! * `ok replicate snapshot tcs=<t> data=<d> len=<n>` — checkpointing
//!   has pruned the log past the replica's position. `<n>` raw bytes of
//!   the primary's newest checkpoint image follow, then WAL frames for
//!   everything after the image.
//! * `err …` — the handshake failed (memory-only primary, replica ahead
//!   of the primary, …).
//!
//! After the handshake the connection is a one-way stream of frames in
//! the WAL's own on-disk format — `[payload_len u32 LE][crc32 u32 LE]
//! [payload]` — carrying [`WalRecord`]s: `Op` records to apply, and
//! `Mark` records as heartbeats that advertise the primary's current
//! epochs (the replica derives its lag from them). Frames are CRC-checked
//! and epoch-verified on the replica: every applied op must re-derive
//! exactly the epochs the primary logged for it, or the replica drops
//! the connection rather than diverge silently.
//!
//! # Consistency
//!
//! The publish hook runs under the primary's writer mutex right after
//! the WAL append, so the live feed is gap-free and in log order. The
//! streamer subscribes to the feed *before* scanning the log for
//! catch-up records; the overlap between the two sources is removed by
//! a strictly-increasing epoch-sum filter (each logged op advances the
//! sum by exactly one). A replica applies through its own durable
//! engine, so it keeps its own WAL and checkpoints and rejoins from its
//! local position after a crash — `SIGKILL` on a replica loses nothing.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use magik_storage::{crc32, install_checkpoint, Store, WalRecord, MAX_FRAME_PAYLOAD};

use crate::engine::Engine;

/// Per-subscriber live-feed queue depth. A streamer that falls this far
/// behind the write rate is dropped from the hub (its replica reconnects
/// and catches up from the log) instead of back-pressuring writers.
const SUB_QUEUE: usize = 1024;

/// How long a streamer waits for a live record before sending a `Mark`
/// heartbeat, which doubles as the replica's lag signal.
const HEARTBEAT: Duration = Duration::from_millis(500);

/// Write timeout on a replication stream: a replica that stops draining
/// its socket for this long is dropped (it reconnects and catches up).
const STREAM_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Read timeout on the replica side. The primary heartbeats every
/// [`HEARTBEAT`], so this much silence means the primary (or the path to
/// it) is gone and the replica should reconnect.
const REPLICA_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// First reconnect delay after a replication failure; doubles per retry.
const RECONNECT_START: Duration = Duration::from_millis(100);

/// Reconnect delay cap.
const RECONNECT_CAP: Duration = Duration::from_secs(2);

/// The live mutation feed: the engine publishes every WAL-appended
/// record here (under the writer mutex, so feed order is log order) and
/// each replication streamer holds a subscription.
#[derive(Debug, Default)]
pub(crate) struct ReplicationHub {
    subs: Mutex<Vec<SyncSender<WalRecord>>>,
}

impl ReplicationHub {
    /// Adds a subscriber and returns its receiving end.
    pub(crate) fn subscribe(&self) -> Receiver<WalRecord> {
        let (tx, rx) = sync_channel(SUB_QUEUE);
        self.subs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(tx);
        rx
    }

    /// Fans one record out to every subscriber. A subscriber whose queue
    /// is full (or whose streamer is gone) is dropped: replication must
    /// never block or slow the write path.
    pub(crate) fn publish(&self, rec: &WalRecord) {
        let mut subs = self.subs.lock().unwrap_or_else(PoisonError::into_inner);
        subs.retain(|tx| tx.try_send(rec.clone()).is_ok());
    }

    /// How many streamers are currently subscribed.
    pub(crate) fn subscribers(&self) -> usize {
        self.subs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// What a replica knows about its primary, shared between the apply
/// loop and the read-only server's `replication` status request.
#[derive(Debug, Default)]
pub struct ReplicaStatus {
    connected: AtomicBool,
    primary_tcs: AtomicU64,
    primary_data: AtomicU64,
}

impl ReplicaStatus {
    /// Creates a status handle (disconnected, primary epochs unknown).
    pub fn new() -> ReplicaStatus {
        ReplicaStatus::default()
    }

    /// Whether the apply loop currently holds a replication stream.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// The primary's last advertised `(tcs_epoch, data_epoch)`.
    pub fn primary_epochs(&self) -> (u64, u64) {
        (
            self.primary_tcs.load(Ordering::SeqCst),
            self.primary_data.load(Ordering::SeqCst),
        )
    }

    fn observe(&self, tcs_epoch: u64, data_epoch: u64) {
        self.primary_tcs.store(tcs_epoch, Ordering::SeqCst);
        self.primary_data.store(data_epoch, Ordering::SeqCst);
        self.connected.store(true, Ordering::SeqCst);
    }

    fn disconnected(&self) {
        self.connected.store(false, Ordering::SeqCst);
    }
}

fn io_other(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

/// Writes one WAL-format frame to the stream.
fn write_frame(w: &mut impl Write, rec: &WalRecord) -> std::io::Result<()> {
    let payload = rec.encode_payload();
    let len = u32::try_from(payload.len()).map_err(io_other)?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(&payload).to_le_bytes())?;
    w.write_all(&payload)
}

/// Reads and validates one WAL-format frame from the stream.
fn read_frame(r: &mut impl Read) -> std::io::Result<WalRecord> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len == 0 || len > MAX_FRAME_PAYLOAD {
        return Err(io_other(format!("replication frame of {len} bytes")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(io_other("replication frame CRC mismatch"));
    }
    WalRecord::decode_payload(&payload).map_err(io_other)
}

/// Serves one replication stream on the primary: handshake reply
/// (stream, snapshot bootstrap, or error), catch-up from the WAL, then
/// the live feed with heartbeats, until the replica disconnects, falls
/// too far behind, or the server stops. Runs on a dedicated thread — a
/// replication stream is connection-lifetime work and must not occupy a
/// request worker.
pub(crate) fn serve_replica(
    mut stream: TcpStream,
    engine: &Arc<Engine>,
    stop: &AtomicBool,
    from: (u64, u64),
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(STREAM_WRITE_TIMEOUT))?;
    if !engine.is_durable() {
        stream.write_all(b"err proto replication requires a durable primary (--data-dir)\n")?;
        return Ok(());
    }
    // Subscribe before scanning the log so no record can fall between
    // catch-up and the live feed; the epoch-sum filter drops the overlap.
    let live = engine.replication_hub().subscribe();
    let from_sum = from.0 + from.1;
    let (cur_te, cur_de) = engine.epochs();
    if from_sum > cur_te + cur_de {
        stream.write_all(b"err proto replica position is ahead of the primary\n")?;
        return Ok(());
    }
    let mut backlog = engine.wal_records_since(from_sum).map_err(io_other)?;
    // The log is a contiguous tail; a first record past `from_sum + 1`
    // means checkpointing pruned the replica's position away.
    let gap = from_sum < cur_te + cur_de
        && backlog
            .first()
            .is_none_or(|r| r.epoch_sum() != from_sum + 1);
    let mut last_sum = from_sum;
    if gap {
        let Some((te, de, bytes)) = engine.newest_checkpoint_raw().map_err(io_other)? else {
            stream.write_all(b"err storage primary pruned the log and holds no checkpoint\n")?;
            return Ok(());
        };
        if te + de <= from_sum {
            stream.write_all(b"err storage primary log has a gap it cannot bridge\n")?;
            return Ok(());
        }
        backlog = engine.wal_records_since(te + de).map_err(io_other)?;
        last_sum = te + de;
        stream.write_all(
            format!(
                "ok replicate snapshot tcs={te} data={de} len={}\n",
                bytes.len()
            )
            .as_bytes(),
        )?;
        stream.write_all(&bytes)?;
        engine.metrics().record_repl_snapshot();
    } else {
        stream.write_all(format!("ok replicate stream tcs={cur_te} data={cur_de}\n").as_bytes())?;
    }
    let mut ship = |stream: &mut TcpStream, rec: &WalRecord| -> std::io::Result<()> {
        if let WalRecord::Op { .. } = rec {
            if rec.epoch_sum() <= last_sum {
                return Ok(()); // catch-up / live-feed overlap
            }
            last_sum = rec.epoch_sum();
        }
        write_frame(stream, rec)?;
        engine.metrics().record_repl_shipped(1);
        Ok(())
    };
    for rec in std::mem::take(&mut backlog) {
        ship(&mut stream, &rec)?;
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match live.recv_timeout(HEARTBEAT) {
            Ok(rec) => ship(&mut stream, &rec)?,
            Err(RecvTimeoutError::Timeout) => {
                let (te, de) = engine.epochs();
                write_frame(
                    &mut stream,
                    &WalRecord::Mark {
                        tcs_epoch: te,
                        data_epoch: de,
                    },
                )?;
                stream.flush()?;
            }
            // The hub dropped this subscription (queue overflow) or the
            // engine is gone; the replica reconnects and catches up.
            Err(RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// The replica's position on disk before its engine opens: the epochs
/// recovery would reach from `dir`, or `(0, 0)` for a fresh directory.
fn local_position(dir: &Path) -> Result<(u64, u64), String> {
    if !dir.exists() {
        return Ok((0, 0));
    }
    let recovery = Store::peek(dir).map_err(|e| e.to_string())?;
    Ok(recovery.final_epochs())
}

/// Pre-flight bootstrap for a replica, run **before** its engine opens:
/// asks the primary whether the replica's on-disk position can still be
/// served from the retained log and, if not, downloads and installs the
/// primary's newest checkpoint image (fully validated before it is
/// renamed into place). Either way the connection is then closed; the
/// caller opens the engine through normal crash recovery — which seeds
/// from the installed image — and starts [`run_replica`].
///
/// Returns the `(tcs_epoch, data_epoch)` of the installed image, or
/// `None` when the log covers the local position and no image was
/// needed.
pub fn initial_sync(primary: &str, dir: &Path) -> Result<Option<(u64, u64)>, String> {
    let (te, de) = local_position(dir)?;
    let stream = TcpStream::connect(primary)
        .map_err(|e| format!("cannot reach primary `{primary}`: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    reader
        .get_mut()
        .write_all(format!("replicate {te} {de}\n").as_bytes())
        .map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let line = line.trim();
    if line.starts_with("ok replicate stream") {
        return Ok(None);
    }
    let Some(rest) = line.strip_prefix("ok replicate snapshot ") else {
        return Err(format!("primary refused replication: {line}"));
    };
    let len = rest
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("len="))
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| format!("malformed snapshot header: {line}"))?;
    let mut bytes = vec![0u8; len];
    reader
        .read_exact(&mut bytes)
        .map_err(|e| format!("snapshot transfer failed: {e}"))?;
    let epochs = install_checkpoint(dir, &bytes).map_err(|e| e.to_string())?;
    Ok(Some(epochs))
}

/// One replication session: connect, hand the primary our position,
/// apply every shipped op through the normal request path (verifying it
/// re-derives the logged epochs), until an error or `stop`. Counts the
/// frames it handled into `processed` as it goes, so the caller can
/// reset its backoff after a productive session even when the session
/// ends in an error.
fn replicate_once(
    engine: &Arc<Engine>,
    primary: &str,
    status: &ReplicaStatus,
    stop: &AtomicBool,
    processed: &mut u64,
) -> Result<(), String> {
    let stream = TcpStream::connect(primary).map_err(|e| e.to_string())?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(REPLICA_READ_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let (te, de) = engine.epochs();
    let mut reader = BufReader::new(stream);
    reader
        .get_mut()
        .write_all(format!("replicate {te} {de}\n").as_bytes())
        .map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let line = line.trim().to_string();
    if line.starts_with("ok replicate snapshot") {
        // The primary pruned our position away while we were running.
        // A live engine cannot swallow a checkpoint image; the replica
        // must be restarted so `initial_sync` can install it first.
        return Err(
            "replica fell behind the primary's retained log; restart it to bootstrap \
             from a checkpoint"
                .to_string(),
        );
    }
    if !line.starts_with("ok replicate stream") {
        return Err(format!("primary refused replication: {line}"));
    }
    if let Some((pte, pde)) = parse_epoch_header(&line) {
        status.observe(pte, pde);
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let rec = read_frame(&mut reader).map_err(|e| e.to_string())?;
        *processed += 1;
        match rec {
            WalRecord::Mark {
                tcs_epoch,
                data_epoch,
            } => status.observe(tcs_epoch, data_epoch),
            WalRecord::Op {
                kind,
                ref text,
                tcs_epoch,
                data_epoch,
            } => {
                let sum = tcs_epoch + data_epoch;
                let (ete, ede) = engine.epochs();
                if sum <= ete + ede {
                    // Catch-up overlap with what we already hold.
                    status.observe(tcs_epoch, data_epoch);
                    continue;
                }
                if sum != ete + ede + 1 {
                    return Err(format!(
                        "gap in the replication stream: at ({ete}, {ede}), \
                         next op is ({tcs_epoch}, {data_epoch})"
                    ));
                }
                let reply = engine.handle(&format!("{} {text}", kind.verb()));
                if !reply.starts_with("ok") {
                    return Err(format!("replicated op rejected: `{reply}`"));
                }
                if engine.epochs() != (tcs_epoch, data_epoch) {
                    return Err(format!(
                        "replicated op diverged: logged ({tcs_epoch}, {data_epoch}), \
                         applied to {:?}",
                        engine.epochs()
                    ));
                }
                engine.metrics().record_repl_applied();
                status.observe(tcs_epoch, data_epoch);
            }
        }
    }
}

/// The replica's apply loop: replication sessions with exponential
/// reconnect backoff, until `stop`. Meant for a dedicated thread next to
/// the replica's read-only server; `status` is shared with that server's
/// `replication` request.
pub fn run_replica(
    engine: &Arc<Engine>,
    primary: &str,
    status: &Arc<ReplicaStatus>,
    stop: &Arc<AtomicBool>,
) {
    let mut backoff = RECONNECT_START;
    while !stop.load(Ordering::SeqCst) {
        let mut processed = 0u64;
        let outcome = replicate_once(engine, primary, status, stop, &mut processed);
        status.disconnected();
        if outcome.is_ok() || stop.load(Ordering::SeqCst) {
            // Only a stop request ends a session cleanly.
            return;
        }
        if processed > 0 {
            backoff = RECONNECT_START;
        }
        // Sleep in short slices so a stop request is honored promptly.
        let mut left = backoff;
        while !left.is_zero() && !stop.load(Ordering::SeqCst) {
            let step = left.min(Duration::from_millis(25));
            std::thread::sleep(step);
            left = left.saturating_sub(step);
        }
        backoff = (backoff * 2).min(RECONNECT_CAP);
    }
}

/// Parses `tcs=<t> data=<d>` fields out of a handshake header line.
fn parse_epoch_header(line: &str) -> Option<(u64, u64)> {
    let mut te = None;
    let mut de = None;
    for kv in line.split_whitespace() {
        if let Some(v) = kv.strip_prefix("tcs=") {
            te = v.parse().ok();
        } else if let Some(v) = kv.strip_prefix("data=") {
            de = v.parse().ok();
        }
    }
    Some((te?, de?))
}
