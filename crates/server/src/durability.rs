//! The engine's optional durability layer: WAL-before-publish plus a
//! background checkpointer, on top of [`magik_storage`].
//!
//! # Write path
//!
//! Mutations hold the writer mutex for their whole critical section, so
//! the durability protocol is simple **log-before-apply**: after the
//! no-op check (duplicate assert, absent retract) the op's request text
//! and *post-op* epochs are appended to the WAL (fsynced per policy);
//! only then is the in-memory change applied and published. An append
//! failure leaves memory untouched, returns `err storage …` to the
//! client, and **poisons** the layer — later mutations are refused
//! rather than silently diverging from the log. Read requests never
//! touch the layer at all.
//!
//! # Checkpointer
//!
//! Every logged op ticks a counter; when it reaches
//! [`DurabilityOptions::checkpoint_every`] the mutation path captures
//! the freshly published snapshot (plus a vocabulary clone — taken
//! *after* the snapshot, so it is a superset of the names the snapshot
//! uses) and hands it to a one-worker background pool. The worker
//! serializes and fsyncs the checkpoint while the engine keeps serving;
//! it serializes against shutdown's final checkpoint on the store mutex.
//! Old checkpoint generations and fully covered WAL segments are pruned
//! by [`magik_storage::Store::checkpoint`] itself.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use magik_storage::{Append, FsyncPolicy, StorageError, Store, WalRecord};

/// Configuration for [`crate::Engine::open_durable`].
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Checkpoint after this many logged ops (0 disables periodic
    /// checkpoints; shutdown still writes a final one).
    pub checkpoint_every: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 1 << 20,
            checkpoint_every: 1024,
        }
    }
}

/// What crash recovery found and replayed when a durable engine opened.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// TCS epoch after recovery.
    pub tcs_epoch: u64,
    /// Data epoch after recovery.
    pub data_epoch: u64,
    /// Whether a checkpoint image was loaded (false = replay from empty).
    pub from_checkpoint: bool,
    /// Mutation ops replayed from the WAL tail.
    pub replayed_ops: u64,
    /// Torn-tail bytes discarded from the final WAL segment.
    pub discarded_bytes: u64,
    /// Corrupt checkpoint generations skipped before a valid one loaded.
    pub checkpoints_skipped: usize,
}

impl RecoveryReport {
    pub(crate) fn of(recovery: &magik_storage::Recovery) -> RecoveryReport {
        let (tcs_epoch, data_epoch) = recovery.final_epochs();
        RecoveryReport {
            tcs_epoch,
            data_epoch,
            from_checkpoint: recovery.checkpoint.is_some(),
            replayed_ops: recovery.replayed_ops(),
            discarded_bytes: recovery.discarded_bytes,
            checkpoints_skipped: recovery.checkpoints_skipped,
        }
    }
}

/// The engine-side durability state. Internal to the crate: the engine
/// drives it from its mutation paths.
#[derive(Debug)]
pub(crate) struct Durability {
    store: Mutex<Store>,
    /// Logged ops since the last checkpoint was scheduled.
    pub(crate) since_checkpoint: AtomicU64,
    /// CAS guard: at most one background checkpoint in flight.
    pub(crate) checkpointing: AtomicBool,
    /// Set when an append failed; all further mutations are refused.
    poisoned: AtomicBool,
    /// Checkpoint trigger threshold (0 = never periodic).
    pub(crate) checkpoint_every: u64,
}

impl Durability {
    pub(crate) fn new(store: Store, checkpoint_every: u64) -> Durability {
        Durability {
            store: Mutex::new(store),
            since_checkpoint: AtomicU64::new(0),
            checkpointing: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            checkpoint_every,
        }
    }

    /// The store, serialized: appends (under the writer mutex) and
    /// checkpoints (background worker or shutdown) both pass through here.
    pub(crate) fn store(&self) -> MutexGuard<'_, Store> {
        self.store.lock().expect("store lock")
    }

    /// Appends one record under the configured fsync policy. A failure
    /// poisons the layer: the log no longer reflects memory, so further
    /// mutations must be refused.
    pub(crate) fn append(&self, rec: &WalRecord) -> Result<Append, StorageError> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(StorageError::Io(std::io::Error::other(
                "durability layer poisoned by an earlier append failure",
            )));
        }
        let result = self.store().append(rec);
        if result.is_err() {
            self.poisoned.store(true, Ordering::SeqCst);
        }
        result
    }

    /// Whether an earlier append failure poisoned the layer.
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }
}
