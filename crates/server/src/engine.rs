//! The session engine: shared reasoning state plus caching and metrics.
//!
//! One [`Engine`] is shared by every connection (and every worker thread)
//! of a server. State is published as an immutable, epoch-tagged
//! **snapshot** behind a swap point:
//!
//! * `current: Mutex<Arc<StateSnapshot>>` — the swap point. Read-only
//!   requests (`check`, `eval`, `generalize`, `specialize`, `guaranteed`,
//!   `analyze`) lock it just long enough to clone the `Arc`, then
//!   evaluate entirely on the snapshot: **no lock is held during
//!   reasoning**, so a slow `specialize` never blocks a concurrent
//!   `check` or a writer.
//! * `writer: Mutex<WriterState>` — the mutable master copy (database,
//!   TCS set, incrementally maintained T_C materialization). Mutations
//!   (`assert`, `retract`, `compl`) serialize on it, apply their change,
//!   and publish a fresh snapshot before releasing the lock — so
//!   snapshots become visible in write order and epochs are monotone.
//!   Publishing is cheap: the relalg [`Instance`] is copy-on-write, so a
//!   [`magik_relalg::Snapshot`] is O(#relations) `Arc` bumps.
//! * `vocab: Mutex<Vocabulary>` — parsing interns names, so every request
//!   briefly serializes on the vocabulary; it is released (or cloned, for
//!   `specialize`) before any expensive reasoning. Acquired before
//!   `writer` when both are needed.
//! * per-cache `Mutex`es — held only for the probe/insert itself.
//!
//! # Epochs and caching
//!
//! A completeness verdict depends on the query and the TCS set **only**
//! (Theorem 3 reasons over the canonical database of the frozen query,
//! never over stored facts), so verdicts are cached under
//! `(canonical query, tcs_epoch)`. Evaluation answers depend on the query
//! and the stored facts, so they are cached under
//! `(canonical query, data_epoch)`. Each mutation bumps exactly the epochs
//! whose derived results it can change — `compl` bumps `tcs_epoch`,
//! `assert`/`retract` bump `data_epoch` — making stale cache keys
//! unreachable. Canonicalization ([`CanonicalQuery`]) makes the cache
//! robust against renamed variables, reordered atoms, and redundant atoms.
//!
//! # Incremental T_C
//!
//! The writer keeps the Section 5 Datalog encoding of the T_C operator
//! (`R^a ← R^i, G^i`) materialized over the stored facts via
//! [`magik_datalog::Materialized`]: `assert` propagates just the new
//! fact's consequences (delta semi-naive), `retract` repairs the model
//! with DRed (over-delete, then re-derive — see the `magik-datalog`
//! incremental module), and `compl` rebuilds the encoding. Each publish carries
//! a snapshot of the fixpoint model, so the `guaranteed` request answers
//! "is this fact certain to be in the available database?" in constant
//! time without touching the writer.
//!
//! # Parallelism
//!
//! The engine owns an [`Executor`]; the T_C fixpoint and the `specialize`
//! search fan out over it when it is pooled ([`Engine::with_session_on`]).
//! The default is sequential, which embeds cleanly in tests and tools.

use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use magik_analyze::{analyze_check, analyze_query, analyze_state, analyze_statements};
use magik_cert::{check_certificate, Certificate};
use magik_completeness::{
    cert_statements, certify, is_complete, k_mcs_on, mcg, tc_encoding, CanonicalQuery,
    ConstraintSet, KMcsOptions, TcSet,
};
use magik_datalog::Materialized;
use magik_exec::{CompiledQuery, ExecStats, Executor, PlanCache};
use magik_parser::{parse_atom, parse_query, parse_tcs, print_query};
use magik_relalg::{Answer, DisplayWith, Fact, Instance, Pred, Snapshot, Vocabulary};
use magik_storage::{
    CheckpointImage, OpKind, Recovery, StorageError, Store, StoreOptions, WalRecord,
};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::cache::LruCache;
use crate::durability::{Durability, DurabilityOptions, RecoveryReport};
use crate::metrics::{Metrics, Op};
use crate::replication::ReplicationHub;

/// Default capacity of the verdict cache.
const VERDICT_CACHE_CAP: usize = 1024;
/// Default capacity of the answer cache.
const ANSWER_CACHE_CAP: usize = 256;
/// Default capacity of the plan cache.
const PLAN_CACHE_CAP: usize = 256;
/// Default capacity of the state-analysis cache. Small: entries are
/// keyed by epoch pair, so at most one key is live at a time and the
/// rest only serve brief races against concurrent writers.
const ANALYSIS_CACHE_CAP: usize = 8;
/// Default capacity of the certified-verdict (`why`) cache.
const WHY_CACHE_CAP: usize = 256;

/// The state-analysis cache: the rendered `analyze state` reply, keyed
/// by the `(tcs_epoch, data_epoch)` pair it was computed against. The
/// live-session diagnostics (M018–M024) depend on the TCS set *and* the
/// stored facts, so either epoch bump makes the old key unreachable —
/// invalidation rides the existing writer-mutex mutation path for free.
type AnalysisCache = LruCache<(u64, u64), String>;

/// The writer's mutable master state, guarded by the engine's writer
/// mutex. Mutations edit it in place, then [`WriterState::publish`] a
/// fresh immutable snapshot.
#[derive(Debug)]
struct WriterState {
    /// The stored (available) database.
    db: Instance,
    /// The table-completeness statements (shared with snapshots; writers
    /// copy-on-write via [`Arc::make_mut`]).
    tcs: Arc<TcSet>,
    /// Bumped whenever `tcs` changes; part of every verdict-cache key.
    tcs_epoch: u64,
    /// Bumped whenever `db` changes; part of every answer-cache key.
    data_epoch: u64,
    /// The T_C encoding materialized over `db` (renamed to `R^i`).
    tc_mat: Materialized,
    /// Original predicate → its `R^i` variant in the encoding.
    ideal: BTreeMap<Pred, Pred>,
    /// Original predicate → its `R^a` variant in the encoding.
    avail: Arc<BTreeMap<Pred, Pred>>,
}

/// One immutable published state: what every read-only request evaluates
/// against, lock-free, after cloning the `Arc` out of the swap point.
#[derive(Debug)]
struct StateSnapshot {
    /// The stored database at publish time.
    db: Snapshot,
    /// The TCS set at publish time.
    tcs: Arc<TcSet>,
    /// TCS epoch of this snapshot.
    tcs_epoch: u64,
    /// Data epoch of this snapshot.
    data_epoch: u64,
    /// The materialized T_C fixpoint model at publish time.
    tc_model: Snapshot,
    /// Original predicate → its `R^a` variant in the encoding.
    avail: Arc<BTreeMap<Pred, Pred>>,
}

impl WriterState {
    /// Rebuilds the T_C materialization after the TCS set changed.
    fn rebuild_tc(&mut self, vocab: &mut Vocabulary, exec: &Executor) {
        let (program, ideal, avail) = tc_encoding(&self.tcs, vocab);
        let mut edb = Instance::new();
        for fact in self.db.iter_facts() {
            if let Some(&pi) = ideal.get(&fact.pred) {
                edb.insert(Fact::new(pi, fact.args));
            }
        }
        self.tc_mat = Materialized::with_executor(program, edb, exec.clone())
            .expect("the T_C encoding is a positive program");
        self.ideal = ideal;
        self.avail = Arc::new(avail);
    }

    /// Builds the immutable snapshot of the current state. O(#relations):
    /// both stores are copy-on-write, and the TCS and encoding maps are
    /// shared by `Arc`.
    fn publish(&self) -> Arc<StateSnapshot> {
        Arc::new(StateSnapshot {
            db: self.db.snapshot(),
            tcs: Arc::clone(&self.tcs),
            tcs_epoch: self.tcs_epoch,
            data_epoch: self.data_epoch,
            tc_model: self.tc_mat.model().snapshot(),
            avail: Arc::clone(&self.avail),
        })
    }
}

/// A shared, thread-safe completeness-reasoning session.
///
/// See the module docs for the snapshot-swap and caching design. All
/// request entry points take `&self`; an `Arc<Engine>` can be handed to
/// any number of worker threads.
#[derive(Debug)]
pub struct Engine {
    vocab: Mutex<Vocabulary>,
    writer: Mutex<WriterState>,
    /// The swap point: the latest published snapshot. Readers lock it
    /// only to clone the `Arc`; writers (holding the writer mutex)
    /// lock it only to store the next snapshot.
    current: Mutex<Arc<StateSnapshot>>,
    verdicts: Mutex<LruCache<(CanonicalQuery, u64), bool>>,
    answer_cache: Mutex<LruCache<(CanonicalQuery, u64), Vec<Answer>>>,
    /// Cached `analyze state` replies; see [`AnalysisCache`].
    analysis: Mutex<AnalysisCache>,
    /// Cached `why` replies (rendered, already-validated certificates).
    /// A certificate itself depends only on the query and the TCS set,
    /// but the key conservatively carries both epochs so any mutation
    /// makes the old entry unreachable, matching the protocol contract
    /// that `why` replies are stable per `(tcs_epoch, data_epoch)`.
    why_cache: Mutex<LruCache<(CanonicalQuery, u64, u64), String>>,
    /// Compiled plans keyed by canonical query form alone: canonical
    /// equality implies query equivalence, so a cached plan stays correct
    /// across data-epoch bumps (statistics drift affects only speed). The
    /// cache is cleared on TCS/vocabulary-shaping events (`compl`).
    plans: Mutex<PlanCache<CanonicalQuery>>,
    metrics: Arc<Metrics>,
    /// The optional durability layer ([`Engine::open_durable`]): WAL
    /// appended under the writer mutex before every applied mutation,
    /// plus the background checkpointer. `None` = memory-only session.
    durability: Option<Arc<Durability>>,
    /// One background worker for checkpoint serialization. Owned by the
    /// engine, not by [`Durability`]: checkpoint jobs hold an
    /// `Arc<Durability>`, and a pool inside it could end up dropped (and
    /// joined) from its own worker thread.
    checkpointer: Option<magik_runtime::ThreadPool>,
    /// The compute executor: T_C fixpoints and `specialize` fan out over
    /// it. Distinct from the server's connection pool, so reasoning tasks
    /// never compete with (or deadlock against) connection handlers.
    exec: Executor,
    /// The live mutation feed for log-shipping replication: every
    /// WAL-appended record is published here under the writer mutex (so
    /// feed order is log order). Streamers subscribe per replica.
    repl: Arc<ReplicationHub>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Creates an engine with an empty database and no TCS.
    pub fn new() -> Engine {
        Engine::with_session(Vocabulary::new(), TcSet::new(Vec::new()), Instance::new())
    }

    /// Creates an engine over pre-loaded session state (e.g. a document
    /// parsed by the CLI before serving), reasoning sequentially.
    pub fn with_session(vocab: Vocabulary, tcs: TcSet, db: Instance) -> Engine {
        Engine::with_session_on(vocab, tcs, db, Executor::Sequential)
    }

    /// Like [`Engine::with_session`], but reasoning on `exec`: pooled
    /// executors parallelize the T_C fixpoint and the `specialize`
    /// search.
    pub fn with_session_on(
        mut vocab: Vocabulary,
        tcs: TcSet,
        db: Instance,
        exec: Executor,
    ) -> Engine {
        let mut writer = WriterState {
            db,
            tcs: Arc::new(tcs),
            tcs_epoch: 0,
            data_epoch: 0,
            tc_mat: Materialized::new(
                magik_datalog::Program::new(Vec::new()).expect("empty program"),
                Instance::new(),
            )
            .expect("empty program is positive"),
            ideal: BTreeMap::new(),
            avail: Arc::new(BTreeMap::new()),
        };
        writer.rebuild_tc(&mut vocab, &exec);
        let current = writer.publish();
        Engine {
            vocab: Mutex::new(vocab),
            writer: Mutex::new(writer),
            current: Mutex::new(current),
            verdicts: Mutex::new(LruCache::new(VERDICT_CACHE_CAP)),
            answer_cache: Mutex::new(LruCache::new(ANSWER_CACHE_CAP)),
            analysis: Mutex::new(AnalysisCache::new(ANALYSIS_CACHE_CAP)),
            why_cache: Mutex::new(LruCache::new(WHY_CACHE_CAP)),
            plans: Mutex::new(PlanCache::new(PLAN_CACHE_CAP)),
            metrics: Arc::new(Metrics::new()),
            durability: None,
            checkpointer: None,
            exec,
            repl: Arc::new(ReplicationHub::default()),
        }
    }

    /// Opens (or creates) a **durable** engine over the data directory
    /// `dir`: recovers the newest valid checkpoint, replays the WAL tail
    /// through the normal request path (verifying every replayed op
    /// re-derives exactly the epochs the log recorded), then attaches the
    /// write-ahead logging and checkpointing layer so subsequent
    /// mutations are logged before they are applied.
    pub fn open_durable(
        dir: &Path,
        opts: DurabilityOptions,
        exec: Executor,
    ) -> Result<(Engine, RecoveryReport), StorageError> {
        let (store, recovery) = Store::open(
            dir,
            StoreOptions {
                fsync: opts.fsync,
                segment_bytes: opts.segment_bytes,
                checkpoints_kept: 2,
            },
        )?;
        let report = RecoveryReport::of(&recovery);
        let mut engine = Engine::replay(recovery, exec, dir)?;
        engine.metrics.set_replayed(report.replayed_ops);
        engine.durability = Some(Arc::new(Durability::new(store, opts.checkpoint_every)));
        if opts.checkpoint_every > 0 {
            engine.checkpointer = Some(magik_runtime::ThreadPool::new(1));
        }
        Ok((engine, report))
    }

    /// Verifies that the data under `dir` recovers cleanly — same
    /// checkpoint load and verified replay as [`Engine::open_durable`],
    /// but against a throwaway engine and **without** mutating the
    /// directory (no temp-file sweep, no fresh WAL segment). Backs
    /// `magik recover --verify`.
    pub fn verify_recovery(dir: &Path, exec: Executor) -> Result<RecoveryReport, StorageError> {
        let recovery = Store::peek(dir)?;
        let report = RecoveryReport::of(&recovery);
        Engine::replay(recovery, exec, dir)?;
        Ok(report)
    }

    /// Builds an engine from recovered state: the checkpoint image (if
    /// any) seeds the session, then the WAL tail replays through
    /// [`Engine::handle`] — the exact same parse/apply path live traffic
    /// takes. Every replayed op must succeed *and* land the engine on the
    /// epochs the log recorded for it; any disagreement is reported as
    /// corruption, never silently absorbed.
    fn replay(recovery: Recovery, exec: Executor, dir: &Path) -> Result<Engine, StorageError> {
        let engine = match recovery.checkpoint {
            Some(image) => {
                let e = Engine::with_session_on(image.vocab, image.tcs, image.db, exec);
                e.set_epochs(image.tcs_epoch, image.data_epoch);
                e
            }
            None => Engine::with_session_on(
                Vocabulary::new(),
                TcSet::new(Vec::new()),
                Instance::new(),
                exec,
            ),
        };
        for rec in &recovery.tail {
            let diverged = |got: String| StorageError::Corrupt {
                path: dir.to_path_buf(),
                detail: format!("replay diverged at logged epochs {:?}: {got}", rec.epochs()),
            };
            if let WalRecord::Op { kind, text, .. } = rec {
                let reply = engine.handle(&format!("{} {text}", kind.verb()));
                if !reply.starts_with("ok") {
                    return Err(diverged(format!("engine replied `{reply}`")));
                }
            }
            // Marks assert the current epochs; ops must have advanced to
            // exactly the epochs the record carries.
            if engine.epochs() != rec.epochs() {
                return Err(diverged(format!("engine is at {:?}", engine.epochs())));
            }
        }
        Ok(engine)
    }

    /// Locks an engine mutex, recovering from poison instead of
    /// propagating it. A handler that panicked while holding a lock must
    /// not become a permanent denial of service — `Mutex::lock` returns
    /// `Err` forever after a poisoning panic, and the old `.expect(...)`
    /// calls turned that into a panic on *every* subsequent request.
    /// `on_poison` repairs the guarded state where the abandoned value
    /// cannot be trusted (caches are cleared; see the per-lock
    /// accessors); every recovery is counted in the `lock.poisoned`
    /// metric.
    fn lock_recovering<'a, T>(
        &self,
        mutex: &'a Mutex<T>,
        on_poison: fn(&mut T),
    ) -> MutexGuard<'a, T> {
        match mutex.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                mutex.clear_poison();
                let mut guard = poisoned.into_inner();
                on_poison(&mut guard);
                self.metrics.record_lock_poisoned();
                guard
            }
        }
    }

    /// The vocabulary, poison-recovering: interning is append-only, so
    /// state abandoned mid-parse is at worst a superset of the names any
    /// request needs — safe to keep.
    fn lock_vocab(&self) -> MutexGuard<'_, Vocabulary> {
        self.lock_recovering(&self.vocab, |_| {})
    }

    /// The writer state, poison-recovering. Mutations publish only at
    /// the end of their critical section, so a panic mid-mutation leaves
    /// the last *published* snapshot (what every reader sees) intact;
    /// keeping the master copy is the availability-preserving choice.
    fn lock_writer(&self) -> MutexGuard<'_, WriterState> {
        self.lock_recovering(&self.writer, |_| {})
    }

    /// The snapshot swap point, poison-recovering: it only ever holds a
    /// fully published `Arc`, swapped atomically, so the value is valid
    /// no matter where a holder panicked.
    fn lock_current(&self) -> MutexGuard<'_, Arc<StateSnapshot>> {
        self.lock_recovering(&self.current, |_| {})
    }

    /// The verdict cache, poison-recovering by **clearing**: an entry
    /// half-inserted by a panicking thread must never be served, and a
    /// cold cache costs only recomputation.
    fn lock_verdicts(&self) -> MutexGuard<'_, LruCache<(CanonicalQuery, u64), bool>> {
        self.lock_recovering(&self.verdicts, LruCache::clear)
    }

    /// The answer cache, poison-recovering by clearing (see
    /// [`Engine::lock_verdicts`]).
    fn lock_answers(&self) -> MutexGuard<'_, LruCache<(CanonicalQuery, u64), Vec<Answer>>> {
        self.lock_recovering(&self.answer_cache, LruCache::clear)
    }

    /// The state-analysis cache, poison-recovering by clearing.
    fn lock_analysis(&self) -> MutexGuard<'_, AnalysisCache> {
        self.lock_recovering(&self.analysis, LruCache::clear)
    }

    /// The `why` cache, poison-recovering by clearing.
    fn lock_why(&self) -> MutexGuard<'_, LruCache<(CanonicalQuery, u64, u64), String>> {
        self.lock_recovering(&self.why_cache, LruCache::clear)
    }

    /// The plan cache, poison-recovering by clearing.
    fn lock_plans(&self) -> MutexGuard<'_, PlanCache<CanonicalQuery>> {
        self.lock_recovering(&self.plans, PlanCache::clear)
    }

    /// Seeds the epoch counters from a recovered checkpoint and
    /// republishes, so replay and caching see the restored history
    /// position instead of a fresh session's (0, 0).
    fn set_epochs(&self, tcs_epoch: u64, data_epoch: u64) {
        let mut writer = self.lock_writer();
        writer.tcs_epoch = tcs_epoch;
        writer.data_epoch = data_epoch;
        self.swap(&writer);
    }

    /// Flushes the durability layer for a clean shutdown: an epoch
    /// [`WalRecord::Mark`], a WAL fsync, and a final synchronous
    /// checkpoint (skipped when the newest on-disk checkpoint is already
    /// current) — after which a restart replays zero records. No-op for
    /// memory-only engines.
    pub fn shutdown_durability(&self) -> Result<(), StorageError> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        if d.is_poisoned() {
            return Err(StorageError::Io(std::io::Error::other(
                "durability layer poisoned; in-memory state was not flushed",
            )));
        }
        let snap = self.snapshot();
        let vocab = self.lock_vocab().clone();
        // One store guard across mark + flush + checkpoint serializes
        // against any in-flight background checkpoint.
        let mut store = d.store();
        store.append(&WalRecord::Mark {
            tcs_epoch: snap.tcs_epoch,
            data_epoch: snap.data_epoch,
        })?;
        store.flush()?;
        let start = Instant::now();
        let outcome = store.checkpoint(&CheckpointImage {
            vocab,
            tcs: (*snap.tcs).clone(),
            db: snap.db.to_instance(),
            tcs_epoch: snap.tcs_epoch,
            data_epoch: snap.data_epoch,
        })?;
        if outcome.written {
            self.metrics.record_checkpoint(start.elapsed());
        }
        Ok(())
    }

    /// Logs one mutation (with its post-op epochs) before it is applied.
    /// Called with the writer mutex held, so log order is publish order.
    /// On a memory-only engine this is free.
    fn log_mutation(
        &self,
        kind: OpKind,
        text: &str,
        tcs_epoch: u64,
        data_epoch: u64,
    ) -> Result<(), (&'static str, String)> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let rec = WalRecord::Op {
            kind,
            text: text.to_string(),
            tcs_epoch,
            data_epoch,
        };
        let append = d.append(&rec).map_err(|e| ("storage", e.to_string()))?;
        self.metrics.record_wal(append.bytes, append.synced);
        // Feed the record to replication streamers after it is safely in
        // the log; still under the writer mutex, so feed order is log
        // order and the live stream is gap-free.
        self.repl.publish(&rec);
        Ok(())
    }

    /// Post-mutation housekeeping: ticks the checkpoint counter and, when
    /// the threshold is reached, captures the freshly published snapshot
    /// (plus a vocabulary clone, taken *after* the snapshot so it is a
    /// superset of the names the snapshot uses) and hands it to the
    /// background checkpointer. Called with **no** engine lock held.
    fn after_mutation(&self) {
        let Some(d) = &self.durability else {
            return;
        };
        let Some(pool) = &self.checkpointer else {
            return;
        };
        if d.checkpoint_every == 0 || d.is_poisoned() {
            return;
        }
        let ticked = d.since_checkpoint.fetch_add(1, Ordering::SeqCst) + 1;
        if ticked < d.checkpoint_every {
            return;
        }
        if d.checkpointing.swap(true, Ordering::SeqCst) {
            return; // one checkpoint in flight is enough
        }
        let pending = d.since_checkpoint.swap(0, Ordering::SeqCst);
        let snap = self.snapshot();
        let vocab = self.lock_vocab().clone();
        let worker = Arc::clone(d);
        let metrics = Arc::clone(&self.metrics);
        pool.execute(move || {
            let image = CheckpointImage {
                vocab,
                tcs: (*snap.tcs).clone(),
                db: snap.db.to_instance(),
                tcs_epoch: snap.tcs_epoch,
                data_epoch: snap.data_epoch,
            };
            let start = Instant::now();
            match worker.store().checkpoint(&image) {
                Ok(outcome) => {
                    if outcome.written {
                        metrics.record_checkpoint(start.elapsed());
                    }
                }
                Err(_) => {
                    // Checkpointing is an optimization: the WAL still
                    // holds everything. Restore the tick count so the
                    // next mutation retries.
                    worker.since_checkpoint.fetch_add(pending, Ordering::SeqCst);
                }
            }
            worker.checkpointing.store(false, Ordering::SeqCst);
        });
    }

    /// The engine's metrics (shared with the request handlers).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The engine's compute executor.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Whether this engine has a durability layer. Replication requires
    /// one: the WAL *is* the replication log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The live replication feed; streamers subscribe one per replica.
    pub(crate) fn replication_hub(&self) -> &Arc<ReplicationHub> {
        &self.repl
    }

    /// The retained WAL ops strictly past history position `from_sum`
    /// (epoch sum), in log order — replication catch-up. Errors on a
    /// memory-only engine.
    pub(crate) fn wal_records_since(&self, from_sum: u64) -> Result<Vec<WalRecord>, StorageError> {
        let Some(d) = &self.durability else {
            return Err(StorageError::Io(std::io::Error::other(
                "memory-only engine has no WAL",
            )));
        };
        d.store().records_since(from_sum)
    }

    /// The newest on-disk checkpoint as raw image bytes plus its epochs —
    /// the snapshot bootstrap for a replica whose position the log no
    /// longer covers. `None` when no checkpoint exists (or the engine is
    /// memory-only).
    pub(crate) fn newest_checkpoint_raw(
        &self,
    ) -> Result<Option<(u64, u64, Vec<u8>)>, StorageError> {
        let Some(d) = &self.durability else {
            return Ok(None);
        };
        d.store().newest_checkpoint_raw()
    }

    /// The current `(tcs_epoch, data_epoch)` pair.
    pub fn epochs(&self) -> (u64, u64) {
        let snap = self.snapshot();
        (snap.tcs_epoch, snap.data_epoch)
    }

    /// Clones the latest published snapshot out of the swap point. The
    /// lock is held only for the `Arc` clone; everything the caller does
    /// with the snapshot afterwards is lock-free.
    fn snapshot(&self) -> Arc<StateSnapshot> {
        Arc::clone(&self.lock_current())
    }

    /// Publishes `writer`'s state as the new current snapshot. Called
    /// with the writer mutex held, so snapshots appear in write order.
    fn swap(&self, writer: &WriterState) {
        *self.lock_current() = writer.publish();
    }

    /// Handles one protocol request line and returns the response line
    /// (without a trailing newline). Never panics on malformed input —
    /// errors come back as `err <code> <message>` responses.
    pub fn handle(&self, line: &str) -> String {
        let start = Instant::now();
        let line = line.trim();
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let (op, result) = match verb {
            "check" => (Op::Check, self.req_check(rest)),
            "generalize" => (Op::Generalize, self.req_generalize(rest)),
            "specialize" => (Op::Specialize, self.req_specialize(rest)),
            "eval" => (Op::Eval, self.req_eval(rest)),
            "assert" => (Op::Assert, self.req_assert(rest)),
            "retract" => (Op::Retract, self.req_retract(rest)),
            "compl" => (Op::Compl, self.req_compl(rest)),
            "guaranteed" => (Op::Guaranteed, self.req_guaranteed(rest)),
            "analyze" => (Op::Analyze, self.req_analyze(rest)),
            "why" => (Op::Why, self.req_why(rest)),
            "metrics" => {
                let c = self.exec.counters();
                (
                    Op::Other,
                    Ok(format!(
                        "ok {} runtime.tasks={} runtime.steals={} pool.panics={}",
                        self.metrics.render(),
                        c.tasks,
                        c.steals,
                        c.panics
                    )),
                )
            }
            "plans" => {
                // Plan-cache introspection: one `<query>:joins=[...]` item
                // per cached entry, recording the join operator the cost
                // model chose for each join op of the plan.
                let vocab = self.lock_vocab();
                let plans = self.lock_plans();
                let mut items: Vec<String> = plans
                    .entries()
                    .map(|(_, p)| {
                        let joins: Vec<&str> =
                            p.join_strategies().iter().map(|s| s.name()).collect();
                        format!("{}:joins=[{}]", vocab.name(p.query().name), joins.join(","))
                    })
                    .collect();
                items.sort();
                (
                    Op::Other,
                    Ok(format!("ok {} {}", items.len(), items.join(" "))
                        .trim_end()
                        .to_string()),
                )
            }
            "epochs" => {
                let (te, de) = self.epochs();
                (Op::Other, Ok(format!("ok tcs={te} data={de}")))
            }
            "ping" => (Op::Other, Ok("ok pong".to_string())),
            "" => (Op::Other, Err(("proto", "empty request".to_string()))),
            other => (
                Op::Other,
                Err(("proto", format!("unknown command `{other}`"))),
            ),
        };
        let is_error = result.is_err();
        self.metrics.record(op, start.elapsed(), is_error);
        match result {
            Ok(reply) => reply,
            Err((code, msg)) => format!("err {code} {}", msg.replace('\n', " ")),
        }
    }

    /// `check <query>` — is the query complete under the current TCS set?
    fn req_check(&self, src: &str) -> Result<String, (&'static str, String)> {
        let q = {
            let mut vocab = self.lock_vocab();
            parse_query(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?
        };
        let canon = CanonicalQuery::of(&q);
        let snap = self.snapshot();
        let key = (canon, snap.tcs_epoch);
        if let Some(verdict) = self.lock_verdicts().get(&key) {
            self.metrics.verdict_probe(true);
            return Ok(render_verdict(verdict));
        }
        self.metrics.verdict_probe(false);
        let verdict = is_complete(&q, &snap.tcs);
        self.lock_verdicts().insert(key, verdict);
        Ok(render_verdict(verdict))
    }

    /// `why <query>` — the completeness verdict plus a certificate,
    /// validated by the independent `magik-cert` checker before it is
    /// rendered (an engine bug that forges an unsound certificate comes
    /// back as `cert=INVALID`, never as a silently wrong `ok`).
    fn req_why(&self, src: &str) -> Result<String, (&'static str, String)> {
        let q = {
            let mut vocab = self.lock_vocab();
            parse_query(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?
        };
        let canon = CanonicalQuery::of(&q);
        let snap = self.snapshot();
        let key = (canon, snap.tcs_epoch, snap.data_epoch);
        if let Some(reply) = self.lock_why().get(&key) {
            self.metrics.cert_probe(true);
            return Ok(reply);
        }
        self.metrics.cert_probe(false);
        let cert = certify(&q, &snap.tcs);
        let statements = cert_statements(&snap.tcs);
        let valid = check_certificate(&q, &statements, &cert).is_ok();
        let validity = if valid { "valid" } else { "INVALID" };
        self.metrics
            .record_cert(matches!(cert, Certificate::Complete(_)));
        let reply = {
            let vocab = self.lock_vocab();
            match &cert {
                Certificate::Complete(c) => format!(
                    "ok complete cert={validity} derivations={}",
                    c.derivations.len()
                ),
                Certificate::Incomplete {
                    counterexample,
                    repair,
                } => {
                    let suggestions = match repair {
                        Some(r) => r
                            .additions
                            .iter()
                            .map(|a| format!("compl {} ; true", a.display(&vocab)))
                            .collect::<Vec<_>>()
                            .join(" | "),
                        None => String::new(),
                    };
                    format!(
                        "ok incomplete cert={validity} lost={} repair=[{suggestions}]",
                        counterexample.target.display(&vocab)
                    )
                }
            }
        };
        self.lock_why().insert(key, reply.clone());
        Ok(reply)
    }

    /// `generalize <query>` — the minimal complete generalization.
    fn req_generalize(&self, src: &str) -> Result<String, (&'static str, String)> {
        let q = {
            let mut vocab = self.lock_vocab();
            parse_query(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?
        };
        let snap = self.snapshot();
        // Generalization only drops atoms, so rendering needs no names
        // beyond those the parse interned.
        let result = mcg(&q, &snap.tcs);
        let vocab = self.lock_vocab();
        Ok(match result {
            Some(g) => format!("ok {}", print_query(&g, &vocab)),
            None => "ok none".to_string(),
        })
    }

    /// `specialize <k> <query>` — the k-MCSs, `|`-separated.
    ///
    /// The search mints scratch variables, so it runs on a **clone** of
    /// the vocabulary: the shared vocabulary stays untouched (and
    /// unlocked) for the duration, and the clone renders the response.
    fn req_specialize(&self, rest: &str) -> Result<String, (&'static str, String)> {
        let (k_str, src) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| ("proto", "usage: specialize <k> <query>".to_string()))?;
        let k: usize = k_str
            .parse()
            .map_err(|_| ("proto", format!("invalid k `{k_str}`")))?;
        let (q, mut vocab) = {
            let mut vocab = self.lock_vocab();
            let q = parse_query(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?;
            (q, vocab.clone())
        };
        let snap = self.snapshot();
        let outcome = k_mcs_on(&q, &snap.tcs, &mut vocab, KMcsOptions::new(k), &self.exec);
        let rendered: Vec<String> = outcome
            .queries
            .iter()
            .map(|s| print_query(s, &vocab))
            .collect();
        Ok(format!("ok {} {}", rendered.len(), rendered.join(" | "))
            .trim_end()
            .to_string())
    }

    /// `eval <query>` — answers over the stored database.
    ///
    /// Two cache tiers: the answer cache (exact results, invalidated by
    /// data-epoch bumps) and, on answer misses, the plan cache (compiled
    /// plans, valid across data epochs). A query that misses both is
    /// compiled once and its plan kept for the session. Evaluation runs
    /// on the snapshot — concurrent writers proceed undisturbed.
    fn req_eval(&self, src: &str) -> Result<String, (&'static str, String)> {
        let q = {
            let mut vocab = self.lock_vocab();
            parse_query(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?
        };
        let canon = CanonicalQuery::of(&q);
        let snap = self.snapshot();
        let key = (canon.clone(), snap.data_epoch);
        let cached = self.lock_answers().get(&key);
        self.metrics.answer_probe(cached.is_some());
        let answer_list = match cached {
            Some(list) => list,
            None => {
                let plan = self.lock_plans().get(&canon);
                self.metrics.plan_probe(plan.is_some());
                let plan = match plan {
                    Some(plan) => plan,
                    None => {
                        // Failed compiles (unsafe queries) are not cached:
                        // the error must be re-reported per request.
                        let compiled = CompiledQuery::compile(&q, Some(&snap.db))
                            .map_err(|e| ("eval", format!("{e:?}")))?;
                        let plan = Arc::new(compiled);
                        self.lock_plans().insert(canon, Arc::clone(&plan));
                        plan
                    }
                };
                let mut stats = ExecStats::default();
                let set = plan.answers(&snap.db, &mut stats);
                self.metrics
                    .record_exec(stats.probes, stats.scanned, stats.backtracks);
                self.metrics.record_batch_exec(
                    stats.batches,
                    stats.batch_rows,
                    (stats.join_nested, stats.join_hash, stats.join_merge),
                );
                let list: Vec<Answer> = set.into_iter().collect();
                self.lock_answers().insert(key, list.clone());
                list
            }
        };
        let vocab = self.lock_vocab();
        let rendered: Vec<String> = answer_list
            .iter()
            .map(|t| t.display(&vocab).to_string())
            .collect();
        Ok(format!("ok {} {}", rendered.len(), rendered.join("; "))
            .trim_end()
            .to_string())
    }

    /// `assert <atom>` — insert a ground fact; maintains T_C incrementally.
    /// On a durable engine the op is logged (and fsynced per policy)
    /// *before* it is applied: an append failure leaves memory untouched.
    fn req_assert(&self, src: &str) -> Result<String, (&'static str, String)> {
        let fact = self.parse_fact(src)?;
        let mut writer = self.lock_writer();
        if writer.db.contains(&fact) {
            return Ok("ok duplicate".to_string());
        }
        self.log_mutation(OpKind::Assert, src, writer.tcs_epoch, writer.data_epoch + 1)?;
        writer.db.insert(fact.clone());
        writer.data_epoch += 1;
        let pi = writer.ideal.get(&fact.pred).copied();
        if let Some(pi) = pi {
            writer.tc_mat.insert(Fact::new(pi, fact.args));
        }
        self.swap(&writer);
        drop(writer);
        self.after_mutation();
        Ok("ok inserted".to_string())
    }

    /// `retract <atom>` — remove a ground fact; maintains T_C by DRed
    /// (over-delete, then re-derive) and records the pass sizes in the
    /// `dred.*` metrics.
    fn req_retract(&self, src: &str) -> Result<String, (&'static str, String)> {
        let fact = self.parse_fact(src)?;
        let mut writer = self.lock_writer();
        if !writer.db.contains(&fact) {
            return Ok("ok absent".to_string());
        }
        self.log_mutation(
            OpKind::Retract,
            src,
            writer.tcs_epoch,
            writer.data_epoch + 1,
        )?;
        writer.db.remove(&fact);
        writer.data_epoch += 1;
        let pi = writer.ideal.get(&fact.pred).copied();
        if let Some(pi) = pi {
            let stats = writer
                .tc_mat
                .retract_all(std::iter::once(Fact::new(pi, fact.args)));
            self.metrics
                .record_dred(stats.overdeleted as u64, stats.rederived as u64);
        }
        self.swap(&writer);
        drop(writer);
        self.after_mutation();
        Ok("ok retracted".to_string())
    }

    /// `compl <tcs>` — add a TC statement; bumps the TCS epoch and
    /// rebuilds the T_C encoding.
    fn req_compl(&self, src: &str) -> Result<String, (&'static str, String)> {
        let mut vocab = self.lock_vocab();
        let stmt = parse_tcs(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?;
        let mut writer = self.lock_writer();
        self.log_mutation(OpKind::Compl, src, writer.tcs_epoch + 1, writer.data_epoch)?;
        Arc::make_mut(&mut writer.tcs).push(stmt);
        writer.tcs_epoch += 1;
        writer.rebuild_tc(&mut vocab, &self.exec);
        self.swap(&writer);
        // Stale verdict keys are unreachable after the epoch bump; drop
        // them eagerly so they stop occupying cache capacity. Plans are
        // dropped too: `compl` is the one request that reshapes the
        // session's predicate landscape, and a cold plan cache costs only
        // one recompile per canonical query.
        self.lock_verdicts().clear();
        self.lock_plans().clear();
        let epoch = writer.tcs_epoch;
        drop(writer);
        drop(vocab);
        self.after_mutation();
        Ok(format!("ok epoch={epoch}"))
    }

    /// `guaranteed <atom>` — is this fact certain to be available, i.e.
    /// derived by the materialized T_C fixpoint?
    fn req_guaranteed(&self, src: &str) -> Result<String, (&'static str, String)> {
        let fact = self.parse_fact(src)?;
        let snap = self.snapshot();
        let guaranteed = match snap.avail.get(&fact.pred) {
            Some(&pa) => snap.tc_model.contains(&Fact::new(pa, fact.args)),
            None => false,
        };
        Ok(format!("ok {guaranteed}"))
    }

    /// `analyze [state] [<query>]` — static analysis of the session.
    ///
    /// * `analyze` — the statement-set diagnostics (M001–M005) over the
    ///   session TCS set.
    /// * `analyze <query>` — the per-query diagnostics (M006–M010).
    /// * `analyze state` — the live-session diagnostics (M018–M024) over
    ///   the TCS set *and* the stored instance; cached per
    ///   `(tcs_epoch, data_epoch)` (see [`AnalysisCache`]), so repeated
    ///   requests at an unchanged epoch are cache hits.
    /// * `analyze state <query>` — the trivially-incomplete check (M022)
    ///   for a concrete query against the live statement set.
    ///
    /// Diagnostics come back `|`-separated on one line; the session holds
    /// no integrity constraints, so the constraint-dependent checks are
    /// vacuous.
    fn req_analyze(&self, rest: &str) -> Result<String, (&'static str, String)> {
        if rest == "state" {
            return self.analyze_state_cached();
        }
        if let Some(qsrc) = rest.strip_prefix("state ") {
            let q = {
                let mut vocab = self.lock_vocab();
                parse_query(qsrc, &mut vocab).map_err(|e| ("parse", e.to_string()))?
            };
            let snap = self.snapshot();
            let vocab = self.lock_vocab();
            return Ok(render_diags(&analyze_check(0, &q, &snap.tcs, &vocab)));
        }
        let constraints = ConstraintSet::default();
        let mut vocab = self.lock_vocab();
        let query = if rest.is_empty() {
            None
        } else {
            Some(parse_query(rest, &mut vocab).map_err(|e| ("parse", e.to_string()))?)
        };
        let snap = self.snapshot();
        let diags = match &query {
            Some(q) => analyze_query(0, q, &snap.tcs, &constraints, &vocab),
            None => analyze_statements(&snap.tcs, &constraints, &vocab),
        };
        Ok(render_diags(&diags))
    }

    /// The cached `analyze state` path: probe the analysis cache at the
    /// snapshot's epoch pair, computing (and caching) the live-session
    /// diagnostics on a miss. Probes land in the `analysis_cache.*`
    /// metrics.
    fn analyze_state_cached(&self) -> Result<String, (&'static str, String)> {
        let snap = self.snapshot();
        let key = (snap.tcs_epoch, snap.data_epoch);
        if let Some(reply) = self.lock_analysis().get(&key) {
            self.metrics.analysis_probe(true);
            return Ok(reply);
        }
        self.metrics.analysis_probe(false);
        let facts: Vec<Fact> = snap.db.iter_facts().collect();
        let vocab = self.lock_vocab();
        let diags = analyze_state(&snap.tcs, &ConstraintSet::default(), &facts, &vocab);
        drop(vocab);
        let reply = render_diags(&diags);
        self.lock_analysis().insert(key, reply.clone());
        Ok(reply)
    }

    fn parse_fact(&self, src: &str) -> Result<Fact, (&'static str, String)> {
        let mut vocab = self.lock_vocab();
        let src = src.strip_suffix('.').unwrap_or(src);
        let atom = parse_atom(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?;
        atom.to_fact()
            .ok_or_else(|| ("proto", "fact must be ground (no variables)".to_string()))
    }
}

fn render_diags(diags: &[magik_analyze::Diagnostic]) -> String {
    let rendered: Vec<String> = diags
        .iter()
        .map(|d| format!("{}[{}] {}", d.severity, d.code, d.message))
        .collect();
    format!("ok {} {}", rendered.len(), rendered.join(" | "))
        .trim_end()
        .to_string()
}

fn render_verdict(complete: bool) -> String {
    if complete {
        "ok complete".to_string()
    } else {
        "ok incomplete".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_engine() -> Engine {
        let e = Engine::new();
        assert_eq!(
            e.handle("compl school(S, primary, D) ; true."),
            "ok epoch=1"
        );
        assert_eq!(
            e.handle("compl pupil(N, C, S) ; school(S, T, merano)."),
            "ok epoch=2"
        );
        e
    }

    #[test]
    fn check_reproduces_the_running_example() {
        let e = paper_engine();
        assert_eq!(
            e.handle("check q(N) :- pupil(N, C, S), school(S, primary, merano)."),
            "ok complete"
        );
        assert_eq!(
            e.handle("check q(N) :- pupil(N, C, S), school(S, primary, bolzano)."),
            "ok incomplete"
        );
    }

    #[test]
    fn verdict_cache_hits_on_alpha_variants() {
        let e = paper_engine();
        let q1 = "check q(N) :- pupil(N, C, S), school(S, primary, merano).";
        let q2 = "check q(A) :- school(Z, primary, merano), pupil(A, B, Z).";
        assert_eq!(e.handle(q1), "ok complete");
        assert_eq!(e.handle(q2), "ok complete");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("verdict_cache.hits=1 verdict_cache.misses=1"),
            "{metrics}"
        );
    }

    #[test]
    fn why_emits_validated_certificates() {
        let e = paper_engine();
        assert_eq!(
            e.handle("why q(N) :- pupil(N, C, S), school(S, primary, merano)."),
            "ok complete cert=valid derivations=2"
        );
        let reply =
            e.handle("why q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).");
        assert!(
            reply.starts_with("ok incomplete cert=valid lost=(N')"),
            "{reply}"
        );
        assert!(
            reply.contains("repair=[compl learns(N, L) ; true]"),
            "{reply}"
        );
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("cert.complete=1 cert.incomplete=1"),
            "{metrics}"
        );
    }

    #[test]
    fn why_caches_per_epoch_pair() {
        let e = paper_engine();
        let q = "why q(N) :- pupil(N, C, S), school(S, primary, merano).";
        let alpha = "why q(A) :- school(Z, primary, merano), pupil(A, B, Z).";
        assert_eq!(e.handle(q), "ok complete cert=valid derivations=2");
        // Alpha-variant at the same epochs: canonicalization makes it hit.
        assert_eq!(e.handle(alpha), "ok complete cert=valid derivations=2");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("cert.cache.hits=1 cert.cache.misses=1"),
            "{metrics}"
        );
        // A data-epoch bump invalidates the cached reply (conservative:
        // the protocol pins `why` replies to the epoch pair).
        e.handle("assert school(hofer, primary, merano).");
        assert_eq!(e.handle(q), "ok complete cert=valid derivations=2");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("cert.cache.hits=1 cert.cache.misses=2"),
            "{metrics}"
        );
        // A TCS change flips the verdict itself — no stale reply.
        let e2 = Engine::new();
        assert!(e2
            .handle("why q(N) :- pupil(N, C, S).")
            .starts_with("ok incomplete"));
        e2.handle("compl pupil(N, C, S) ; true.");
        assert!(e2
            .handle("why q(N) :- pupil(N, C, S).")
            .starts_with("ok complete"));
    }

    #[test]
    fn compl_invalidates_verdicts() {
        let e = Engine::new();
        let q = "check q(N) :- pupil(N, C, S).";
        assert_eq!(e.handle(q), "ok incomplete");
        assert_eq!(e.handle("compl pupil(N, C, S) ; true."), "ok epoch=1");
        assert_eq!(e.handle(q), "ok complete");
    }

    #[test]
    fn assert_and_retract_maintain_guarantees() {
        let e = Engine::new();
        e.handle("compl pupil(N, C, S) ; school(S, T, merano).");
        assert_eq!(e.handle("guaranteed pupil(anna, c1, hofer)."), "ok false");
        assert_eq!(
            e.handle("assert school(hofer, primary, merano)."),
            "ok inserted"
        );
        // The TCS guarantees pupils of Merano schools: with the school
        // stored, pupil facts at that school become guaranteed only via
        // the condition's *ideal* copy — T_C derives from R^i facts.
        assert_eq!(
            e.handle("guaranteed school(hofer, primary, merano)."),
            "ok false"
        );
        assert_eq!(e.handle("assert pupil(anna, c1, hofer)."), "ok inserted");
        assert_eq!(e.handle("guaranteed pupil(anna, c1, hofer)."), "ok true");
        assert_eq!(
            e.handle("retract school(hofer, primary, merano)."),
            "ok retracted"
        );
        assert_eq!(e.handle("guaranteed pupil(anna, c1, hofer)."), "ok false");
    }

    #[test]
    fn eval_answers_and_caches_by_data_epoch() {
        let e = Engine::new();
        e.handle("assert edge(a, b).");
        e.handle("assert edge(b, c).");
        let q = "eval q(X, Y) :- edge(X, Y).";
        assert_eq!(e.handle(q), "ok 2 (a, b); (b, c)");
        assert_eq!(e.handle(q), "ok 2 (a, b); (b, c)");
        e.handle("assert edge(c, d).");
        assert_eq!(e.handle(q), "ok 3 (a, b); (b, c); (c, d)");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("answer_cache.hits=1 answer_cache.misses=2"),
            "{metrics}"
        );
    }

    #[test]
    fn eval_reuses_compiled_plans_across_data_epochs() {
        let e = Engine::new();
        e.handle("assert edge(a, b).");
        let q = "eval q(X, Y) :- edge(X, Y).";
        assert_eq!(e.handle(q), "ok 1 (a, b)");
        // The data-epoch bump invalidates the answers but not the plan.
        e.handle("assert edge(b, c).");
        assert_eq!(e.handle(q), "ok 2 (a, b); (b, c)");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("plan_cache.hits=1 plan_cache.misses=1"),
            "{metrics}"
        );
        assert!(metrics.contains("exec.probes="), "{metrics}");
        // `compl` clears the plan cache: the next evaluation that misses
        // the answer cache recompiles.
        e.handle("compl edge(X, Y) ; true.");
        e.handle("assert edge(c, d).");
        assert_eq!(e.handle(q), "ok 3 (a, b); (b, c); (c, d)");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("plan_cache.hits=1 plan_cache.misses=2"),
            "{metrics}"
        );
    }

    #[test]
    fn plans_command_reports_join_operator_choices() {
        let e = Engine::new();
        assert_eq!(e.handle("plans"), "ok 0");
        e.handle("assert edge(a, b).");
        e.handle("assert edge(b, c).");
        e.handle("eval q(X, Z) :- edge(X, Y), edge(Y, Z).");
        let plans = e.handle("plans");
        assert!(plans.starts_with("ok 1 q:joins=["), "{plans}");
        // The batch executor ran: batch and join-strategy counters moved.
        let metrics = e.handle("metrics");
        assert!(metrics.contains("exec.batch.count="), "{metrics}");
        assert!(!metrics.contains("exec.batch.count=0"), "{metrics}");
        assert!(metrics.contains("exec.join.nested="), "{metrics}");
    }

    #[test]
    fn eval_unsafe_query_errors_and_is_not_plan_cached() {
        let e = Engine::new();
        e.handle("assert edge(a, b).");
        let q = "eval q(X, Y) :- edge(X, Z).";
        assert!(e.handle(q).starts_with("err eval "), "{}", e.handle(q));
        let metrics = e.handle("metrics");
        assert!(metrics.contains("plan_cache.hits=0"), "{metrics}");
    }

    #[test]
    fn malformed_requests_get_error_replies() {
        let e = Engine::new();
        assert!(e.handle("frobnicate x").starts_with("err proto "));
        assert!(e.handle("check q(X :-").starts_with("err parse "));
        assert!(e.handle("assert p(X).").starts_with("err proto "));
        assert!(e
            .handle("specialize q(X) :- r(X).")
            .starts_with("err proto "));
        assert!(e.handle("").starts_with("err proto "));
    }

    #[test]
    fn analyze_reports_statement_and_query_diagnostics() {
        let e = Engine::new();
        e.handle("compl pupil(N, C, S) ; class(C, S, L, T).");
        // Statement-set analysis: the class condition is unguaranteeable.
        let s = e.handle("analyze");
        assert!(s.starts_with("ok 1 warning[M004]"), "{s}");
        // Query analysis: pupil is transitively dead.
        let q = e.handle("analyze q(N) :- pupil(N, C, S).");
        assert!(q.contains("[M008]"), "{q}");
        // An unsafe query is flagged, not evaluated.
        let unsafe_q = e.handle("analyze q(X, Y) :- pupil(X, C, S).");
        assert!(unsafe_q.contains("error[M006]"), "{unsafe_q}");
        assert!(e.handle("analyze q(X :-").starts_with("err parse "));
    }

    #[test]
    fn analyze_state_reports_live_session_diagnostics() {
        let e = Engine::new();
        // Facts but no statements: M023 (and only M023 — the empty set
        // mutes the per-relation blind spots).
        e.handle("assert pupil(john, c1, goethe).");
        let s = e.handle("analyze state");
        assert!(s.starts_with("ok 1 info[M023]"), "{s}");
        // A statement for school leaves pupil a blind spot (M020) and,
        // matching no stored fact, is itself vacuous (M021).
        e.handle("compl school(S, primary, D) ; true.");
        let s = e.handle("analyze state");
        assert!(s.contains("warning[M020]"), "{s}");
        assert!(s.contains("info[M021]"), "{s}");
        assert!(!s.contains("M023"), "{s}");
        // The trivially-incomplete check for a concrete query: class
        // heads no statement, so the check can never succeed.
        e.handle("compl pupil(N, C, S) ; class(C, S, L, T).");
        let q = e.handle("analyze state q(N) :- pupil(N, C, S).");
        assert!(q.contains("warning[M022]"), "{q}");
        assert!(e.handle("analyze state q(X :-").starts_with("err parse "));
    }

    #[test]
    fn analyze_state_caches_by_epoch_pair() {
        let e = Engine::new();
        e.handle("compl school(S, primary, D) ; true.");
        e.handle("assert pupil(john, c1, goethe).");
        let first = e.handle("analyze state");
        // Unchanged epochs: the second request must hit the cache and
        // return the identical reply.
        assert_eq!(e.handle("analyze state"), first);
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("analysis_cache.hits=1 analysis_cache.misses=1"),
            "{metrics}"
        );
        // A data-epoch bump moves the key: the next request recomputes.
        e.handle("assert school(goethe, primary, merano).");
        let after = e.handle("analyze state");
        assert_ne!(after, first, "{after}");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("analysis_cache.hits=1 analysis_cache.misses=2"),
            "{metrics}"
        );
        // No-op mutations publish nothing, so the cache stays warm.
        e.handle("assert school(goethe, primary, merano).");
        assert_eq!(e.handle("analyze state"), after);
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("analysis_cache.hits=2 analysis_cache.misses=2"),
            "{metrics}"
        );
    }

    #[test]
    fn generalize_and_specialize_round_trip() {
        let e = paper_engine();
        let g = e.handle("generalize q(N) :- pupil(N, C, S), school(S, primary, bolzano).");
        assert!(g.starts_with("ok "), "{g}");
        let s = e.handle("specialize 0 q(N) :- pupil(N, C, S), school(S, primary, bolzano).");
        assert!(s.starts_with("ok "), "{s}");
    }

    #[test]
    fn epochs_are_visible_and_monotone() {
        let e = Engine::new();
        assert_eq!(e.epochs(), (0, 0));
        e.handle("assert edge(a, b).");
        assert_eq!(e.epochs(), (0, 1));
        e.handle("compl edge(X, Y) ; true.");
        assert_eq!(e.epochs(), (1, 1));
        // Duplicate inserts and absent retracts publish nothing.
        e.handle("assert edge(a, b).");
        e.handle("retract edge(z, z).");
        assert_eq!(e.epochs(), (1, 1));
    }

    #[test]
    fn noop_mutations_keep_caches_warm() {
        let e = Engine::new();
        e.handle("compl edge(X, Y) ; true.");
        e.handle("assert edge(a, b).");
        let ev = "eval q(X, Y) :- edge(X, Y).";
        let ck = "check q(X, Y) :- edge(X, Y).";
        assert_eq!(e.handle(ev), "ok 1 (a, b)");
        assert_eq!(e.handle(ck), "ok complete");
        // A duplicate assert and an absent retract change nothing, so the
        // cached answers and verdicts must keep hitting.
        assert_eq!(e.handle("assert edge(a, b)."), "ok duplicate");
        assert_eq!(e.handle("retract edge(z, z)."), "ok absent");
        assert_eq!(e.handle(ev), "ok 1 (a, b)");
        assert_eq!(e.handle(ck), "ok complete");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("answer_cache.hits=1 answer_cache.misses=1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("verdict_cache.hits=1 verdict_cache.misses=1"),
            "{metrics}"
        );
    }

    #[test]
    fn retract_reports_dred_metrics() {
        let e = Engine::new();
        // The TCS makes edge part of the T_C encoding, so asserts feed
        // the materialized model and retracts run DRed over it.
        e.handle("compl edge(X, Y) ; true.");
        e.handle("assert edge(a, b).");
        assert_eq!(e.handle("retract edge(a, b)."), "ok retracted");
        let metrics = e.handle("metrics");
        let field = |name: &str| {
            metrics
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix(name))
                .and_then(|v| v.strip_prefix('='))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} missing in {metrics}"))
        };
        // The ideal copy of edge(a,b) and everything it derived was
        // over-deleted; nothing else derives it, so nothing comes back.
        assert!(field("dred.overdeleted") >= 1, "{metrics}");
        assert_eq!(field("dred.rederived"), 0, "{metrics}");
    }

    #[test]
    fn poisoned_cache_lock_is_recovered_not_fatal() {
        let e = Arc::new(paper_engine());
        let q = "check q(N) :- pupil(N, C, S), school(S, primary, merano).";
        assert_eq!(e.handle(q), "ok complete");
        // Panic while holding the verdict-cache lock, as a buggy handler
        // on another worker would.
        let holder = Arc::clone(&e);
        let _ = std::thread::spawn(move || {
            let _guard = holder.verdicts.lock().unwrap();
            panic!("die holding the verdict cache lock");
        })
        .join();
        // Pre-fix this panicked on `.expect("cache lock")` — every later
        // request hitting the cache died, a permanent denial of service
        // from one handler panic. Post-fix the lock is reclaimed, the
        // cache cleared, and the request served.
        assert_eq!(e.handle(q), "ok complete");
        let metrics = e.handle("metrics");
        assert!(metrics.contains("lock.poisoned=1"), "{metrics}");
        // The recovered cache was cleared: the reply above was a miss,
        // not a stale (possibly half-inserted) entry.
        assert!(metrics.contains("verdict_cache.misses=2"), "{metrics}");
        // Recovery is per-incident, not permanent degradation: the next
        // probe hits again.
        assert_eq!(e.handle(q), "ok complete");
        let metrics = e.handle("metrics");
        assert!(metrics.contains("verdict_cache.hits=1"), "{metrics}");
        assert!(metrics.contains("lock.poisoned=1"), "{metrics}");
    }

    #[test]
    fn metrics_report_runtime_counters() {
        let e = Engine::new();
        let metrics = e.handle("metrics");
        assert!(metrics.contains("runtime.tasks=0"), "{metrics}");
        assert!(metrics.contains("runtime.steals=0"), "{metrics}");
        assert!(metrics.contains("pool.panics=0"), "{metrics}");
    }

    #[test]
    fn pooled_engine_agrees_with_sequential() {
        let pooled = Engine::with_session_on(
            Vocabulary::new(),
            TcSet::new(Vec::new()),
            Instance::new(),
            Executor::with_threads(4),
        );
        let seq = Engine::new();
        for e in [&pooled, &seq] {
            e.handle("compl school(S, primary, D) ; true.");
            e.handle("compl pupil(N, C, S) ; school(S, T, merano).");
            e.handle("assert school(hofer, primary, merano).");
            e.handle("assert pupil(anna, c1, hofer).");
        }
        for req in [
            "check q(N) :- pupil(N, C, S), school(S, primary, merano).",
            "guaranteed pupil(anna, c1, hofer).",
            "eval q(N) :- pupil(N, C, S).",
        ] {
            assert_eq!(pooled.handle(req), seq.handle(req), "{req}");
        }
        // Parallel `specialize` pre-mints pool variables, so scratch-var
        // *names* differ; the result sets agree up to α-renaming (the
        // completeness tests assert deep equivalence) and so do counts.
        let req = "specialize 1 q(N) :- pupil(N, C, S), school(S, primary, bolzano).";
        let (p, s) = (pooled.handle(req), seq.handle(req));
        assert_eq!(
            p.split_whitespace().nth(1),
            s.split_whitespace().nth(1),
            "{p} vs {s}"
        );
        let metrics = pooled.handle("metrics");
        assert!(!metrics.contains("runtime.tasks=0"), "{metrics}");
    }
}
