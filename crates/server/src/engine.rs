//! The session engine: shared reasoning state plus caching and metrics.
//!
//! One [`Engine`] is shared by every connection (and every worker thread)
//! of a server. Internally it is split into three locks, always acquired
//! in this order:
//!
//! 1. `vocab: Mutex<Vocabulary>` — parsing interns names, so every request
//!    briefly serializes on the vocabulary. Parsing is microseconds; the
//!    expensive reasoning below happens *after* this lock is released or
//!    under the shared state lock.
//! 2. `state: RwLock<State>` — the database, the TCS set, and the
//!    incrementally maintained T_C materialization. Read-only requests
//!    (`check`, `eval`, `generalize`, `guaranteed`) take the read lock and
//!    run concurrently; mutations (`assert`, `retract`, `compl`) take the
//!    write lock.
//! 3. per-cache `Mutex`es — held only for the probe/insert itself.
//!
//! # Epochs and caching
//!
//! A completeness verdict depends on the query and the TCS set **only**
//! (Theorem 3 reasons over the canonical database of the frozen query,
//! never over stored facts), so verdicts are cached under
//! `(canonical query, tcs_epoch)`. Evaluation answers depend on the query
//! and the stored facts, so they are cached under
//! `(canonical query, data_epoch)`. Each mutation bumps exactly the epochs
//! whose derived results it can change — `compl` bumps `tcs_epoch`,
//! `assert`/`retract` bump `data_epoch` — making stale cache keys
//! unreachable. Canonicalization ([`CanonicalQuery`]) makes the cache
//! robust against renamed variables, reordered atoms, and redundant atoms.
//!
//! # Incremental T_C
//!
//! The engine keeps the Section 5 Datalog encoding of the T_C operator
//! (`R^a ← R^i, G^i`) materialized over the stored facts via
//! [`magik_datalog::Materialized`]: `assert` propagates just the new
//! fact's consequences (delta semi-naive), `retract` falls back to
//! recomputation, and `compl` rebuilds the encoding. The `guaranteed`
//! request reads this model to answer "is this fact certain to be in the
//! available database?" in constant time.

use std::sync::{Mutex, RwLock};
use std::time::Instant;

use magik_analyze::{analyze_query, analyze_statements};
use magik_completeness::{
    is_complete, k_mcs, mcg, tc_encoding, CanonicalQuery, ConstraintSet, KMcsOptions, TcSet,
};
use magik_datalog::Materialized;
use magik_exec::{CompiledQuery, ExecStats, PlanCache};
use magik_parser::{parse_atom, parse_query, parse_tcs, print_query};
use magik_relalg::{Answer, DisplayWith, Fact, Instance, Pred, Vocabulary};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::cache::LruCache;
use crate::metrics::{Metrics, Op};

/// Default capacity of the verdict cache.
const VERDICT_CACHE_CAP: usize = 1024;
/// Default capacity of the answer cache.
const ANSWER_CACHE_CAP: usize = 256;
/// Default capacity of the plan cache.
const PLAN_CACHE_CAP: usize = 256;

/// The mutable reasoning state, guarded by the engine's `RwLock`.
#[derive(Debug)]
struct State {
    /// The stored (available) database.
    db: Instance,
    /// The table-completeness statements.
    tcs: TcSet,
    /// Bumped whenever `tcs` changes; part of every verdict-cache key.
    tcs_epoch: u64,
    /// Bumped whenever `db` changes; part of every answer-cache key.
    data_epoch: u64,
    /// The T_C encoding materialized over `db` (renamed to `R^i`).
    tc_mat: Materialized,
    /// Original predicate → its `R^i` variant in the encoding.
    ideal: BTreeMap<Pred, Pred>,
    /// Original predicate → its `R^a` variant in the encoding.
    avail: BTreeMap<Pred, Pred>,
}

impl State {
    /// Rebuilds the T_C materialization after the TCS set changed.
    fn rebuild_tc(&mut self, vocab: &mut Vocabulary) {
        let (program, ideal, avail) = tc_encoding(&self.tcs, vocab);
        let mut edb = Instance::new();
        for fact in self.db.iter_facts() {
            if let Some(&pi) = ideal.get(&fact.pred) {
                edb.insert(Fact::new(pi, fact.args));
            }
        }
        self.tc_mat =
            Materialized::new(program, edb).expect("the T_C encoding is a positive program");
        self.ideal = ideal;
        self.avail = avail;
    }
}

/// A shared, thread-safe completeness-reasoning session.
///
/// See the module docs for the locking and caching design. All request
/// entry points take `&self`; an `Arc<Engine>` can be handed to any number
/// of worker threads.
#[derive(Debug)]
pub struct Engine {
    vocab: Mutex<Vocabulary>,
    state: RwLock<State>,
    verdicts: Mutex<LruCache<(CanonicalQuery, u64), bool>>,
    answer_cache: Mutex<LruCache<(CanonicalQuery, u64), Vec<Answer>>>,
    /// Compiled plans keyed by canonical query form alone: canonical
    /// equality implies query equivalence, so a cached plan stays correct
    /// across data-epoch bumps (statistics drift affects only speed). The
    /// cache is cleared on TCS/vocabulary-shaping events (`compl`).
    plans: Mutex<PlanCache<CanonicalQuery>>,
    metrics: Metrics,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Creates an engine with an empty database and no TCS.
    pub fn new() -> Engine {
        Engine::with_session(Vocabulary::new(), TcSet::new(Vec::new()), Instance::new())
    }

    /// Creates an engine over pre-loaded session state (e.g. a document
    /// parsed by the CLI before serving).
    pub fn with_session(mut vocab: Vocabulary, tcs: TcSet, db: Instance) -> Engine {
        let mut state = State {
            db,
            tcs,
            tcs_epoch: 0,
            data_epoch: 0,
            tc_mat: Materialized::new(
                magik_datalog::Program::new(Vec::new()).expect("empty program"),
                Instance::new(),
            )
            .expect("empty program is positive"),
            ideal: BTreeMap::new(),
            avail: BTreeMap::new(),
        };
        state.rebuild_tc(&mut vocab);
        Engine {
            vocab: Mutex::new(vocab),
            state: RwLock::new(state),
            verdicts: Mutex::new(LruCache::new(VERDICT_CACHE_CAP)),
            answer_cache: Mutex::new(LruCache::new(ANSWER_CACHE_CAP)),
            plans: Mutex::new(PlanCache::new(PLAN_CACHE_CAP)),
            metrics: Metrics::new(),
        }
    }

    /// The engine's metrics (shared with the request handlers).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The current `(tcs_epoch, data_epoch)` pair.
    pub fn epochs(&self) -> (u64, u64) {
        let state = self.state.read().expect("state lock");
        (state.tcs_epoch, state.data_epoch)
    }

    /// Handles one protocol request line and returns the response line
    /// (without a trailing newline). Never panics on malformed input —
    /// errors come back as `err <code> <message>` responses.
    pub fn handle(&self, line: &str) -> String {
        let start = Instant::now();
        let line = line.trim();
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let (op, result) = match verb {
            "check" => (Op::Check, self.req_check(rest)),
            "generalize" => (Op::Generalize, self.req_generalize(rest)),
            "specialize" => (Op::Specialize, self.req_specialize(rest)),
            "eval" => (Op::Eval, self.req_eval(rest)),
            "assert" => (Op::Assert, self.req_assert(rest)),
            "retract" => (Op::Retract, self.req_retract(rest)),
            "compl" => (Op::Compl, self.req_compl(rest)),
            "guaranteed" => (Op::Guaranteed, self.req_guaranteed(rest)),
            "analyze" => (Op::Analyze, self.req_analyze(rest)),
            "metrics" => (Op::Other, Ok(format!("ok {}", self.metrics.render()))),
            "ping" => (Op::Other, Ok("ok pong".to_string())),
            "" => (Op::Other, Err(("proto", "empty request".to_string()))),
            other => (
                Op::Other,
                Err(("proto", format!("unknown command `{other}`"))),
            ),
        };
        let is_error = result.is_err();
        self.metrics.record(op, start.elapsed(), is_error);
        match result {
            Ok(reply) => reply,
            Err((code, msg)) => format!("err {code} {}", msg.replace('\n', " ")),
        }
    }

    /// `check <query>` — is the query complete under the current TCS set?
    fn req_check(&self, src: &str) -> Result<String, (&'static str, String)> {
        let q = {
            let mut vocab = self.vocab.lock().expect("vocab lock");
            parse_query(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?
        };
        let canon = CanonicalQuery::of(&q);
        let state = self.state.read().expect("state lock");
        let key = (canon, state.tcs_epoch);
        if let Some(verdict) = self.verdicts.lock().expect("cache lock").get(&key) {
            self.metrics.verdict_probe(true);
            return Ok(render_verdict(verdict));
        }
        self.metrics.verdict_probe(false);
        let verdict = is_complete(&q, &state.tcs);
        self.verdicts
            .lock()
            .expect("cache lock")
            .insert(key, verdict);
        Ok(render_verdict(verdict))
    }

    /// `generalize <query>` — the minimal complete generalization.
    fn req_generalize(&self, src: &str) -> Result<String, (&'static str, String)> {
        let mut vocab = self.vocab.lock().expect("vocab lock");
        let q = parse_query(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?;
        let state = self.state.read().expect("state lock");
        Ok(match mcg(&q, &state.tcs) {
            Some(g) => format!("ok {}", print_query(&g, &vocab)),
            None => "ok none".to_string(),
        })
    }

    /// `specialize <k> <query>` — the k-MCSs, `|`-separated.
    fn req_specialize(&self, rest: &str) -> Result<String, (&'static str, String)> {
        let (k_str, src) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| ("proto", "usage: specialize <k> <query>".to_string()))?;
        let k: usize = k_str
            .parse()
            .map_err(|_| ("proto", format!("invalid k `{k_str}`")))?;
        let mut vocab = self.vocab.lock().expect("vocab lock");
        let q = parse_query(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?;
        let state = self.state.read().expect("state lock");
        let outcome = k_mcs(&q, &state.tcs, &mut vocab, KMcsOptions::new(k));
        let rendered: Vec<String> = outcome
            .queries
            .iter()
            .map(|s| print_query(s, &vocab))
            .collect();
        Ok(format!("ok {} {}", rendered.len(), rendered.join(" | "))
            .trim_end()
            .to_string())
    }

    /// `eval <query>` — answers over the stored database.
    ///
    /// Two cache tiers: the answer cache (exact results, invalidated by
    /// data-epoch bumps) and, on answer misses, the plan cache (compiled
    /// plans, valid across data epochs). A query that misses both is
    /// compiled once and its plan kept for the session.
    fn req_eval(&self, src: &str) -> Result<String, (&'static str, String)> {
        let q = {
            let mut vocab = self.vocab.lock().expect("vocab lock");
            parse_query(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?
        };
        let canon = CanonicalQuery::of(&q);
        let state = self.state.read().expect("state lock");
        let key = (canon.clone(), state.data_epoch);
        let cached = self.answer_cache.lock().expect("cache lock").get(&key);
        self.metrics.answer_probe(cached.is_some());
        let answer_list = match cached {
            Some(list) => list,
            None => {
                let plan = self.plans.lock().expect("cache lock").get(&canon);
                self.metrics.plan_probe(plan.is_some());
                let plan = match plan {
                    Some(plan) => plan,
                    None => {
                        // Failed compiles (unsafe queries) are not cached:
                        // the error must be re-reported per request.
                        let compiled = CompiledQuery::compile(&q, Some(&state.db))
                            .map_err(|e| ("eval", format!("{e:?}")))?;
                        let plan = Arc::new(compiled);
                        self.plans
                            .lock()
                            .expect("cache lock")
                            .insert(canon, Arc::clone(&plan));
                        plan
                    }
                };
                let mut stats = ExecStats::default();
                let set = plan.answers(&state.db, &mut stats);
                self.metrics
                    .record_exec(stats.probes, stats.scanned, stats.backtracks);
                let list: Vec<Answer> = set.into_iter().collect();
                self.answer_cache
                    .lock()
                    .expect("cache lock")
                    .insert(key, list.clone());
                list
            }
        };
        drop(state);
        let vocab = self.vocab.lock().expect("vocab lock");
        let rendered: Vec<String> = answer_list
            .iter()
            .map(|t| t.display(&vocab).to_string())
            .collect();
        Ok(format!("ok {} {}", rendered.len(), rendered.join("; "))
            .trim_end()
            .to_string())
    }

    /// `assert <atom>` — insert a ground fact; maintains T_C incrementally.
    fn req_assert(&self, src: &str) -> Result<String, (&'static str, String)> {
        let fact = self.parse_fact(src)?;
        let mut state = self.state.write().expect("state lock");
        if !state.db.insert(fact.clone()) {
            return Ok("ok duplicate".to_string());
        }
        state.data_epoch += 1;
        let pi = state.ideal.get(&fact.pred).copied();
        if let Some(pi) = pi {
            state.tc_mat.insert(Fact::new(pi, fact.args));
        }
        Ok("ok inserted".to_string())
    }

    /// `retract <atom>` — remove a ground fact; recomputes T_C.
    fn req_retract(&self, src: &str) -> Result<String, (&'static str, String)> {
        let fact = self.parse_fact(src)?;
        let mut state = self.state.write().expect("state lock");
        if !state.db.remove(&fact) {
            return Ok("ok absent".to_string());
        }
        state.data_epoch += 1;
        let pi = state.ideal.get(&fact.pred).copied();
        if let Some(pi) = pi {
            state.tc_mat.retract(&Fact::new(pi, fact.args));
        }
        Ok("ok retracted".to_string())
    }

    /// `compl <tcs>` — add a TC statement; bumps the TCS epoch and
    /// rebuilds the T_C encoding.
    fn req_compl(&self, src: &str) -> Result<String, (&'static str, String)> {
        let mut vocab = self.vocab.lock().expect("vocab lock");
        let stmt = parse_tcs(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?;
        let mut state = self.state.write().expect("state lock");
        state.tcs.push(stmt);
        state.tcs_epoch += 1;
        state.rebuild_tc(&mut vocab);
        // Stale verdict keys are unreachable after the epoch bump; drop
        // them eagerly so they stop occupying cache capacity. Plans are
        // dropped too: `compl` is the one request that reshapes the
        // session's predicate landscape, and a cold plan cache costs only
        // one recompile per canonical query.
        self.verdicts.lock().expect("cache lock").clear();
        self.plans.lock().expect("cache lock").clear();
        Ok(format!("ok epoch={}", state.tcs_epoch))
    }

    /// `guaranteed <atom>` — is this fact certain to be available, i.e.
    /// derived by the materialized T_C fixpoint?
    fn req_guaranteed(&self, src: &str) -> Result<String, (&'static str, String)> {
        let fact = self.parse_fact(src)?;
        let state = self.state.read().expect("state lock");
        let guaranteed = match state.avail.get(&fact.pred) {
            Some(&pa) => state.tc_mat.model().contains(&Fact::new(pa, fact.args)),
            None => false,
        };
        Ok(format!("ok {guaranteed}"))
    }

    /// `analyze [<query>]` — static analysis against the session TCS set.
    /// With a query, the per-query diagnostics (M006–M010); without one,
    /// the statement-set diagnostics (M001–M005). Diagnostics come back
    /// `|`-separated on one line; the session holds no integrity
    /// constraints, so the constraint-dependent checks are vacuous.
    fn req_analyze(&self, rest: &str) -> Result<String, (&'static str, String)> {
        let constraints = ConstraintSet::default();
        let mut vocab = self.vocab.lock().expect("vocab lock");
        let query = if rest.is_empty() {
            None
        } else {
            Some(parse_query(rest, &mut vocab).map_err(|e| ("parse", e.to_string()))?)
        };
        let state = self.state.read().expect("state lock");
        let diags = match &query {
            Some(q) => analyze_query(0, q, &state.tcs, &constraints, &vocab),
            None => analyze_statements(&state.tcs, &constraints, &vocab),
        };
        let rendered: Vec<String> = diags
            .iter()
            .map(|d| format!("{}[{}] {}", d.severity, d.code, d.message))
            .collect();
        Ok(format!("ok {} {}", rendered.len(), rendered.join(" | "))
            .trim_end()
            .to_string())
    }

    fn parse_fact(&self, src: &str) -> Result<Fact, (&'static str, String)> {
        let mut vocab = self.vocab.lock().expect("vocab lock");
        let src = src.strip_suffix('.').unwrap_or(src);
        let atom = parse_atom(src, &mut vocab).map_err(|e| ("parse", e.to_string()))?;
        atom.to_fact()
            .ok_or_else(|| ("proto", "fact must be ground (no variables)".to_string()))
    }
}

fn render_verdict(complete: bool) -> String {
    if complete {
        "ok complete".to_string()
    } else {
        "ok incomplete".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_engine() -> Engine {
        let e = Engine::new();
        assert_eq!(
            e.handle("compl school(S, primary, D) ; true."),
            "ok epoch=1"
        );
        assert_eq!(
            e.handle("compl pupil(N, C, S) ; school(S, T, merano)."),
            "ok epoch=2"
        );
        e
    }

    #[test]
    fn check_reproduces_the_running_example() {
        let e = paper_engine();
        assert_eq!(
            e.handle("check q(N) :- pupil(N, C, S), school(S, primary, merano)."),
            "ok complete"
        );
        assert_eq!(
            e.handle("check q(N) :- pupil(N, C, S), school(S, primary, bolzano)."),
            "ok incomplete"
        );
    }

    #[test]
    fn verdict_cache_hits_on_alpha_variants() {
        let e = paper_engine();
        let q1 = "check q(N) :- pupil(N, C, S), school(S, primary, merano).";
        let q2 = "check q(A) :- school(Z, primary, merano), pupil(A, B, Z).";
        assert_eq!(e.handle(q1), "ok complete");
        assert_eq!(e.handle(q2), "ok complete");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("verdict_cache.hits=1 verdict_cache.misses=1"),
            "{metrics}"
        );
    }

    #[test]
    fn compl_invalidates_verdicts() {
        let e = Engine::new();
        let q = "check q(N) :- pupil(N, C, S).";
        assert_eq!(e.handle(q), "ok incomplete");
        assert_eq!(e.handle("compl pupil(N, C, S) ; true."), "ok epoch=1");
        assert_eq!(e.handle(q), "ok complete");
    }

    #[test]
    fn assert_and_retract_maintain_guarantees() {
        let e = Engine::new();
        e.handle("compl pupil(N, C, S) ; school(S, T, merano).");
        assert_eq!(e.handle("guaranteed pupil(anna, c1, hofer)."), "ok false");
        assert_eq!(
            e.handle("assert school(hofer, primary, merano)."),
            "ok inserted"
        );
        // The TCS guarantees pupils of Merano schools: with the school
        // stored, pupil facts at that school become guaranteed only via
        // the condition's *ideal* copy — T_C derives from R^i facts.
        assert_eq!(
            e.handle("guaranteed school(hofer, primary, merano)."),
            "ok false"
        );
        assert_eq!(e.handle("assert pupil(anna, c1, hofer)."), "ok inserted");
        assert_eq!(e.handle("guaranteed pupil(anna, c1, hofer)."), "ok true");
        assert_eq!(
            e.handle("retract school(hofer, primary, merano)."),
            "ok retracted"
        );
        assert_eq!(e.handle("guaranteed pupil(anna, c1, hofer)."), "ok false");
    }

    #[test]
    fn eval_answers_and_caches_by_data_epoch() {
        let e = Engine::new();
        e.handle("assert edge(a, b).");
        e.handle("assert edge(b, c).");
        let q = "eval q(X, Y) :- edge(X, Y).";
        assert_eq!(e.handle(q), "ok 2 (a, b); (b, c)");
        assert_eq!(e.handle(q), "ok 2 (a, b); (b, c)");
        e.handle("assert edge(c, d).");
        assert_eq!(e.handle(q), "ok 3 (a, b); (b, c); (c, d)");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("answer_cache.hits=1 answer_cache.misses=2"),
            "{metrics}"
        );
    }

    #[test]
    fn eval_reuses_compiled_plans_across_data_epochs() {
        let e = Engine::new();
        e.handle("assert edge(a, b).");
        let q = "eval q(X, Y) :- edge(X, Y).";
        assert_eq!(e.handle(q), "ok 1 (a, b)");
        // The data-epoch bump invalidates the answers but not the plan.
        e.handle("assert edge(b, c).");
        assert_eq!(e.handle(q), "ok 2 (a, b); (b, c)");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("plan_cache.hits=1 plan_cache.misses=1"),
            "{metrics}"
        );
        assert!(metrics.contains("exec.probes="), "{metrics}");
        // `compl` clears the plan cache: the next evaluation that misses
        // the answer cache recompiles.
        e.handle("compl edge(X, Y) ; true.");
        e.handle("assert edge(c, d).");
        assert_eq!(e.handle(q), "ok 3 (a, b); (b, c); (c, d)");
        let metrics = e.handle("metrics");
        assert!(
            metrics.contains("plan_cache.hits=1 plan_cache.misses=2"),
            "{metrics}"
        );
    }

    #[test]
    fn eval_unsafe_query_errors_and_is_not_plan_cached() {
        let e = Engine::new();
        e.handle("assert edge(a, b).");
        let q = "eval q(X, Y) :- edge(X, Z).";
        assert!(e.handle(q).starts_with("err eval "), "{}", e.handle(q));
        let metrics = e.handle("metrics");
        assert!(metrics.contains("plan_cache.hits=0"), "{metrics}");
    }

    #[test]
    fn malformed_requests_get_error_replies() {
        let e = Engine::new();
        assert!(e.handle("frobnicate x").starts_with("err proto "));
        assert!(e.handle("check q(X :-").starts_with("err parse "));
        assert!(e.handle("assert p(X).").starts_with("err proto "));
        assert!(e
            .handle("specialize q(X) :- r(X).")
            .starts_with("err proto "));
        assert!(e.handle("").starts_with("err proto "));
    }

    #[test]
    fn analyze_reports_statement_and_query_diagnostics() {
        let e = Engine::new();
        e.handle("compl pupil(N, C, S) ; class(C, S, L, T).");
        // Statement-set analysis: the class condition is unguaranteeable.
        let s = e.handle("analyze");
        assert!(s.starts_with("ok 1 warning[M004]"), "{s}");
        // Query analysis: pupil is transitively dead.
        let q = e.handle("analyze q(N) :- pupil(N, C, S).");
        assert!(q.contains("[M008]"), "{q}");
        // An unsafe query is flagged, not evaluated.
        let unsafe_q = e.handle("analyze q(X, Y) :- pupil(X, C, S).");
        assert!(unsafe_q.contains("error[M006]"), "{unsafe_q}");
        assert!(e.handle("analyze q(X :-").starts_with("err parse "));
    }

    #[test]
    fn generalize_and_specialize_round_trip() {
        let e = paper_engine();
        let g = e.handle("generalize q(N) :- pupil(N, C, S), school(S, primary, bolzano).");
        assert!(g.starts_with("ok "), "{g}");
        let s = e.handle("specialize 0 q(N) :- pupil(N, C, S), school(S, primary, bolzano).");
        assert!(s.starts_with("ok "), "{s}");
    }
}
