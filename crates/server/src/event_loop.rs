//! The event-loop (reactor) front end.
//!
//! One thread owns every connection: it multiplexes readiness through a
//! level-triggered [`Poller`], parses complete requests out of
//! per-connection read buffers, and dispatches them to a fixed
//! [`ThreadPool`] of request workers. Workers hand finished replies back
//! over a channel and wake the reactor; the reactor stitches replies
//! into each connection's write buffer **strictly in request order**, so
//! clients may pipeline many requests and still match replies
//! positionally.
//!
//! Compared to the blocking front end (`Server::start_blocking`), a
//! connection here costs two buffers instead of a pool worker: thousands
//! of idle or slow connections coexist with a handful of threads, and a
//! non-reading peer accumulates at most [`WBUF_GATE`] + one reply of
//! bytes before its connection stops parsing (and, past
//! [`WRITE_STALL_LIMIT`] without draining a byte, is dropped).
//!
//! Backpressure is three gates, all per connection and all re-opened by
//! the event that clears them: at [`MAX_INFLIGHT`] dispatched requests,
//! parsing pauses; at [`WBUF_GATE`] unflushed reply bytes, parsing
//! pauses; at [`RBUF_GATE`] unparsed input bytes, socket reads pause
//! (TCP backpressure then reaches the client). Accept failures
//! (descriptor exhaustion) park the listener on an
//! [`AcceptBackoff`] ladder instead of spinning.
//!
//! Framing: connections start in line framing; `frames binary` switches
//! the connection to `[len: u32 LE][payload]` frames after the ack (the
//! ack itself travels in the old framing). A zero-length or oversized
//! frame is a protocol error: the server replies `err proto …` and
//! closes. `replicate <tcs> <data>` detaches the socket from the
//! reactor entirely and hands it to a dedicated WAL-streamer thread
//! (`replication::serve_replica`) — streaming is sequential blocking
//! I/O, which a readiness loop would only complicate.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use magik_runtime::poller::{Interest, Poller};
use magik_runtime::ThreadPool;

use crate::engine::Engine;
use crate::net::{
    intercept, replication_status, AcceptBackoff, Action, Framing, ServerConfig, MAX_LINE_BYTES,
};
use crate::replication;

/// The registration token reserved for the listener.
const LISTENER_TOKEN: usize = 0;
/// Reactor tick: upper bound on one `Poller::wait`, so stop flags,
/// accept-backoff expiry and write-stall sweeps are noticed promptly.
const TICK: Duration = Duration::from_millis(500);
/// Requests dispatched but not yet flushed, per connection, before
/// parsing pauses.
const MAX_INFLIGHT: u64 = 128;
/// Unflushed reply bytes per connection before parsing pauses.
const WBUF_GATE: usize = 1 << 20;
/// Unparsed input bytes per connection before socket reads pause. Must
/// exceed [`MAX_LINE_BYTES`] + 4 so a maximal binary frame can always
/// finish arriving.
const RBUF_GATE: usize = 2 << 20;
/// A connection owing reply bytes that drains none of them for this
/// long is dropped as a non-reader.
const WRITE_STALL_LIMIT: Duration = Duration::from_secs(30);
/// Read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// A completed reply routed back to the reactor: connection token,
/// per-connection sequence number, and the reply itself.
type DoneMsg = (usize, u64, Done);

/// A request waiting in [`Conn::exec_queue`] for its execution turn.
enum Exec {
    /// Run through `Engine::handle` on a pool worker.
    Engine(String),
    /// Render this node's replication status. Cheap (a snapshot clone
    /// plus atomic loads), so it runs on the reactor thread — but only
    /// at its turn, after every request ahead of it has executed.
    Status,
}

/// A finished reply travelling back from a worker (or produced inline).
struct Done {
    reply: String,
    /// Switch the connection's reply framing after this reply.
    switch_to: Option<Framing>,
    /// Close the connection once this reply is flushed.
    close: bool,
}

/// What one pump pass decided about a connection.
enum Fate {
    Keep,
    Close,
    /// Detach the socket and hand it to a WAL streamer from this
    /// `(tcs_epoch, data_epoch)` position.
    Replicate((u64, u64)),
}

/// One parsed request, or a reason to stop parsing.
enum Parsed {
    /// A complete request (already trimmed; never empty).
    Cmd(String),
    /// Whitespace only — consumed, nothing to do.
    Blank,
    /// Need more input bytes.
    Incomplete,
    /// The peer violated the protocol: reply and close.
    Violation(&'static str),
}

struct Conn {
    stream: TcpStream,
    /// Raw input; `rpos` marks how far parsing has consumed it.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Rendered replies; `wpos` marks how far the socket has taken them.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Framing applied to *incoming* bytes (switches at the `frames`
    /// command itself).
    parse_framing: Framing,
    /// Framing applied to *outgoing* replies (switches after the ack is
    /// rendered, so the ack travels in the old framing).
    reply_framing: Framing,
    /// Next request sequence number to assign.
    next_seq: u64,
    /// Sequence number the next flushed reply must carry.
    next_flush: u64,
    /// Out-of-order finished replies waiting for their turn.
    done: BTreeMap<u64, Done>,
    /// Parsed engine requests waiting to execute. One request per
    /// connection runs at a time ([`Conn::executing`]), so a pipelined
    /// `compl` + `check` pair behaves exactly as it would back-to-back —
    /// pipelining reorders nothing, it only removes round trips.
    exec_queue: VecDeque<(u64, Exec)>,
    /// The sequence number currently running on a worker, if any.
    executing: Option<u64>,
    /// Peer half-closed its write side (EOF seen).
    read_closed: bool,
    /// A closing reply has been queued; stop parsing new requests.
    closing: bool,
    /// The closing reply has been rendered; close once `wbuf` drains.
    close_after_flush: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Set by a readiness event; cleared after the read attempt.
    want_read: bool,
    /// Last instant a pending reply byte reached the socket.
    last_write_progress: Instant,
    /// Set when `replicate` detaches this connection.
    replicate_from: Option<(u64, u64)>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            parse_framing: Framing::Line,
            reply_framing: Framing::Line,
            next_seq: 0,
            next_flush: 0,
            done: BTreeMap::new(),
            exec_queue: VecDeque::new(),
            executing: None,
            read_closed: false,
            closing: false,
            close_after_flush: false,
            interest: Interest::READ,
            want_read: false,
            last_write_progress: Instant::now(),
            replicate_from: None,
        }
    }

    fn unparsed(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn inflight(&self) -> u64 {
        self.next_seq - self.next_flush
    }
}

/// Everything a pump pass needs besides the connection itself.
struct Ctx<'a> {
    engine: &'a Arc<Engine>,
    cfg: &'a ServerConfig,
    pool: &'a ThreadPool,
    poller: &'a Arc<Poller>,
    done_tx: &'a Sender<(usize, u64, Done)>,
}

/// Runs the reactor until `stop` is raised. Entry point for the
/// `magik-reactor` thread; all errors end the loop silently (the server
/// is stopping or the listener is gone).
pub(crate) fn run(
    listener: TcpListener,
    poller: Arc<Poller>,
    engine: Arc<Engine>,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
) {
    let _ = serve(&listener, &poller, &engine, &cfg, &stop);
}

fn serve(
    listener: &TcpListener,
    poller: &Arc<Poller>,
    engine: &Arc<Engine>,
    cfg: &ServerConfig,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    poller.register(listener, LISTENER_TOKEN, Interest::READ)?;
    let pool = ThreadPool::new(cfg.workers.max(1));
    let (done_tx, done_rx): (Sender<DoneMsg>, Receiver<DoneMsg>) = channel();
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = LISTENER_TOKEN + 1;
    let mut backoff = AcceptBackoff::new();
    let mut accept_paused_until: Option<Instant> = None;
    let mut events = Vec::new();

    while !stop.load(Ordering::SeqCst) {
        let timeout = accept_paused_until.map_or(TICK, |t| {
            t.saturating_duration_since(Instant::now()).min(TICK)
        });
        poller.wait(&mut events, Some(timeout))?;
        if stop.load(Ordering::SeqCst) {
            break;
        }

        // Resume accepting once the backoff window has passed.
        if accept_paused_until.is_some_and(|t| Instant::now() >= t) {
            accept_paused_until = None;
            poller.register(listener, LISTENER_TOKEN, Interest::READ)?;
        }

        let mut accept_ready = false;
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                accept_ready = true;
            } else if let Some(conn) = conns.get_mut(&ev.token) {
                if ev.readable {
                    conn.want_read = true;
                }
                // Writable readiness needs no flag: every pump pass
                // attempts a flush when reply bytes are pending.
            }
        }

        if accept_ready && accept_paused_until.is_none() {
            accept_paused_until = accept_all(
                listener,
                poller,
                engine,
                &mut conns,
                &mut next_token,
                &mut backoff,
            );
        }

        // Finished replies from the workers.
        while let Ok((token, seq, done)) = done_rx.try_recv() {
            if let Some(conn) = conns.get_mut(&token) {
                conn.done.insert(seq, done);
            }
        }

        // Drive every connection; readiness, completions and gate
        // re-openings all funnel through the same pump.
        let ctx = Ctx {
            engine,
            cfg,
            pool: &pool,
            poller,
            done_tx: &done_tx,
        };
        let tokens: Vec<usize> = conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            match pump(conn, token, &ctx) {
                Fate::Keep => {}
                Fate::Close => {
                    let conn = conns.remove(&token).expect("pumped conn");
                    let _ = poller.deregister(&conn.stream);
                }
                Fate::Replicate(from) => {
                    let conn = conns.remove(&token).expect("pumped conn");
                    let _ = poller.deregister(&conn.stream);
                    detach_replica(conn.stream, engine, stop, from);
                }
            }
        }
    }

    // Shutdown: joining the pool finishes every dispatched request, then
    // finished replies are flushed best-effort before sockets close.
    drop(pool);
    while let Ok((token, seq, done)) = done_rx.try_recv() {
        if let Some(conn) = conns.get_mut(&token) {
            conn.done.insert(seq, done);
        }
    }
    for conn in conns.values_mut() {
        flush_ready(conn);
        let _ = try_flush(conn);
    }
    Ok(())
}

/// Accepts until `WouldBlock`. On a persistent accept failure
/// (descriptor exhaustion), records the error, parks the listener and
/// returns the instant accepting should resume.
fn accept_all(
    listener: &TcpListener,
    poller: &Arc<Poller>,
    engine: &Arc<Engine>,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
    backoff: &mut AcceptBackoff,
) -> Option<Instant> {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff.on_success();
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let token = *next_token;
                // Skip the listener token and the poller's reserved
                // waker token on wraparound.
                *next_token = next_token.wrapping_add(1).max(LISTENER_TOKEN + 1);
                if *next_token == usize::MAX {
                    *next_token = LISTENER_TOKEN + 1;
                }
                if poller.register(&stream, token, Interest::READ).is_ok() {
                    conns.insert(token, Conn::new(stream));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return None,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                // EMFILE/ENFILE and friends fail again immediately; park
                // the listener (deregister, so level-triggered readiness
                // stops firing) and resume after the backoff delay.
                engine.metrics().record_accept_error();
                let delay = backoff.on_error();
                let _ = poller.deregister(listener);
                return Some(Instant::now() + delay);
            }
        }
    }
}

/// One full service pass over a connection: read, parse/dispatch, order
/// replies, flush, re-arm interest.
fn pump(conn: &mut Conn, token: usize, ctx: &Ctx<'_>) -> Fate {
    if conn.want_read {
        conn.want_read = false;
        if !conn.read_closed && !conn.closing && conn.replicate_from.is_none() {
            if let Err(()) = read_some(conn) {
                return Fate::Close;
            }
        }
    }

    parse_and_dispatch(conn, ctx);
    advance_exec(conn, token, ctx);

    flush_ready(conn);
    if try_flush(conn).is_err() {
        return Fate::Close;
    }

    if let Some(from) = conn.replicate_from {
        // Only taken with nothing pending in either direction (the
        // parser refuses a pipelined `replicate`).
        return Fate::Replicate(from);
    }
    if conn.close_after_flush && conn.pending_write() == 0 {
        return Fate::Close;
    }
    if conn.read_closed
        && conn.inflight() == 0
        && conn.pending_write() == 0
        && (conn.unparsed() == 0 || conn.parse_framing == Framing::Binary)
    {
        // EOF and nothing left to produce. A torn binary frame tail is
        // unfinishable and dropped; a line tail was already parsed as a
        // final unterminated line.
        return Fate::Close;
    }
    if conn.pending_write() > 0 && conn.last_write_progress.elapsed() > WRITE_STALL_LIMIT {
        // Non-reader: owes reply bytes and has drained none for the
        // whole stall window.
        return Fate::Close;
    }

    let want = Interest {
        read: !conn.read_closed
            && !conn.closing
            && conn.replicate_from.is_none()
            && conn.unparsed() < RBUF_GATE
            && conn.inflight() < MAX_INFLIGHT
            && conn.pending_write() < WBUF_GATE,
        write: conn.pending_write() > 0,
    };
    if want != conn.interest {
        if ctx.poller.reregister(&conn.stream, token, want).is_err() {
            return Fate::Close;
        }
        conn.interest = want;
    }
    Fate::Keep
}

/// Drains the socket into `rbuf` until `WouldBlock`, EOF, or the read
/// gate. `Err(())` means the connection is dead.
fn read_some(conn: &mut Conn) -> Result<(), ()> {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        if conn.unparsed() >= RBUF_GATE {
            return Ok(());
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                return Ok(());
            }
            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
}

/// Extracts the next complete request from the read buffer.
fn next_request(conn: &mut Conn) -> Parsed {
    match conn.parse_framing {
        Framing::Line => {
            let haystack = &conn.rbuf[conn.rpos..];
            match haystack.iter().position(|&b| b == b'\n') {
                Some(pos) if pos > MAX_LINE_BYTES => Parsed::Violation("err line too long"),
                Some(pos) => {
                    let cmd = String::from_utf8_lossy(&haystack[..pos]).trim().to_string();
                    conn.rpos += pos + 1;
                    if cmd.is_empty() {
                        Parsed::Blank
                    } else {
                        Parsed::Cmd(cmd)
                    }
                }
                None if haystack.len() > MAX_LINE_BYTES => Parsed::Violation("err line too long"),
                None if conn.read_closed && !haystack.is_empty() => {
                    // Unterminated final line before EOF counts as a
                    // line, matching the blocking front end.
                    let cmd = String::from_utf8_lossy(haystack).trim().to_string();
                    conn.rpos = conn.rbuf.len();
                    if cmd.is_empty() {
                        Parsed::Blank
                    } else {
                        Parsed::Cmd(cmd)
                    }
                }
                None => Parsed::Incomplete,
            }
        }
        Framing::Binary => {
            let haystack = &conn.rbuf[conn.rpos..];
            if haystack.len() < 4 {
                return Parsed::Incomplete;
            }
            let len =
                u32::from_le_bytes([haystack[0], haystack[1], haystack[2], haystack[3]]) as usize;
            if len == 0 {
                return Parsed::Violation("err proto empty frame");
            }
            if len > MAX_LINE_BYTES {
                return Parsed::Violation("err proto frame exceeds the size cap");
            }
            if haystack.len() < 4 + len {
                return Parsed::Incomplete;
            }
            let cmd = String::from_utf8_lossy(&haystack[4..4 + len])
                .trim()
                .to_string();
            conn.rpos += 4 + len;
            if cmd.is_empty() {
                Parsed::Blank
            } else {
                Parsed::Cmd(cmd)
            }
        }
    }
}

/// Parses as many complete requests as the gates allow, completing
/// connection-level commands inline and queueing the rest for
/// sequential execution ([`advance_exec`]).
fn parse_and_dispatch(conn: &mut Conn, ctx: &Ctx<'_>) {
    while !conn.closing
        && conn.replicate_from.is_none()
        && conn.inflight() < MAX_INFLIGHT
        && conn.pending_write() < WBUF_GATE
    {
        let cmd = match next_request(conn) {
            Parsed::Cmd(cmd) => cmd,
            Parsed::Blank => continue,
            Parsed::Incomplete => break,
            Parsed::Violation(reply) => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.done.insert(
                    seq,
                    Done {
                        reply: reply.to_string(),
                        switch_to: None,
                        close: true,
                    },
                );
                conn.closing = true;
                break;
            }
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        match intercept(&cmd, ctx.cfg, conn.parse_framing) {
            Action::Reply(reply) => {
                conn.done.insert(
                    seq,
                    Done {
                        reply,
                        switch_to: None,
                        close: false,
                    },
                );
            }
            Action::Close(reply) => {
                conn.done.insert(
                    seq,
                    Done {
                        reply,
                        switch_to: None,
                        close: true,
                    },
                );
                conn.closing = true;
            }
            Action::Switch(framing, ack) => {
                // Incoming bytes switch right here; outgoing replies
                // switch when the ack is rendered (ordered with every
                // earlier reply).
                conn.parse_framing = framing;
                conn.done.insert(
                    seq,
                    Done {
                        reply: ack,
                        switch_to: Some(framing),
                        close: false,
                    },
                );
            }
            Action::Replicate(from) => {
                if seq != conn.next_flush || conn.pending_write() > 0 || conn.unparsed() > 0 {
                    conn.done.insert(
                        seq,
                        Done {
                            reply: "err proto replicate cannot be pipelined".to_string(),
                            switch_to: None,
                            close: true,
                        },
                    );
                    conn.closing = true;
                } else {
                    // No reply flows through the reactor: the streamer
                    // writes the handshake itself. Un-issue the seq so
                    // ordering stays consistent.
                    conn.next_seq = seq;
                    conn.replicate_from = Some(from);
                }
            }
            Action::Status => {
                conn.exec_queue.push_back((seq, Exec::Status));
            }
            Action::Dispatch => {
                conn.exec_queue.push_back((seq, Exec::Engine(cmd)));
            }
        }
    }
    // Reclaim consumed input.
    if conn.rpos > 0 {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
}

/// Keeps exactly one engine request per connection on the workers:
/// dispatches the queue head once the previous request's reply has come
/// back. Sequential execution per connection is what makes pipelining
/// safe for dependent requests (a `compl` followed by a `check` that
/// relies on it); concurrency comes from having many connections.
fn advance_exec(conn: &mut Conn, token: usize, ctx: &Ctx<'_>) {
    if let Some(seq) = conn.executing {
        if conn.done.contains_key(&seq) || conn.next_flush > seq {
            conn.executing = None;
        }
    }
    while conn.executing.is_none() {
        let Some((seq, exec)) = conn.exec_queue.pop_front() else {
            break;
        };
        match exec {
            Exec::Status => {
                conn.done.insert(
                    seq,
                    Done {
                        reply: replication_status(ctx.engine, ctx.cfg),
                        switch_to: None,
                        close: false,
                    },
                );
            }
            Exec::Engine(cmd) => {
                conn.executing = Some(seq);
                let engine = Arc::clone(ctx.engine);
                let tx = ctx.done_tx.clone();
                let poller = Arc::clone(ctx.poller);
                ctx.pool.execute(move || {
                    let reply = engine.handle(&cmd);
                    let _ = tx.send((
                        token,
                        seq,
                        Done {
                            reply,
                            switch_to: None,
                            close: false,
                        },
                    ));
                    let _ = poller.wake();
                });
            }
        }
    }
}

/// Moves every reply whose turn has come from the reorder map into the
/// write buffer, applying framing switches and close requests as they
/// pass.
fn flush_ready(conn: &mut Conn) {
    let was_empty = conn.pending_write() == 0;
    let mut rendered = false;
    while let Some(done) = conn.done.remove(&conn.next_flush) {
        conn.next_flush += 1;
        rendered = true;
        match conn.reply_framing {
            Framing::Line => {
                conn.wbuf.extend_from_slice(done.reply.as_bytes());
                conn.wbuf.push(b'\n');
            }
            Framing::Binary => {
                let bytes = done.reply.as_bytes();
                conn.wbuf
                    .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                conn.wbuf.extend_from_slice(bytes);
            }
        }
        if let Some(framing) = done.switch_to {
            conn.reply_framing = framing;
        }
        if done.close {
            conn.close_after_flush = true;
        }
    }
    if was_empty && rendered {
        // The stall clock starts when the connection begins owing bytes.
        conn.last_write_progress = Instant::now();
    }
}

/// Pushes pending reply bytes into the socket until `WouldBlock` or
/// empty. `Err(())` means the connection is dead.
fn try_flush(conn: &mut Conn) -> Result<(), ()> {
    while conn.pending_write() > 0 {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                conn.wpos += n;
                conn.last_write_progress = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    if conn.pending_write() == 0 && !conn.wbuf.is_empty() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    Ok(())
}

/// Hands a detached socket to a dedicated WAL-streamer thread. The
/// socket returns to blocking mode (the streamer uses sequential writes
/// under its own timeouts).
fn detach_replica(
    stream: TcpStream,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
    from: (u64, u64),
) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let engine = Arc::clone(engine);
    let stop = Arc::clone(stop);
    let _ = std::thread::Builder::new()
        .name("magik-replship".to_string())
        .spawn(move || {
            let _ = replication::serve_replica(stream, &engine, &stop, from);
        });
}
