//! A small, exact LRU cache.
//!
//! The server keeps two of these: completeness verdicts keyed by
//! `(canonical query, TCS epoch)` and evaluation answers keyed by
//! `(canonical query, data epoch)`. Capacities are small (hundreds to
//! thousands of entries), so eviction does a linear minimum-stamp scan —
//! O(capacity), branch-free, and with no linked-list bookkeeping to get
//! wrong. At the capacities the server uses, the scan is far cheaper than
//! the completeness check whose result it caches.

use std::collections::HashMap;
use std::hash::Hash;

/// An exact least-recently-used cache with a fixed capacity.
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `cap` entries (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = tick;
            v.clone()
        })
    }

    /// Inserts `key → value`, evicting the least recently used entry if
    /// the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// The number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every entry (e.g. on an epoch bump, where stale keys can
    /// never be queried again and would only occupy capacity).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // refresh "a"; "b" is now LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 10);
        c.insert("b", 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(10));
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        c.insert(2, 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }
}
