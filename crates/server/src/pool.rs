//! A fixed-size worker pool over `std::thread` and channels.
//!
//! Jobs are closures pulled from a single shared queue (an `mpsc` receiver
//! behind a mutex — the textbook std-only design). Dropping the pool
//! closes the queue and joins every worker, so pool shutdown is a clean
//! barrier: all submitted jobs finish first.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool.
#[derive(Debug)]
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `size` worker threads (`size >= 1`).
    pub fn new(size: usize) -> ThreadPool {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("magik-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Submits a job. Panics if the pool is shutting down (the sender is
    /// only dropped in [`Drop`]).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is live")
            .send(Box::new(job))
            .expect("workers are live");
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the queue lock only while *receiving*; run the job outside
        // it so workers actually execute in parallel.
        let Ok(job) = rx.lock().expect("queue lock").recv() else {
            return; // queue closed: pool is shutting down
        };
        job();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_and_joins_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            for _ in 0..100 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins, so every job has run afterwards.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        use std::sync::mpsc::channel;
        let pool = ThreadPool::new(2);
        let (tx1, rx1) = channel();
        let (tx2, rx2) = channel();
        // Two jobs that each wait for the other's signal: only possible
        // if they run on distinct workers.
        pool.execute(move || {
            tx1.send(()).unwrap();
            rx2.recv().unwrap();
        });
        pool.execute(move || {
            rx1.recv().unwrap();
            tx2.send(()).unwrap();
        });
        // Dropping joins; a deadlock here would hang the test.
    }
}
