//! A concurrent completeness service over the MAGIK-rs reasoning stack.
//!
//! The paper's MAGIK system is an *interactive* demonstrator: a user loads
//! a database and a set of table-completeness statements, then asks
//! completeness questions and edits the data, back and forth. This crate
//! is the production-shaped version of that loop: a long-running
//! [`Engine`] holding the session state, served over a line-oriented TCP
//! protocol by a fixed pool of worker threads.
//!
//! * [`Engine`] — the shared session: database, TCS set, an incrementally
//!   maintained T_C materialization, a canonical-form verdict cache, an
//!   answer cache, and metrics. All entry points take `&self`. State is
//!   published as immutable snapshots behind a swap point, so read
//!   requests evaluate without holding any lock — a slow `specialize`
//!   never blocks a concurrent `check`, and writers proceed undisturbed.
//! * [`Server`] — `std::net` front end: by default an event-loop reactor
//!   (one thread multiplexes every connection over a non-blocking
//!   poller, requests may be pipelined, and a length-prefixed binary
//!   framing can be negotiated in-band), with the original
//!   thread-per-connection path kept as [`Server::start_blocking`].
//!   Grammar in `PROTOCOL.md`.
//! * [`ThreadPool`] — the shared `magik-runtime` work-stealing pool the
//!   request handlers run on. The engine's *compute* pool (its
//!   [`Executor`](magik_exec::Executor)) is a separate instance: blocking
//!   connection handlers must never occupy the workers that reasoning
//!   fan-outs need, and vice versa.
//! * [`ServerConfig`] / [`ReplicaStatus`] / [`initial_sync`] /
//!   [`run_replica`] — WAL log-shipping replication: a primary streams
//!   its write-ahead log to read-only replicas from a snapshot-consistent
//!   position; replicas replay through the normal recovery path and
//!   report their epoch lag via the `replication` command.
//! * [`Metrics`] / [`Histogram`] — per-op counters and fixed-bucket
//!   latency quantiles, reported by the `metrics` request (together with
//!   the compute pool's `runtime.tasks`/`runtime.steals`/`pool.panics`
//!   counters).
//! * [`LruCache`] — the exact LRU underlying both caches.
//! * [`Engine::open_durable`] / [`DurabilityOptions`] — the optional
//!   durability layer (`magik-storage`): mutations are written ahead to a
//!   CRC-framed WAL before they are applied, a background worker writes
//!   periodic snapshot checkpoints, and opening recovers the newest valid
//!   checkpoint plus a verified replay of the WAL tail
//!   ([`RecoveryReport`]). [`Server::stop`] flushes the log and writes a
//!   final checkpoint, so a clean stop replays zero records on restart.
//!
//! # Example
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//! use std::sync::Arc;
//! use magik_server::{Engine, Server};
//!
//! let server = Server::start(Arc::new(Engine::new()), "127.0.0.1:0", 2).unwrap();
//! let mut conn = TcpStream::connect(server.local_addr()).unwrap();
//! conn.write_all(b"compl pupil(N, C, S) ; true.\ncheck q(N) :- pupil(N, C, S).\n")
//!     .unwrap();
//! let mut lines = BufReader::new(conn.try_clone().unwrap()).lines();
//! assert_eq!(lines.next().unwrap().unwrap(), "ok epoch=1");
//! assert_eq!(lines.next().unwrap().unwrap(), "ok complete");
//! server.stop();
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
mod durability;
mod engine;
mod event_loop;
mod metrics;
mod net;
mod replication;

pub use cache::LruCache;
pub use durability::{DurabilityOptions, RecoveryReport};
pub use engine::Engine;
pub use magik_runtime::ThreadPool;
pub use metrics::{Histogram, Metrics, Op};
pub use net::{Server, ServerConfig};
pub use replication::{initial_sync, run_replica, ReplicaStatus};
