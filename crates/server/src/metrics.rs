//! Server metrics: per-operation counters and latency histograms.
//!
//! Latencies go into a **fixed-bucket histogram** — power-of-two
//! microsecond buckets from 1 µs to ~67 s. Recording is a counter
//! increment (no allocation, no sorting, bounded memory regardless of
//! request volume); quantiles are read back as the upper bound of the
//! bucket containing the requested rank, i.e. with at most 2× relative
//! error, which is plenty for a `metrics` endpoint.

use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The number of histogram buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs sub-µs samples).
const BUCKETS: usize = 27;

/// A fixed-bucket latency histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            max_us: 0,
        }
    }
}

impl Histogram {
    /// Records one latency sample.
    pub fn record(&mut self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// The number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// An upper bound (in µs) on the `q`-quantile latency, `0 <= q <= 1`.
    /// Returns 0 when no samples have been recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the sample we want, 1-based, clamped into range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i, but never above the true max.
                return (1u64 << (i + 1)).saturating_sub(1).min(self.max_us);
            }
        }
        self.max_us
    }

    /// The maximum recorded latency in µs.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }
}

/// The operations the server distinguishes in its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `check` requests.
    Check,
    /// `generalize` requests.
    Generalize,
    /// `specialize` requests.
    Specialize,
    /// `eval` requests.
    Eval,
    /// `assert` requests.
    Assert,
    /// `retract` requests.
    Retract,
    /// `compl` requests.
    Compl,
    /// `guaranteed` requests.
    Guaranteed,
    /// `analyze` requests.
    Analyze,
    /// `why` requests (certified verdicts).
    Why,
    /// Everything else (`metrics`, `ping`, protocol errors).
    Other,
}

const OPS: [(Op, &str); 11] = [
    (Op::Check, "check"),
    (Op::Generalize, "generalize"),
    (Op::Specialize, "specialize"),
    (Op::Eval, "eval"),
    (Op::Assert, "assert"),
    (Op::Retract, "retract"),
    (Op::Compl, "compl"),
    (Op::Guaranteed, "guaranteed"),
    (Op::Analyze, "analyze"),
    (Op::Why, "why"),
    (Op::Other, "other"),
];

fn op_index(op: Op) -> usize {
    OPS.iter().position(|(o, _)| *o == op).expect("op listed")
}

#[derive(Debug, Default, Clone)]
struct OpStats {
    count: u64,
    errors: u64,
    hist: Histogram,
}

#[derive(Debug, Default)]
struct Inner {
    ops: [OpStats; OPS.len()],
    verdict_hits: u64,
    verdict_misses: u64,
    answer_hits: u64,
    answer_misses: u64,
    plan_hits: u64,
    plan_misses: u64,
    analysis_hits: u64,
    analysis_misses: u64,
    cert_hits: u64,
    cert_misses: u64,
    cert_complete: u64,
    cert_incomplete: u64,
    exec_probes: u64,
    exec_scanned: u64,
    exec_backtracks: u64,
    exec_batches: u64,
    exec_batch_rows: u64,
    exec_join_nested: u64,
    exec_join_hash: u64,
    exec_join_merge: u64,
    dred_overdeleted: u64,
    dred_rederived: u64,
    wal_appends: u64,
    wal_bytes: u64,
    wal_fsyncs: u64,
    checkpoint_count: u64,
    checkpoint_duration_ms: u64,
    recovery_replayed: u64,
    accept_errors: u64,
    lock_poisoned: u64,
    repl_records_shipped: u64,
    repl_records_applied: u64,
    repl_snapshots_shipped: u64,
}

/// Shared, thread-safe server metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Locks the counter state, recovering from a poisoned mutex: the
    /// counters are plain integers, so state abandoned by a panicking
    /// recorder is still internally consistent (at worst one sample
    /// short). Metrics must never become a secondary outage after a
    /// handler panic.
    fn inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one completed request: its operation, latency, and whether
    /// it produced an error response.
    pub fn record(&self, op: Op, latency: Duration, is_error: bool) {
        let mut inner = self.inner();
        let stats = &mut inner.ops[op_index(op)];
        stats.count += 1;
        stats.errors += u64::from(is_error);
        stats.hist.record(latency);
    }

    /// Records a verdict-cache probe outcome.
    pub fn verdict_probe(&self, hit: bool) {
        let mut inner = self.inner();
        if hit {
            inner.verdict_hits += 1;
        } else {
            inner.verdict_misses += 1;
        }
    }

    /// Records an answer-cache probe outcome.
    pub fn answer_probe(&self, hit: bool) {
        let mut inner = self.inner();
        if hit {
            inner.answer_hits += 1;
        } else {
            inner.answer_misses += 1;
        }
    }

    /// Records a plan-cache probe outcome.
    pub fn plan_probe(&self, hit: bool) {
        let mut inner = self.inner();
        if hit {
            inner.plan_hits += 1;
        } else {
            inner.plan_misses += 1;
        }
    }

    /// Records a state-analysis-cache probe outcome (`analyze state` at
    /// an unchanged epoch pair hits).
    pub fn analysis_probe(&self, hit: bool) {
        let mut inner = self.inner();
        if hit {
            inner.analysis_hits += 1;
        } else {
            inner.analysis_misses += 1;
        }
    }

    /// Records a certificate-cache probe outcome (`why` at an unchanged
    /// `(tcs_epoch, data_epoch)` pair hits).
    pub fn cert_probe(&self, hit: bool) {
        let mut inner = self.inner();
        if hit {
            inner.cert_hits += 1;
        } else {
            inner.cert_misses += 1;
        }
    }

    /// Records the polarity of one freshly emitted (and validated)
    /// certificate.
    pub fn record_cert(&self, complete: bool) {
        let mut inner = self.inner();
        if complete {
            inner.cert_complete += 1;
        } else {
            inner.cert_incomplete += 1;
        }
    }

    /// Accumulates executor counters from one plan run (plain integers so
    /// the metrics layer stays decoupled from the execution crate).
    pub fn record_exec(&self, probes: u64, scanned: u64, backtracks: u64) {
        let mut inner = self.inner();
        inner.exec_probes += probes;
        inner.exec_scanned += scanned;
        inner.exec_backtracks += backtracks;
    }

    /// Accumulates batch-execution counters from one plan run: batches
    /// started, rows materialized across all operators, and how many join
    /// operators executed under each strategy.
    pub fn record_batch_exec(&self, batches: u64, batch_rows: u64, joins: (u64, u64, u64)) {
        let mut inner = self.inner();
        inner.exec_batches += batches;
        inner.exec_batch_rows += batch_rows;
        inner.exec_join_nested += joins.0;
        inner.exec_join_hash += joins.1;
        inner.exec_join_merge += joins.2;
    }

    /// Accumulates DRed retraction work from one `retract` request: how
    /// many facts the over-deletion pass removed and how many the
    /// re-derivation pass restored.
    pub fn record_dred(&self, overdeleted: u64, rederived: u64) {
        let mut inner = self.inner();
        inner.dred_overdeleted += overdeleted;
        inner.dred_rederived += rederived;
    }

    /// Records one WAL append: its frame size and whether it fsynced.
    pub fn record_wal(&self, bytes: u64, synced: bool) {
        let mut inner = self.inner();
        inner.wal_appends += 1;
        inner.wal_bytes += bytes;
        inner.wal_fsyncs += u64::from(synced);
    }

    /// Records one completed checkpoint and how long it took.
    pub fn record_checkpoint(&self, took: Duration) {
        let mut inner = self.inner();
        inner.checkpoint_count += 1;
        inner.checkpoint_duration_ms += u64::try_from(took.as_millis()).unwrap_or(u64::MAX);
    }

    /// Records how many WAL ops crash recovery replayed at startup.
    pub fn set_replayed(&self, ops: u64) {
        self.inner().recovery_replayed = ops;
    }

    /// Records one failed `accept(2)` (the listener stays up and backs
    /// off; see the server's accept-backoff policy).
    pub fn record_accept_error(&self) {
        self.inner().accept_errors += 1;
    }

    /// Records one recovery from a poisoned engine mutex (a handler
    /// panicked while holding it; the lock was reclaimed and any cache it
    /// guarded cleared).
    pub fn record_lock_poisoned(&self) {
        self.inner().lock_poisoned += 1;
    }

    /// Records WAL records shipped to replicas over replication streams.
    pub fn record_repl_shipped(&self, records: u64) {
        self.inner().repl_records_shipped += records;
    }

    /// Records one replicated op applied by this (replica) server.
    pub fn record_repl_applied(&self) {
        self.inner().repl_records_applied += 1;
    }

    /// Records one checkpoint image shipped to bootstrap a replica.
    pub fn record_repl_snapshot(&self) {
        self.inner().repl_snapshots_shipped += 1;
    }

    /// Renders all metrics as one line of `key=value` fields: per-op
    /// `<op>.count/.err/.p50us/.p90us/.p99us/.maxus` (ops with zero
    /// requests are omitted) plus cache hit/miss counters and hit rates
    /// (verdict, answer, and plan caches) and aggregate executor counters.
    pub fn render(&self) -> String {
        let inner = self.inner();
        let mut out = String::new();
        for (i, (_, name)) in OPS.iter().enumerate() {
            let s = &inner.ops[i];
            if s.count == 0 {
                continue;
            }
            let _ = write!(
                out,
                "{name}.count={} {name}.err={} {name}.p50us={} {name}.p90us={} \
                 {name}.p99us={} {name}.maxus={} ",
                s.count,
                s.errors,
                s.hist.quantile_us(0.50),
                s.hist.quantile_us(0.90),
                s.hist.quantile_us(0.99),
                s.hist.max_us(),
            );
        }
        let rate = |hits: u64, misses: u64| {
            let total = hits + misses;
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }
        };
        let _ = write!(
            out,
            "verdict_cache.hits={} verdict_cache.misses={} verdict_cache.rate={:.3} \
             answer_cache.hits={} answer_cache.misses={} answer_cache.rate={:.3}",
            inner.verdict_hits,
            inner.verdict_misses,
            rate(inner.verdict_hits, inner.verdict_misses),
            inner.answer_hits,
            inner.answer_misses,
            rate(inner.answer_hits, inner.answer_misses),
        );
        let _ = write!(
            out,
            " plan_cache.hits={} plan_cache.misses={} plan_cache.rate={:.3} \
             exec.probes={} exec.scanned={} exec.backtracks={}",
            inner.plan_hits,
            inner.plan_misses,
            rate(inner.plan_hits, inner.plan_misses),
            inner.exec_probes,
            inner.exec_scanned,
            inner.exec_backtracks,
        );
        let _ = write!(
            out,
            " exec.batch.count={} exec.batch.rows={} exec.join.nested={} \
             exec.join.hash={} exec.join.merge={}",
            inner.exec_batches,
            inner.exec_batch_rows,
            inner.exec_join_nested,
            inner.exec_join_hash,
            inner.exec_join_merge,
        );
        let _ = write!(
            out,
            " analysis_cache.hits={} analysis_cache.misses={} analysis_cache.rate={:.3}",
            inner.analysis_hits,
            inner.analysis_misses,
            rate(inner.analysis_hits, inner.analysis_misses),
        );
        let _ = write!(
            out,
            " cert.cache.hits={} cert.cache.misses={} cert.cache.rate={:.3} \
             cert.complete={} cert.incomplete={}",
            inner.cert_hits,
            inner.cert_misses,
            rate(inner.cert_hits, inner.cert_misses),
            inner.cert_complete,
            inner.cert_incomplete,
        );
        let _ = write!(
            out,
            " dred.overdeleted={} dred.rederived={}",
            inner.dred_overdeleted, inner.dred_rederived,
        );
        let _ = write!(
            out,
            " wal.appends={} wal.bytes={} wal.fsyncs={} checkpoint.count={} \
             checkpoint.duration_ms={} recovery.replayed_ops={}",
            inner.wal_appends,
            inner.wal_bytes,
            inner.wal_fsyncs,
            inner.checkpoint_count,
            inner.checkpoint_duration_ms,
            inner.recovery_replayed,
        );
        let _ = write!(
            out,
            " accept.errors={} lock.poisoned={} repl.shipped={} repl.applied={} \
             repl.snapshots={}",
            inner.accept_errors,
            inner.lock_poisoned,
            inner.repl_records_shipped,
            inner.repl_records_applied,
            inner.repl_snapshots_shipped,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = Histogram::default();
        for us in [1u64, 10, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        // p50 is the 3rd of 5 samples (100 µs): the bound must cover it
        // but stay within its power-of-two bucket.
        let p50 = h.quantile_us(0.5);
        assert!((100..256).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile_us(1.0), 10_000);
        assert_eq!(h.max_us(), 10_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn render_includes_ops_and_cache_rates() {
        let m = Metrics::new();
        m.record(Op::Check, Duration::from_micros(50), false);
        m.record(Op::Check, Duration::from_micros(70), true);
        m.verdict_probe(true);
        m.verdict_probe(false);
        let text = m.render();
        assert!(text.contains("check.count=2"));
        assert!(text.contains("check.err=1"));
        assert!(text.contains("verdict_cache.rate=0.500"));
        // Untouched ops are omitted.
        assert!(!text.contains("eval.count"));
    }

    #[test]
    fn render_includes_plan_cache_and_exec_counters() {
        let m = Metrics::new();
        m.plan_probe(false);
        m.plan_probe(true);
        m.record_exec(5, 40, 12);
        m.record_exec(1, 2, 0);
        let text = m.render();
        assert!(
            text.contains("plan_cache.hits=1 plan_cache.misses=1"),
            "{text}"
        );
        assert!(text.contains("plan_cache.rate=0.500"), "{text}");
        assert!(
            text.contains("exec.probes=6 exec.scanned=42 exec.backtracks=12"),
            "{text}"
        );
    }

    #[test]
    fn render_includes_batch_and_join_counters() {
        let m = Metrics::new();
        // Batch counters are always rendered, even at zero, so scrapers
        // can rely on their presence.
        let text = m.render();
        assert!(
            text.contains("exec.batch.count=0 exec.batch.rows=0"),
            "{text}"
        );
        m.record_batch_exec(3, 120, (2, 1, 0));
        m.record_batch_exec(1, 30, (0, 0, 1));
        let text = m.render();
        assert!(
            text.contains("exec.batch.count=4 exec.batch.rows=150"),
            "{text}"
        );
        assert!(
            text.contains("exec.join.nested=2 exec.join.hash=1 exec.join.merge=1"),
            "{text}"
        );
    }

    #[test]
    fn render_includes_durability_counters() {
        let m = Metrics::new();
        // The durability fields are always rendered, even at zero, so a
        // scraper can rely on their presence.
        let text = m.render();
        assert!(
            text.contains("wal.appends=0 wal.bytes=0 wal.fsyncs=0"),
            "{text}"
        );
        assert!(
            text.contains("checkpoint.count=0 checkpoint.duration_ms=0 recovery.replayed_ops=0"),
            "{text}"
        );
        m.record_wal(32, true);
        m.record_wal(40, false);
        m.record_checkpoint(Duration::from_millis(7));
        m.set_replayed(5);
        let text = m.render();
        assert!(
            text.contains("wal.appends=2 wal.bytes=72 wal.fsyncs=1"),
            "{text}"
        );
        assert!(
            text.contains("checkpoint.count=1 checkpoint.duration_ms=7 recovery.replayed_ops=5"),
            "{text}"
        );
    }

    #[test]
    fn render_includes_cert_counters() {
        let m = Metrics::new();
        // Certificate fields are always rendered, even at zero.
        let text = m.render();
        assert!(
            text.contains("cert.cache.hits=0 cert.cache.misses=0"),
            "{text}"
        );
        assert!(text.contains("cert.complete=0 cert.incomplete=0"), "{text}");
        m.cert_probe(true);
        m.cert_probe(false);
        m.cert_probe(false);
        m.record_cert(true);
        m.record_cert(false);
        m.record_cert(false);
        let text = m.render();
        assert!(
            text.contains("cert.cache.hits=1 cert.cache.misses=2"),
            "{text}"
        );
        assert!(text.contains("cert.cache.rate=0.333"), "{text}");
        assert!(text.contains("cert.complete=1 cert.incomplete=2"), "{text}");
    }

    #[test]
    fn render_includes_accept_lock_and_replication_counters() {
        let m = Metrics::new();
        // Always rendered, even at zero, so scrapers can rely on them.
        let text = m.render();
        assert!(text.contains("accept.errors=0 lock.poisoned=0"), "{text}");
        assert!(
            text.contains("repl.shipped=0 repl.applied=0 repl.snapshots=0"),
            "{text}"
        );
        m.record_accept_error();
        m.record_accept_error();
        m.record_lock_poisoned();
        m.record_repl_shipped(5);
        m.record_repl_applied();
        m.record_repl_snapshot();
        let text = m.render();
        assert!(text.contains("accept.errors=2 lock.poisoned=1"), "{text}");
        assert!(
            text.contains("repl.shipped=5 repl.applied=1 repl.snapshots=1"),
            "{text}"
        );
    }

    #[test]
    fn metrics_survive_a_poisoned_lock() {
        let m = std::sync::Arc::new(Metrics::new());
        let clone = std::sync::Arc::clone(&m);
        // Panic while holding the counter mutex; recording must keep
        // working afterwards instead of propagating the poison.
        let _ = std::thread::spawn(move || {
            let _guard = clone.inner();
            panic!("poison the metrics lock");
        })
        .join();
        m.record_accept_error();
        assert!(m.render().contains("accept.errors=1"));
    }

    #[test]
    fn render_includes_dred_counters() {
        let m = Metrics::new();
        assert!(m.render().contains("dred.overdeleted=0 dred.rederived=0"));
        m.record_dred(7, 3);
        m.record_dred(1, 0);
        assert!(m.render().contains("dred.overdeleted=8 dred.rederived=3"));
    }
}
