//! The TCP front end: an event-loop reactor by default, with the legacy
//! thread-per-connection path kept for comparison.
//!
//! [`Server::start`] runs the reactor in [`crate::event_loop`]: one
//! thread multiplexes every connection over a non-blocking
//! [`Poller`](magik_runtime::poller::Poller) and dispatches parsed
//! requests to a fixed [`ThreadPool`], so thousands of idle or slow
//! connections cost buffers, not threads. [`Server::start_blocking`] is
//! the original front end — one pooled worker owns each connection for
//! its lifetime — retained as the saturation baseline (bench A15) and
//! for platforms where a readiness loop is not wanted.
//!
//! Both paths speak the same protocol (grammar in `PROTOCOL.md`):
//! requests in, replies out, in order. The reactor additionally supports
//! request *pipelining* (many requests in flight per connection, replies
//! strictly in request order) and a length-prefixed *binary framing*
//! negotiated in-band with `frames binary`. Command handling shared by
//! both paths lives in [`intercept`], so `quit`, `replication`, framing
//! negotiation, read-only enforcement and the `replicate` handoff cannot
//! drift between front ends.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use magik_runtime::poller::Poller;
use magik_runtime::ThreadPool;

use crate::engine::Engine;
use crate::replication::{self, ReplicaStatus};

/// How often an idle connection handler wakes up to check the stop flag.
pub(crate) const STOP_POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The most bytes one request may hold — the line before its newline, or
/// a binary frame payload. A client streaming bytes with no terminator
/// would otherwise grow the buffer without bound; at the cap the server
/// replies `err line too long` (or `err proto frame exceeds the size
/// cap`) and drops the connection (see `PROTOCOL.md`).
pub(crate) const MAX_LINE_BYTES: usize = 1 << 20;

/// How long one blocking reply write may go without transferring a
/// single byte before the peer is declared a non-reader and dropped.
/// Without it, a client that stops draining its socket pins a pool
/// worker in `write` forever — with a small pool that is a trivial
/// denial of service (the slow-reader bug this release fixes).
pub(crate) const WRITE_DEADLINE: Duration = Duration::from_secs(2);

/// How request and reply bytes are framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Framing {
    /// `\n`-terminated UTF-8 lines (the default).
    Line,
    /// `[len: u32 LE][payload]` frames, one request or reply per frame.
    Binary,
}

impl Framing {
    /// The name used in `frames` negotiation replies.
    pub(crate) fn name(self) -> &'static str {
        match self {
            Framing::Line => "line",
            Framing::Binary => "binary",
        }
    }
}

/// Configuration for [`Server::start_with`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing engine requests (min 1).
    pub workers: usize,
    /// Refuse mutations (`assert`, `retract`, `compl`) with
    /// `err readonly …`. Replicas serve with this set.
    pub read_only: bool,
    /// When serving as a replica, the shared status handle the
    /// `replication` command reports from.
    pub replica_status: Option<Arc<ReplicaStatus>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            read_only: false,
            replica_status: None,
        }
    }
}

/// What the front end should do with one parsed request.
pub(crate) enum Action {
    /// Reply immediately without touching the engine.
    Reply(String),
    /// Hand the request to `Engine::handle` on a worker.
    Dispatch,
    /// Answer with [`replication_status`] at the request's execution
    /// turn, not at parse time — a pipelined status must reflect every
    /// request ahead of it.
    Status,
    /// Reply, then close the connection.
    Close(String),
    /// Ack in the current framing, then parse and reply with the new one.
    Switch(Framing, String),
    /// Hand the connection to a WAL streamer starting after this
    /// `(tcs_epoch, data_epoch)` position.
    Replicate((u64, u64)),
}

/// Classifies one request line for a front end. Everything that is not a
/// connection-level command (`quit`, `frames`, `replication`,
/// `replicate`, read-only enforcement) is [`Action::Dispatch`]ed to the
/// engine. Shared by the reactor and the blocking path so their
/// protocol behaviour cannot diverge.
pub(crate) fn intercept(cmd: &str, cfg: &ServerConfig, current: Framing) -> Action {
    let (verb, rest) = match cmd.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (cmd, ""),
    };
    match verb {
        "quit" => Action::Close("ok bye".to_string()),
        "frames" => match rest {
            "" => Action::Reply(format!("ok frames={}", current.name())),
            "binary" => Action::Switch(Framing::Binary, "ok frames=binary".to_string()),
            "line" => Action::Switch(Framing::Line, "ok frames=line".to_string()),
            other => Action::Reply(format!("err proto unknown framing `{other}`")),
        },
        "replication" => Action::Status,
        "replicate" => {
            let mut parts = rest.split_whitespace();
            match (
                parts.next().and_then(|s| s.parse::<u64>().ok()),
                parts.next().and_then(|s| s.parse::<u64>().ok()),
                parts.next(),
            ) {
                (Some(te), Some(de), None) => Action::Replicate((te, de)),
                _ => {
                    Action::Reply("err proto usage: replicate <tcs-epoch> <data-epoch>".to_string())
                }
            }
        }
        "assert" | "retract" | "compl" if cfg.read_only => Action::Reply(
            "err readonly this replica serves reads only; send writes to the primary".to_string(),
        ),
        _ => Action::Dispatch,
    }
}

/// Renders the `replication` status line for this node's role.
pub(crate) fn replication_status(engine: &Engine, cfg: &ServerConfig) -> String {
    let (te, de) = engine.epochs();
    match &cfg.replica_status {
        Some(status) => {
            let (pte, pde) = status.primary_epochs();
            let lag = (pte + pde).saturating_sub(te + de);
            format!(
                "ok role=replica connected={} primary_tcs={pte} primary_data={pde} \
                 tcs={te} data={de} lag={lag}",
                status.is_connected()
            )
        }
        None => format!(
            "ok role=primary durable={} tcs={te} data={de} subscribers={}",
            engine.is_durable(),
            engine.replication_hub().subscribers()
        ),
    }
}

/// Exponential backoff policy for failed `accept` calls.
///
/// `accept` fails persistently under descriptor exhaustion (`EMFILE` /
/// `ENFILE`): the pending connection stays queued, so retrying
/// immediately fails again and the old `continue`-on-error loop spins a
/// core at 100% while serving nothing. The policy is pure (no clock, no
/// sleeping) so it can be unit-tested exactly: delays double from
/// [`AcceptBackoff::START`] to [`AcceptBackoff::CAP`], and one
/// successful accept resets the ladder.
#[derive(Debug)]
pub(crate) struct AcceptBackoff {
    next: Duration,
}

impl AcceptBackoff {
    /// Delay after the first error in a streak.
    pub(crate) const START: Duration = Duration::from_millis(10);
    /// Largest delay the ladder reaches.
    pub(crate) const CAP: Duration = Duration::from_secs(1);

    /// A fresh ladder, starting at [`AcceptBackoff::START`].
    pub(crate) fn new() -> AcceptBackoff {
        AcceptBackoff { next: Self::START }
    }

    /// Reports one failed accept; returns how long to back off before
    /// retrying.
    pub(crate) fn on_error(&mut self) -> Duration {
        let delay = self.next;
        self.next = (self.next * 2).min(Self::CAP);
        delay
    }

    /// Reports one successful accept; resets the ladder.
    pub(crate) fn on_success(&mut self) {
        self.next = Self::START;
    }
}

/// A running server front end sharing one [`Engine`].
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Kept so shutdown can flush the engine's durability layer after
    /// the last in-flight request has finished.
    engine: Arc<Engine>,
    /// The reactor's poller, when running the event-loop front end;
    /// `stop` wakes the loop through it. The blocking front end has no
    /// poller and is unblocked with a throwaway connection instead.
    poller: Option<Arc<Poller>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7171`, or port `0` for an ephemeral
    /// port) and starts the event-loop front end with `workers` request
    /// workers: connections are multiplexed on one reactor thread,
    /// requests may be pipelined, and binary framing can be negotiated.
    pub fn start(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<Server> {
        Server::start_with(
            engine,
            addr,
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
    }

    /// [`Server::start`] with full [`ServerConfig`] control (read-only
    /// replicas, replication status reporting).
    pub fn start_with(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let poller = Arc::new(Poller::new()?);
        let loop_stop = Arc::clone(&stop);
        let loop_engine = Arc::clone(&engine);
        let loop_poller = Arc::clone(&poller);
        let accept_thread = std::thread::Builder::new()
            .name("magik-reactor".to_string())
            .spawn(move || {
                crate::event_loop::run(listener, loop_poller, loop_engine, cfg, loop_stop);
            })?;
        Ok(Server {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            engine,
            poller: Some(poller),
        })
    }

    /// Starts the legacy blocking front end: one accept loop hands each
    /// connection to a worker from a fixed pool, and the worker owns the
    /// connection for its lifetime (connections beyond the pool queue
    /// until a worker frees up). No pipelining, no binary framing. Kept
    /// as the A15 saturation baseline.
    pub fn start_blocking(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_engine = Arc::clone(&engine);
        let cfg = Arc::new(ServerConfig {
            workers,
            ..ServerConfig::default()
        });
        let accept_thread = std::thread::Builder::new()
            .name("magik-accept".to_string())
            .spawn(move || {
                let pool = ThreadPool::new(workers);
                let mut backoff = AcceptBackoff::new();
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(stream) => {
                            backoff.on_success();
                            stream
                        }
                        Err(_) => {
                            // Persistent failures (EMFILE/ENFILE) fail
                            // again immediately — back off instead of
                            // spinning the accept thread at 100%.
                            accept_engine.metrics().record_accept_error();
                            std::thread::sleep(backoff.on_error());
                            continue;
                        }
                    };
                    let engine = Arc::clone(&accept_engine);
                    let stop = Arc::clone(&stop_flag);
                    let cfg = Arc::clone(&cfg);
                    pool.execute(move || {
                        let _ = serve_connection(stream, &engine, &stop, &cfg);
                    });
                }
                // `pool` drops here: all in-flight connections finish.
            })?;
        Ok(Server {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            engine,
            poller: None,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the server: no new connections are accepted, idle
    /// connections are closed, and in-flight requests finish before
    /// their workers exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already stopped
        }
        match &self.poller {
            // The reactor blocks in `Poller::wait`; the waker interrupts
            // it from here.
            Some(poller) => {
                let _ = poller.wake();
            }
            // Unblock the blocking accept loop with a throwaway
            // connection. Under a wildcard bind `local_addr` is the
            // unspecified address (`0.0.0.0` / `::`), which is not
            // connectable everywhere — rewrite it to the loopback of the
            // same family, which always reaches a listener bound to the
            // wildcard.
            None => {
                let ip = if self.local_addr.ip().is_unspecified() {
                    match self.local_addr {
                        SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                        SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
                    }
                } else {
                    self.local_addr.ip()
                };
                let _ = TcpStream::connect(SocketAddr::new(ip, self.local_addr.port()));
            }
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Every in-flight request has finished (the accept thread joins
        // its worker pool), so the engine state is final: flush the WAL
        // and write the shutdown checkpoint. A clean stop therefore
        // leaves zero records for the next open to replay. Failures are
        // swallowed — shutdown runs in Drop — but the WAL already holds
        // every acknowledged mutation, so nothing is lost either way.
        let _ = self.engine.shutdown_durability();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What [`read_bounded_line`] found.
enum LineRead {
    /// A line is complete in the caller's buffer (newline stripped).
    Line,
    /// Clean end of stream with no pending bytes.
    Eof,
    /// The line exceeded the byte cap before its newline arrived.
    TooLong,
}

/// Reads one `\n`-terminated line into `buf` (newline excluded), refusing
/// to buffer more than `max` bytes of it. Timeout errors from the
/// underlying read propagate with the partial line preserved in `buf`, so
/// the caller can poll its stop flag and resume. An unterminated final
/// line before EOF is returned as a [`LineRead::Line`].
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    loop {
        let (consumed, done) = {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                return Ok(if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                });
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) if buf.len() + pos > max => (pos + 1, Some(LineRead::TooLong)),
                Some(pos) => {
                    buf.extend_from_slice(&available[..pos]);
                    (pos + 1, Some(LineRead::Line))
                }
                None if buf.len() + available.len() > max => {
                    (available.len(), Some(LineRead::TooLong))
                }
                None => {
                    buf.extend_from_slice(available);
                    (available.len(), None)
                }
            }
        };
        reader.consume(consumed);
        if let Some(result) = done {
            return Ok(result);
        }
    }
}

/// Writes all of `buf`, tolerating slow-but-draining peers: each
/// [`WRITE_DEADLINE`] window must transfer at least one byte (the socket
/// carries a write timeout), or the peer is declared a non-reader and
/// the write fails with `TimedOut`. Checks `stop` between windows so a
/// server shutdown is not held up by a stalled peer.
fn write_all_deadline(
    stream: &mut TcpStream,
    mut buf: &[u8],
    stop: &AtomicBool,
) -> std::io::Result<()> {
    while !buf.is_empty() {
        if stop.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                ErrorKind::Interrupted,
                "server stopping",
            ));
        }
        match stream.write(buf) {
            Ok(0) => return Err(ErrorKind::WriteZero.into()),
            Ok(n) => buf = &buf[n..],
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // A full deadline window passed with zero bytes moved:
                // the peer has stopped draining replies.
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "peer stopped draining replies",
                ));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes one reply line under the write deadline.
fn write_reply(writer: &mut TcpStream, reply: &str, stop: &AtomicBool) -> std::io::Result<()> {
    let mut framed = Vec::with_capacity(reply.len() + 1);
    framed.extend_from_slice(reply.as_bytes());
    framed.push(b'\n');
    write_all_deadline(writer, &framed, stop)
}

/// Serves one connection on the blocking path: read request lines, write
/// response lines, until `quit`, EOF, server shutdown, an oversized
/// line, or an I/O error.
///
/// Reads use a short timeout so an idle connection notices `stop`
/// instead of pinning its worker in a blocking read forever; a partially
/// received line survives the poll and is completed on a later
/// iteration. Writes run under [`WRITE_DEADLINE`] so a non-reading peer
/// is dropped rather than pinning the worker (see
/// [`write_all_deadline`]). Request lines are capped at
/// [`MAX_LINE_BYTES`] — past the cap the handler replies `err line too
/// long` and drops the connection, so a client streaming an endless
/// unterminated line cannot grow server memory.
fn serve_connection(
    stream: TcpStream,
    engine: &Arc<Engine>,
    stop: &AtomicBool,
    cfg: &ServerConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(STOP_POLL_INTERVAL))?;
    stream.set_write_timeout(Some(WRITE_DEADLINE))?;
    // Replies are single small lines; without TCP_NODELAY every round
    // trip stalls on Nagle + delayed-ACK (~40 ms).
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    loop {
        match read_bounded_line(&mut reader, &mut line, MAX_LINE_BYTES) {
            Ok(LineRead::Eof) => return Ok(()),
            Ok(LineRead::Line) => {}
            Ok(LineRead::TooLong) => {
                write_reply(&mut writer, "err line too long", stop)?;
                return Ok(());
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let trimmed = String::from_utf8_lossy(&line);
        let trimmed = trimmed.trim();
        if !trimmed.is_empty() {
            match intercept(trimmed, cfg, Framing::Line) {
                Action::Reply(reply) => write_reply(&mut writer, &reply, stop)?,
                // Requests execute strictly in arrival order here, so
                // "at its execution turn" is simply now.
                Action::Status => {
                    write_reply(&mut writer, &replication_status(engine, cfg), stop)?;
                }
                Action::Dispatch => {
                    let reply = engine.handle(trimmed);
                    write_reply(&mut writer, &reply, stop)?;
                }
                Action::Close(reply) => {
                    write_reply(&mut writer, &reply, stop)?;
                    return Ok(());
                }
                Action::Switch(..) => write_reply(
                    &mut writer,
                    "err proto binary framing requires the event-loop front end",
                    stop,
                )?,
                Action::Replicate(from) => {
                    // The streamer writes the handshake itself and owns
                    // the socket from here; drop the read timeout so its
                    // blocking writes are governed only by the streamer's
                    // own deadlines.
                    drop(writer);
                    let stream = reader.into_inner();
                    stream.set_read_timeout(None)?;
                    return replication::serve_replica(stream, engine, stop, from);
                }
            }
        }
        line.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_doubles_to_the_cap() {
        let mut b = AcceptBackoff::new();
        let mut expected = AcceptBackoff::START;
        for _ in 0..12 {
            let delay = b.on_error();
            assert_eq!(delay, expected);
            expected = (expected * 2).min(AcceptBackoff::CAP);
        }
        // Long past doubling range: pinned at the cap.
        assert_eq!(b.on_error(), AcceptBackoff::CAP);
        assert_eq!(b.on_error(), AcceptBackoff::CAP);
    }

    #[test]
    fn accept_backoff_resets_after_a_success() {
        let mut b = AcceptBackoff::new();
        for _ in 0..20 {
            b.on_error();
        }
        assert_eq!(b.on_error(), AcceptBackoff::CAP);
        b.on_success();
        assert_eq!(b.on_error(), AcceptBackoff::START);
        assert_eq!(b.on_error(), AcceptBackoff::START * 2);
    }

    #[test]
    fn intercept_classifies_connection_commands() {
        let engine = Engine::new();
        let cfg = ServerConfig::default();
        assert!(matches!(
            intercept("quit", &cfg, Framing::Line),
            Action::Close(r) if r == "ok bye"
        ));
        assert!(matches!(
            intercept("frames binary", &cfg, Framing::Line),
            Action::Switch(Framing::Binary, r) if r == "ok frames=binary"
        ));
        assert!(matches!(
            intercept("frames", &cfg, Framing::Binary),
            Action::Reply(r) if r == "ok frames=binary"
        ));
        assert!(matches!(
            intercept("replicate 3 7", &cfg, Framing::Line),
            Action::Replicate((3, 7))
        ));
        assert!(matches!(
            intercept("replicate x", &cfg, Framing::Line),
            Action::Reply(r) if r.starts_with("err proto usage")
        ));
        assert!(matches!(
            intercept("check q() :- p().", &cfg, Framing::Line),
            Action::Dispatch
        ));
        assert!(matches!(
            intercept("replication", &cfg, Framing::Line),
            Action::Status
        ));
        let status = replication_status(&engine, &cfg);
        assert!(
            status.starts_with("ok role=primary durable=false tcs=0 data=0"),
            "unexpected status: {status}"
        );
    }

    #[test]
    fn intercept_enforces_read_only() {
        let engine = Engine::new();
        let cfg = ServerConfig {
            read_only: true,
            replica_status: Some(Arc::new(ReplicaStatus::new())),
            ..ServerConfig::default()
        };
        for cmd in ["assert p(a).", "retract p(a).", "compl p(X) ; true."] {
            assert!(
                matches!(
                    intercept(cmd, &cfg, Framing::Line),
                    Action::Reply(r) if r.starts_with("err readonly")
                ),
                "{cmd} should be refused"
            );
        }
        // Reads still dispatch.
        assert!(matches!(
            intercept("check q() :- p().", &cfg, Framing::Line),
            Action::Dispatch
        ));
        assert!(matches!(
            intercept("replication", &cfg, Framing::Line),
            Action::Status
        ));
        let status = replication_status(&engine, &cfg);
        assert!(
            status.starts_with("ok role=replica connected=false"),
            "unexpected status: {status}"
        );
    }
}
