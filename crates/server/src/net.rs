//! The line-oriented TCP front end.
//!
//! One accept loop hands each connection to a worker from a fixed
//! [`ThreadPool`] (the shared `magik-runtime` pool: panic-isolated
//! workers, so a handler panic never kills the server); the worker owns
//! the connection for its lifetime (thread-per-connection, bounded by the
//! pool size — connections beyond the pool queue until a worker frees
//! up). This pool is distinct from the engine's compute [`Executor`]
//! (crate docs explain why). Requests are single lines, responses are
//! single lines; see `PROTOCOL.md` for the grammar.
//!
//! [`Executor`]: magik_exec::Executor

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often an idle connection handler wakes up to check the stop flag.
const STOP_POLL_INTERVAL: Duration = Duration::from_millis(50);

use magik_runtime::ThreadPool;

use crate::engine::Engine;

/// A running server: an accept loop plus a worker pool, all sharing one
/// [`Engine`].
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7171`, or port `0` for an ephemeral
    /// port) and starts accepting connections on a background thread,
    /// serving requests against `engine` with `workers` worker threads.
    pub fn start(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("magik-accept".to_string())
            .spawn(move || {
                let pool = ThreadPool::new(workers);
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let engine = Arc::clone(&engine);
                    let stop = Arc::clone(&stop_flag);
                    pool.execute(move || {
                        let _ = serve_connection(stream, &engine, &stop);
                    });
                }
                // `pool` drops here: all in-flight connections finish.
            })?;
        Ok(Server {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the server: no new connections are accepted, idle
    /// connections are closed (handlers poll the stop flag between
    /// reads), and in-flight requests finish before their workers exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already stopped
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection: read request lines, write response lines, until
/// `quit`, EOF, server shutdown, or an I/O error.
///
/// Reads use a short timeout so an idle connection notices `stop` instead
/// of pinning its worker in a blocking read forever. `read_line` appends
/// any bytes it read before timing out, so a partially received line
/// survives the poll and is completed on a later iteration.
fn serve_connection(stream: TcpStream, engine: &Engine, stop: &AtomicBool) -> std::io::Result<()> {
    stream.set_read_timeout(Some(STOP_POLL_INTERVAL))?;
    // Replies are single small lines; without TCP_NODELAY every round
    // trip stalls on Nagle + delayed-ACK (~40 ms).
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            if trimmed == "quit" {
                writer.write_all(b"ok bye\n")?;
                return Ok(());
            }
            let reply = engine.handle(trimmed);
            writer.write_all(reply.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        line.clear();
    }
}
