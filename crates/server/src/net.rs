//! The line-oriented TCP front end.
//!
//! One accept loop hands each connection to a worker from a fixed
//! [`ThreadPool`] (the shared `magik-runtime` pool: panic-isolated
//! workers, so a handler panic never kills the server); the worker owns
//! the connection for its lifetime (thread-per-connection, bounded by the
//! pool size — connections beyond the pool queue until a worker frees
//! up). This pool is distinct from the engine's compute [`Executor`]
//! (crate docs explain why). Requests are single lines, responses are
//! single lines; see `PROTOCOL.md` for the grammar.
//!
//! [`Executor`]: magik_exec::Executor

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often an idle connection handler wakes up to check the stop flag.
const STOP_POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The most bytes one request line may hold (newline excluded). A client
/// streaming bytes with no newline would otherwise grow the line buffer
/// without bound; at the cap the server replies `err line too long` and
/// drops the connection (see `PROTOCOL.md`).
const MAX_LINE_BYTES: usize = 1 << 20;

use magik_runtime::ThreadPool;

use crate::engine::Engine;

/// A running server: an accept loop plus a worker pool, all sharing one
/// [`Engine`].
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Kept so shutdown can flush the engine's durability layer after
    /// the last in-flight request has finished.
    engine: Arc<Engine>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7171`, or port `0` for an ephemeral
    /// port) and starts accepting connections on a background thread,
    /// serving requests against `engine` with `workers` worker threads.
    pub fn start(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_engine = Arc::clone(&engine);
        let accept_thread = std::thread::Builder::new()
            .name("magik-accept".to_string())
            .spawn(move || {
                let pool = ThreadPool::new(workers);
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let engine = Arc::clone(&accept_engine);
                    let stop = Arc::clone(&stop_flag);
                    pool.execute(move || {
                        let _ = serve_connection(stream, &engine, &stop);
                    });
                }
                // `pool` drops here: all in-flight connections finish.
            })?;
        Ok(Server {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            engine,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the server: no new connections are accepted, idle
    /// connections are closed (handlers poll the stop flag between
    /// reads), and in-flight requests finish before their workers exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already stopped
        }
        // Unblock the accept loop with a throwaway connection. Under a
        // wildcard bind `local_addr` is the unspecified address
        // (`0.0.0.0` / `::`), which is not connectable everywhere —
        // rewrite it to the loopback of the same family, which always
        // reaches a listener bound to the wildcard.
        let ip = if self.local_addr.ip().is_unspecified() {
            match self.local_addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            }
        } else {
            self.local_addr.ip()
        };
        let _ = TcpStream::connect(SocketAddr::new(ip, self.local_addr.port()));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Every in-flight request has finished (the accept thread joins
        // its worker pool), so the engine state is final: flush the WAL
        // and write the shutdown checkpoint. A clean stop therefore
        // leaves zero records for the next open to replay. Failures are
        // swallowed — shutdown runs in Drop — but the WAL already holds
        // every acknowledged mutation, so nothing is lost either way.
        let _ = self.engine.shutdown_durability();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What [`read_bounded_line`] found.
enum LineRead {
    /// A line is complete in the caller's buffer (newline stripped).
    Line,
    /// Clean end of stream with no pending bytes.
    Eof,
    /// The line exceeded the byte cap before its newline arrived.
    TooLong,
}

/// Reads one `\n`-terminated line into `buf` (newline excluded), refusing
/// to buffer more than `max` bytes of it. Timeout errors from the
/// underlying read propagate with the partial line preserved in `buf`, so
/// the caller can poll its stop flag and resume. An unterminated final
/// line before EOF is returned as a [`LineRead::Line`].
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    loop {
        let (consumed, done) = {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                return Ok(if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                });
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) if buf.len() + pos > max => (pos + 1, Some(LineRead::TooLong)),
                Some(pos) => {
                    buf.extend_from_slice(&available[..pos]);
                    (pos + 1, Some(LineRead::Line))
                }
                None if buf.len() + available.len() > max => {
                    (available.len(), Some(LineRead::TooLong))
                }
                None => {
                    buf.extend_from_slice(available);
                    (available.len(), None)
                }
            }
        };
        reader.consume(consumed);
        if let Some(result) = done {
            return Ok(result);
        }
    }
}

/// Serves one connection: read request lines, write response lines, until
/// `quit`, EOF, server shutdown, an oversized line, or an I/O error.
///
/// Reads use a short timeout so an idle connection notices `stop` instead
/// of pinning its worker in a blocking read forever; a partially received
/// line survives the poll and is completed on a later iteration. Request
/// lines are capped at [`MAX_LINE_BYTES`] — past the cap the handler
/// replies `err line too long` and drops the connection, so a client
/// streaming an endless unterminated line cannot grow server memory.
fn serve_connection(stream: TcpStream, engine: &Engine, stop: &AtomicBool) -> std::io::Result<()> {
    stream.set_read_timeout(Some(STOP_POLL_INTERVAL))?;
    // Replies are single small lines; without TCP_NODELAY every round
    // trip stalls on Nagle + delayed-ACK (~40 ms).
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    loop {
        match read_bounded_line(&mut reader, &mut line, MAX_LINE_BYTES) {
            Ok(LineRead::Eof) => return Ok(()),
            Ok(LineRead::Line) => {}
            Ok(LineRead::TooLong) => {
                writer.write_all(b"err line too long\n")?;
                return Ok(());
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let trimmed = String::from_utf8_lossy(&line);
        let trimmed = trimmed.trim();
        if !trimmed.is_empty() {
            if trimmed == "quit" {
                writer.write_all(b"ok bye\n")?;
                return Ok(());
            }
            let reply = engine.handle(trimmed);
            writer.write_all(reply.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        line.clear();
    }
}
