//! Trusted certificate checker for completeness verdicts.
//!
//! The reasoning engine (`magik-completeness`) is a few thousand lines of
//! compiled query plans, operator caches and incremental maintenance. This
//! crate is the other half of the untrusted-engine/trusted-checker split:
//! it validates the engine's verdicts **by direct definition-checking**,
//! sharing only the data model (`magik-relalg` atoms, facts, freezing)
//! with the engine and none of its reasoning code. Where the engine runs
//! compiled register plans, the checker runs a ~30-line naive backtracking
//! matcher over a `BTreeSet<Fact>` — slow, obvious, and auditable.
//!
//! A [`Certificate`] witnesses one verdict of Theorem 3 of [Corman, Nutt,
//! Savković]: `C ⊨ Compl(Q)` iff `θū ∈ Q(T_C(D_Q))`, where `D_Q` is the
//! canonical (frozen) database of `Q` and `T_C` keeps exactly the facts
//! guaranteed by some statement of `C`.
//!
//! * [`CompleteCert`] carries the witnessing assignment θ together with,
//!   for every body atom, the statement and grounding that put its frozen
//!   image into `T_C(D_Q)` — checked by [`check_complete`].
//! * [`IncompleteCert`] carries the counterexample pair: the canonical
//!   database as ideal state and the guaranteed subset as available state,
//!   plus the lost answer — checked by [`check_incomplete`], which
//!   re-derives `T_C(D_Q)` naively to confirm the available state is not
//!   undersold.
//! * [`RepairCert`] carries a minimal repair: statement additions that
//!   flip the verdict to complete, with a per-element incompleteness
//!   certificate proving that dropping any one addition flips it back.
//!
//! Datalog derivation trees ([`DerivationNode`]) are checked by
//! [`check_derivation`] against positive rules and an EDB.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;

use magik_relalg::{freeze_atom, freeze_term, Atom, Cst, Fact, Query, Term, Var};

/// A ground assignment, one `(variable, constant)` pair per bound
/// variable. Order is irrelevant to checking; producers sort by variable
/// for determinism.
pub type Binding = Vec<(Var, Cst)>;

/// The checker's own view of a TC statement `Compl(R(s̄); G)`: a head atom
/// and a condition. Mirrors the engine's `TcStatement` structurally so
/// certificates can be checked without importing the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertStatement {
    /// The statement head `R(s̄)` — the pattern of facts it guarantees.
    pub head: Atom,
    /// The condition `G` (empty means unconditional).
    pub condition: Vec<Atom>,
}

/// Why one frozen body atom is in `T_C(D_Q)`: the statement that
/// guarantees it and the grounding that matches statement head and
/// condition inside the canonical database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactDerivation {
    /// The guaranteed fact (the θ-image of the body atom).
    pub fact: Fact,
    /// Index of the guaranteeing statement.
    pub statement: usize,
    /// The grounding σ of the statement's variables.
    pub binding: Binding,
}

/// Witness for a *complete* verdict: `θū ∈ Q(T_C(D_Q))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompleteCert {
    /// The satisfying assignment θ of the query's variables.
    pub theta: Binding,
    /// One derivation per body atom, in body order.
    pub derivations: Vec<FactDerivation>,
}

/// Witness for an *incomplete* verdict: a concrete incomplete database
/// (ideal = `D_Q`, available = the certified superset of `T_C(D_Q)`)
/// that satisfies all statements yet loses `target` as an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncompleteCert {
    /// The available state — must contain every fact of `T_C(D_Q)` while
    /// staying inside the ideal state `D_Q`.
    pub available: Vec<Fact>,
    /// The lost answer: in `Q(D_Q)` but not in `Q(available)`.
    pub target: Vec<Cst>,
}

/// A minimal repair for an incomplete verdict: unconditional statement
/// heads whose addition makes the TCS complete for the query, minimal in
/// the sense that dropping any one element flips the verdict back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairCert {
    /// The added statement heads (each read as `Compl(a; true)`).
    pub additions: Vec<Atom>,
    /// Completeness witness for statements ∪ additions.
    pub complete: CompleteCert,
    /// For each addition, an incompleteness witness for statements ∪
    /// (additions minus that element) — the 1-minimality proof.
    pub minimality: Vec<IncompleteCert>,
}

/// A checkable witness for one completeness verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// The TCS entails completeness of the query.
    Complete(CompleteCert),
    /// It does not; here is a counterexample, and optionally a repair.
    Incomplete {
        /// The canonical counterexample.
        counterexample: IncompleteCert,
        /// A minimal repair suggestion, when one was computed.
        repair: Option<RepairCert>,
    },
}

/// Why a certificate failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// θ maps a head variable somewhere other than its frozen image.
    ThetaHeadMismatch(Var),
    /// A variable needed by the check is unbound in the given binding.
    Unbound(Var),
    /// The number of derivations differs from the number of body atoms.
    DerivationCount {
        /// Body atoms in the query.
        expected: usize,
        /// Derivations in the certificate.
        got: usize,
    },
    /// A derivation's fact is not the θ-image of its body atom.
    DerivationFactMismatch(usize),
    /// A derivation names a statement index out of range.
    StatementIndex(usize),
    /// σ applied to the statement head does not give the derived fact.
    StatementHeadMismatch(usize),
    /// The σ-image of the statement head is not in the ideal state.
    HeadNotInIdeal(usize),
    /// A σ-image of a condition atom is not in the ideal state.
    ConditionNotInIdeal(usize),
    /// The available state contains a fact outside the ideal state.
    AvailableNotInIdeal(Fact),
    /// A fact guaranteed by some statement is missing from the available
    /// state — the counterexample undersells `T_C(D_Q)`.
    GuaranteedFactMissing(Fact),
    /// The lost answer is not an answer over the ideal state.
    TargetNotIdealAnswer,
    /// The lost answer is still an answer over the available state.
    TargetStillAnswered,
    /// A repair certificate with no additions.
    EmptyRepair,
    /// The minimality list length differs from the additions length.
    MinimalityCount {
        /// Number of additions.
        expected: usize,
        /// Number of minimality witnesses.
        got: usize,
    },
    /// The repair's completeness witness failed.
    RepairNotComplete(Box<CertError>),
    /// The minimality witness for one addition failed: the repair is not
    /// minimal (or the witness is wrong).
    RepairNotMinimal(usize, Box<CertError>),
    /// A leaf node's fact is not in the EDB.
    NotAnEdbFact(Fact),
    /// A leaf (EDB) node has children.
    LeafHasChildren,
    /// A derivation node names a rule index out of range.
    RuleIndex(usize),
    /// The binding applied to the rule head does not give the node's fact.
    RuleHeadMismatch,
    /// The number of children differs from the rule's body length.
    BodyLenMismatch {
        /// Body atoms in the rule.
        expected: usize,
        /// Children of the node.
        got: usize,
    },
    /// A child's fact is not the binding's image of its body atom.
    ChildFactMismatch(usize),
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::ThetaHeadMismatch(v) => {
                write!(
                    f,
                    "θ maps head variable #{} off its frozen image",
                    v.index()
                )
            }
            CertError::Unbound(v) => write!(f, "variable #{} unbound", v.index()),
            CertError::DerivationCount { expected, got } => {
                write!(f, "expected {expected} derivations, got {got}")
            }
            CertError::DerivationFactMismatch(i) => {
                write!(f, "derivation {i} does not match θ(body atom {i})")
            }
            CertError::StatementIndex(i) => write!(f, "statement index {i} out of range"),
            CertError::StatementHeadMismatch(i) => {
                write!(
                    f,
                    "derivation {i}: σ(statement head) is not the derived fact"
                )
            }
            CertError::HeadNotInIdeal(i) => {
                write!(
                    f,
                    "derivation {i}: σ(statement head) not in the ideal state"
                )
            }
            CertError::ConditionNotInIdeal(i) => {
                write!(f, "derivation {i}: σ(condition) not in the ideal state")
            }
            CertError::AvailableNotInIdeal(_) => {
                write!(f, "available state is not a subset of the ideal state")
            }
            CertError::GuaranteedFactMissing(_) => {
                write!(
                    f,
                    "available state misses a fact guaranteed by the statements"
                )
            }
            CertError::TargetNotIdealAnswer => {
                write!(f, "lost answer is not an answer over the ideal state")
            }
            CertError::TargetStillAnswered => {
                write!(f, "lost answer is still answered over the available state")
            }
            CertError::EmptyRepair => write!(f, "repair has no additions"),
            CertError::MinimalityCount { expected, got } => {
                write!(f, "expected {expected} minimality witnesses, got {got}")
            }
            CertError::RepairNotComplete(e) => write!(f, "repair incomplete: {e}"),
            CertError::RepairNotMinimal(i, e) => {
                write!(f, "dropping addition {i} did not flip the verdict: {e}")
            }
            CertError::NotAnEdbFact(_) => write!(f, "leaf fact is not in the EDB"),
            CertError::LeafHasChildren => write!(f, "EDB leaf has children"),
            CertError::RuleIndex(i) => write!(f, "rule index {i} out of range"),
            CertError::RuleHeadMismatch => write!(f, "binding(rule head) is not the node's fact"),
            CertError::BodyLenMismatch { expected, got } => {
                write!(
                    f,
                    "rule body has {expected} atoms but node has {got} children"
                )
            }
            CertError::ChildFactMismatch(i) => {
                write!(
                    f,
                    "child {i} does not match the binding's image of body atom {i}"
                )
            }
        }
    }
}

impl std::error::Error for CertError {}

fn lookup(b: &Binding, v: Var) -> Option<Cst> {
    b.iter().find(|&&(bv, _)| bv == v).map(|&(_, c)| c)
}

fn apply_term(b: &Binding, t: Term) -> Result<Cst, CertError> {
    match t {
        Term::Cst(c) => Ok(c),
        Term::Var(v) => lookup(b, v).ok_or(CertError::Unbound(v)),
    }
}

fn apply_atom(b: &Binding, a: &Atom) -> Result<Fact, CertError> {
    let args = a
        .args
        .iter()
        .map(|&t| apply_term(b, t))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Fact::new(a.pred, args))
}

/// The canonical database `D_Q` of a query, as a plain fact set.
fn ideal_state(q: &Query) -> BTreeSet<Fact> {
    q.body.iter().map(freeze_atom).collect()
}

/// Tries to match `atom` against `fact` under the partial binding,
/// extending it on success. Returns how many pairs were pushed, or `None`
/// (with the binding restored) on mismatch.
fn try_match(atom: &Atom, fact: &Fact, binding: &mut Binding) -> Option<usize> {
    if atom.pred != fact.pred || atom.arity() != fact.arity() {
        return None;
    }
    let mut pushed = 0;
    for (&t, &c) in atom.args.iter().zip(&fact.args) {
        let ok = match t {
            Term::Cst(tc) => tc == c,
            Term::Var(v) => match lookup(binding, v) {
                Some(bound) => bound == c,
                None => {
                    binding.push((v, c));
                    pushed += 1;
                    true
                }
            },
        };
        if !ok {
            binding.truncate(binding.len() - pushed);
            return None;
        }
    }
    Some(pushed)
}

/// Naive backtracking search: calls `visit` for every homomorphism of
/// `pattern` into `db` extending `binding`; stops early (returning `true`)
/// when `visit` returns `true`.
fn for_each_hom(
    pattern: &[Atom],
    db: &BTreeSet<Fact>,
    binding: &mut Binding,
    visit: &mut dyn FnMut(&Binding) -> bool,
) -> bool {
    match pattern.split_first() {
        None => visit(binding),
        Some((atom, rest)) => {
            for fact in db.iter().filter(|f| f.pred == atom.pred) {
                if let Some(pushed) = try_match(atom, fact, binding) {
                    let stop = for_each_hom(rest, db, binding, visit);
                    binding.truncate(binding.len() - pushed);
                    if stop {
                        return true;
                    }
                }
            }
            false
        }
    }
}

/// Seeds a binding from a head/target correspondence, exactly like the
/// engine's `has_answer`: head constants must equal the target, repeated
/// head variables must agree. `None` means the target cannot match.
fn seed_from_target(head: &[Term], target: &[Cst]) -> Option<Binding> {
    if head.len() != target.len() {
        return None;
    }
    let mut seed = Binding::new();
    for (&t, &c) in head.iter().zip(target) {
        match t {
            Term::Cst(tc) => {
                if tc != c {
                    return None;
                }
            }
            Term::Var(v) => match lookup(&seed, v) {
                Some(bound) => {
                    if bound != c {
                        return None;
                    }
                }
                None => seed.push((v, c)),
            },
        }
    }
    Some(seed)
}

/// Decides `target ∈ Q(db)` by naive search (generalized queries: head
/// variables missing from the body are bound by the target).
fn is_answer(q: &Query, db: &BTreeSet<Fact>, target: &[Cst]) -> bool {
    match seed_from_target(&q.head, target) {
        None => false,
        Some(mut seed) => for_each_hom(&q.body, db, &mut seed, &mut |_| true),
    }
}

/// Validates a completeness witness against the definition: θ maps the
/// query head onto its frozen image, and every θ-image of a body atom is
/// guaranteed — via its recorded statement and grounding — to be in
/// `T_C(D_Q)`.
pub fn check_complete(
    q: &Query,
    statements: &[CertStatement],
    cert: &CompleteCert,
) -> Result<(), CertError> {
    let ideal = ideal_state(q);
    // θ(ū) must be the frozen head tuple.
    for &t in &q.head {
        if let Term::Var(v) = t {
            match lookup(&cert.theta, v) {
                None => return Err(CertError::Unbound(v)),
                Some(c) if c != freeze_term(t) => return Err(CertError::ThetaHeadMismatch(v)),
                Some(_) => {}
            }
        }
    }
    if cert.derivations.len() != q.body.len() {
        return Err(CertError::DerivationCount {
            expected: q.body.len(),
            got: cert.derivations.len(),
        });
    }
    for (i, (atom, d)) in q.body.iter().zip(&cert.derivations).enumerate() {
        // The derived fact is the θ-image of the body atom…
        if apply_atom(&cert.theta, atom)? != d.fact {
            return Err(CertError::DerivationFactMismatch(i));
        }
        // …and the named statement, under the recorded grounding σ,
        // guarantees it: σ(head) = fact, σ(head) ∈ D_Q, σ(G) ⊆ D_Q.
        let stmt = statements
            .get(d.statement)
            .ok_or(CertError::StatementIndex(d.statement))?;
        let head = apply_atom(&d.binding, &stmt.head)?;
        if head != d.fact {
            return Err(CertError::StatementHeadMismatch(i));
        }
        if !ideal.contains(&head) {
            return Err(CertError::HeadNotInIdeal(i));
        }
        for c in &stmt.condition {
            if !ideal.contains(&apply_atom(&d.binding, c)?) {
                return Err(CertError::ConditionNotInIdeal(i));
            }
        }
    }
    Ok(())
}

/// Validates an incompleteness witness against the definition: the
/// available state sits between `T_C(D_Q)` and `D_Q` (so it is a legal
/// state of a partial database satisfying all statements), yet the target
/// answer of the ideal state is lost over it.
pub fn check_incomplete(
    q: &Query,
    statements: &[CertStatement],
    cert: &IncompleteCert,
) -> Result<(), CertError> {
    let ideal = ideal_state(q);
    let available: BTreeSet<Fact> = cert.available.iter().cloned().collect();
    for f in &available {
        if !ideal.contains(f) {
            return Err(CertError::AvailableNotInIdeal(f.clone()));
        }
    }
    // available ⊇ T_C(D_Q): every guaranteed fact must be present. This
    // re-derives T_C naively — for each statement, enumerate all
    // homomorphisms of `head :: condition` into the ideal state.
    for stmt in statements {
        let mut pattern = Vec::with_capacity(1 + stmt.condition.len());
        pattern.push(stmt.head.clone());
        pattern.extend(stmt.condition.iter().cloned());
        let mut missing: Option<Fact> = None;
        for_each_hom(&pattern, &ideal, &mut Binding::new(), &mut |b| {
            match apply_atom(b, &stmt.head) {
                Ok(head) if available.contains(&head) => false,
                Ok(head) => {
                    missing = Some(head);
                    true
                }
                Err(_) => false, // unreachable: the hom grounds the head
            }
        });
        if let Some(fact) = missing {
            return Err(CertError::GuaranteedFactMissing(fact));
        }
    }
    if !is_answer(q, &ideal, &cert.target) {
        return Err(CertError::TargetNotIdealAnswer);
    }
    if is_answer(q, &available, &cert.target) {
        return Err(CertError::TargetStillAnswered);
    }
    Ok(())
}

fn with_additions(statements: &[CertStatement], additions: &[Atom]) -> Vec<CertStatement> {
    let mut out = statements.to_vec();
    out.extend(additions.iter().map(|a| CertStatement {
        head: a.clone(),
        condition: Vec::new(),
    }));
    out
}

/// Validates a repair: the additions flip the verdict to complete, and
/// dropping any single addition flips it back (1-minimality).
pub fn check_repair(
    q: &Query,
    statements: &[CertStatement],
    repair: &RepairCert,
) -> Result<(), CertError> {
    if repair.additions.is_empty() {
        return Err(CertError::EmptyRepair);
    }
    check_complete(
        q,
        &with_additions(statements, &repair.additions),
        &repair.complete,
    )
    .map_err(|e| CertError::RepairNotComplete(Box::new(e)))?;
    if repair.minimality.len() != repair.additions.len() {
        return Err(CertError::MinimalityCount {
            expected: repair.additions.len(),
            got: repair.minimality.len(),
        });
    }
    for (i, witness) in repair.minimality.iter().enumerate() {
        let mut reduced = repair.additions.clone();
        reduced.remove(i);
        check_incomplete(q, &with_additions(statements, &reduced), witness)
            .map_err(|e| CertError::RepairNotMinimal(i, Box::new(e)))?;
    }
    Ok(())
}

/// Validates a certificate of either polarity (including the attached
/// repair, when present).
pub fn check_certificate(
    q: &Query,
    statements: &[CertStatement],
    cert: &Certificate,
) -> Result<(), CertError> {
    match cert {
        Certificate::Complete(c) => check_complete(q, statements, c),
        Certificate::Incomplete {
            counterexample,
            repair,
        } => {
            check_incomplete(q, statements, counterexample)?;
            match repair {
                Some(r) => check_repair(q, statements, r),
                None => Ok(()),
            }
        }
    }
}

/// The checker's view of a positive Datalog rule `head ← body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRule {
    /// The rule head.
    pub head: Atom,
    /// The positive body atoms.
    pub body: Vec<Atom>,
}

/// One node of a derivation tree: how a fact was derived — from the EDB
/// (`rule: None`, no children) or by a rule application whose children
/// derive the body facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationNode {
    /// The derived fact.
    pub fact: Fact,
    /// The applied rule, or `None` for an EDB fact.
    pub rule: Option<usize>,
    /// The grounding of the rule's variables (empty for EDB facts).
    pub binding: Binding,
    /// One child per body atom, in body order (empty for EDB facts).
    pub children: Vec<DerivationNode>,
}

/// Validates a Datalog derivation tree bottom-up: leaves must be EDB
/// facts, inner nodes must be instances of their rule whose children
/// derive exactly the grounded body atoms.
pub fn check_derivation(
    node: &DerivationNode,
    rules: &[CertRule],
    edb: &BTreeSet<Fact>,
) -> Result<(), CertError> {
    match node.rule {
        None => {
            if !node.children.is_empty() {
                return Err(CertError::LeafHasChildren);
            }
            if !edb.contains(&node.fact) {
                return Err(CertError::NotAnEdbFact(node.fact.clone()));
            }
            Ok(())
        }
        Some(r) => {
            let rule = rules.get(r).ok_or(CertError::RuleIndex(r))?;
            if apply_atom(&node.binding, &rule.head)? != node.fact {
                return Err(CertError::RuleHeadMismatch);
            }
            if node.children.len() != rule.body.len() {
                return Err(CertError::BodyLenMismatch {
                    expected: rule.body.len(),
                    got: node.children.len(),
                });
            }
            for (i, (atom, child)) in rule.body.iter().zip(&node.children).enumerate() {
                if apply_atom(&node.binding, atom)? != child.fact {
                    return Err(CertError::ChildFactMismatch(i));
                }
                check_derivation(child, rules, edb)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magik_relalg::Vocabulary;

    /// The paper's running example, hand-reduced: `Compl(pupil(N,C,S);
    /// school(S,T,merano))` over `q(N) ← pupil(N,C,S), school(S,primary,merano)`
    /// plus an unconditional school statement.
    fn setup(v: &mut Vocabulary) -> (Query, Vec<CertStatement>) {
        let pupil = v.pred("pupil", 3);
        let school = v.pred("school", 3);
        let (n, c, s, t, d) = (v.var("N"), v.var("C"), v.var("S"), v.var("T"), v.var("D"));
        let (primary, merano) = (v.cst("primary"), v.cst("merano"));
        let q = Query::new(
            v.sym("q"),
            vec![Term::Var(n)],
            vec![
                Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                Atom::new(
                    school,
                    vec![Term::Var(s), Term::Cst(primary), Term::Cst(merano)],
                ),
            ],
        );
        let stmts = vec![
            CertStatement {
                head: Atom::new(school, vec![Term::Var(s), Term::Var(t), Term::Var(d)]),
                condition: vec![],
            },
            CertStatement {
                head: Atom::new(pupil, vec![Term::Var(n), Term::Var(c), Term::Var(s)]),
                condition: vec![Atom::new(
                    school,
                    vec![Term::Var(s), Term::Var(t), Term::Cst(merano)],
                )],
            },
        ];
        (q, stmts)
    }

    fn identity_theta(q: &Query) -> Binding {
        let mut theta = Binding::new();
        for a in &q.body {
            for var in a.vars() {
                if lookup(&theta, var).is_none() {
                    theta.push((var, Cst::Frozen(var)));
                }
            }
        }
        theta
    }

    #[test]
    fn hand_built_complete_cert_validates() {
        let mut v = Vocabulary::new();
        let (q, stmts) = setup(&mut v);
        let theta = identity_theta(&q);
        // Atom 0 (pupil) is guaranteed by statement 1; its condition
        // school(S,T,merano) matches the frozen body atom with T ↦ primary.
        // Atom 1 (school) is guaranteed by statement 0.
        let s = v.var("S");
        let t = v.var("T");
        let d = v.var("D");
        let derivations = vec![
            FactDerivation {
                fact: freeze_atom(&q.body[0]),
                statement: 1,
                binding: {
                    let mut b = identity_theta(&q);
                    b.push((t, v.cst("primary")));
                    b
                },
            },
            FactDerivation {
                fact: freeze_atom(&q.body[1]),
                statement: 0,
                binding: vec![
                    (s, Cst::Frozen(s)),
                    (t, v.cst("primary")),
                    (d, v.cst("merano")),
                ],
            },
        ];
        let cert = CompleteCert { theta, derivations };
        assert_eq!(check_complete(&q, &stmts, &cert), Ok(()));
        // Corrupting θ breaks it.
        let mut bad = cert.clone();
        bad.theta[0].1 = v.cst("primary");
        assert!(check_complete(&q, &stmts, &bad).is_err());
        // Pointing a derivation at the wrong statement breaks it.
        let mut bad = cert.clone();
        bad.derivations[0].statement = 0;
        assert!(check_complete(&q, &stmts, &bad).is_err());
        // Dropping the pupil statement breaks it.
        assert!(check_complete(&q, &stmts[..1], &cert).is_err());
    }

    #[test]
    fn hand_built_incomplete_cert_validates() {
        let mut v = Vocabulary::new();
        let (q, stmts) = setup(&mut v);
        // Without the school statement, only the pupil fact is guaranteed
        // (its condition matches inside D_Q); the school fact is lost.
        let weak = vec![stmts[1].clone()];
        let n = v.var("N");
        let cert = IncompleteCert {
            available: vec![freeze_atom(&q.body[0])],
            target: vec![Cst::Frozen(n)],
        };
        assert_eq!(check_incomplete(&q, &weak, &cert), Ok(()));
        // Against the full statement set the same witness is rejected:
        // the available state undersells T_C.
        assert!(matches!(
            check_incomplete(&q, &stmts, &cert),
            Err(CertError::GuaranteedFactMissing(_))
        ));
        // An available state equal to D_Q still answers the target.
        let full = IncompleteCert {
            available: q.body.iter().map(freeze_atom).collect(),
            target: vec![Cst::Frozen(n)],
        };
        assert_eq!(
            check_incomplete(&q, &weak, &full),
            Err(CertError::TargetStillAnswered)
        );
        // Facts outside D_Q are rejected.
        let alien = IncompleteCert {
            available: vec![Fact::new(
                v.pred("pupil", 3),
                vec![v.cst("x"), v.cst("y"), v.cst("z")],
            )],
            target: vec![Cst::Frozen(n)],
        };
        assert!(matches!(
            check_incomplete(&q, &weak, &alien),
            Err(CertError::AvailableNotInIdeal(_))
        ));
    }

    #[test]
    fn repair_certs_enforce_minimality() {
        let mut v = Vocabulary::new();
        let (q, stmts) = setup(&mut v);
        let weak = vec![stmts[1].clone()]; // incomplete: school not guaranteed
        let n = v.var("N");
        // Repair: add Compl(school-atom; true). Complete witness uses the
        // added statement (index 1 in weak ++ additions) for atom 1.
        let theta = identity_theta(&q);
        let t = v.var("T");
        let complete = CompleteCert {
            theta: theta.clone(),
            derivations: vec![
                FactDerivation {
                    fact: freeze_atom(&q.body[0]),
                    statement: 0,
                    binding: {
                        let mut b = identity_theta(&q);
                        b.push((t, v.cst("primary")));
                        b
                    },
                },
                FactDerivation {
                    fact: freeze_atom(&q.body[1]),
                    statement: 1,
                    binding: identity_theta(&q),
                },
            ],
        };
        let repair = RepairCert {
            additions: vec![q.body[1].clone()],
            complete,
            minimality: vec![IncompleteCert {
                available: vec![freeze_atom(&q.body[0])],
                target: vec![Cst::Frozen(n)],
            }],
        };
        assert_eq!(check_repair(&q, &weak, &repair), Ok(()));
        // A non-minimal repair (redundant extra addition) is rejected:
        // dropping the redundant element leaves the set complete, so its
        // minimality witness cannot validate.
        let mut padded = repair.clone();
        padded.additions.push(q.body[0].clone());
        padded.minimality.push(IncompleteCert {
            available: vec![freeze_atom(&q.body[0])],
            target: vec![Cst::Frozen(n)],
        });
        assert!(matches!(
            check_repair(&q, &weak, &padded),
            Err(CertError::RepairNotMinimal(..))
        ));
        // Empty repairs are rejected outright.
        let empty = RepairCert {
            additions: vec![],
            complete: repair.complete.clone(),
            minimality: vec![],
        };
        assert_eq!(check_repair(&q, &weak, &empty), Err(CertError::EmptyRepair));
    }

    #[test]
    fn derivation_trees_check_rule_instances() {
        let mut v = Vocabulary::new();
        let edge = v.pred("edge", 2);
        let path = v.pred("path", 2);
        let (x, y, z) = (v.var("X"), v.var("Y"), v.var("Z"));
        let (a, b, c) = (v.cst("a"), v.cst("b"), v.cst("c"));
        let rules = vec![
            CertRule {
                head: Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                body: vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
            },
            CertRule {
                head: Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
                body: vec![
                    Atom::new(edge, vec![Term::Var(x), Term::Var(y)]),
                    Atom::new(path, vec![Term::Var(y), Term::Var(z)]),
                ],
            },
        ];
        let edb: BTreeSet<Fact> = [Fact::new(edge, vec![a, b]), Fact::new(edge, vec![b, c])]
            .into_iter()
            .collect();
        // path(a,c) via edge(a,b), path(b,c) via edge(b,c).
        let leaf = |f: Fact| DerivationNode {
            fact: f,
            rule: None,
            binding: vec![],
            children: vec![],
        };
        let tree = DerivationNode {
            fact: Fact::new(path, vec![a, c]),
            rule: Some(1),
            binding: vec![(x, a), (y, b), (z, c)],
            children: vec![
                leaf(Fact::new(edge, vec![a, b])),
                DerivationNode {
                    fact: Fact::new(path, vec![b, c]),
                    rule: Some(0),
                    binding: vec![(x, b), (y, c)],
                    children: vec![leaf(Fact::new(edge, vec![b, c]))],
                },
            ],
        };
        assert_eq!(check_derivation(&tree, &rules, &edb), Ok(()));
        // A fabricated leaf is caught.
        let mut forged = tree.clone();
        forged.children[0] = leaf(Fact::new(edge, vec![a, c]));
        assert!(matches!(
            check_derivation(&forged, &rules, &edb),
            Err(CertError::ChildFactMismatch(0))
        ));
        // A head that doesn't follow from the binding is caught.
        let mut forged = tree.clone();
        forged.fact = Fact::new(path, vec![a, b]);
        assert_eq!(
            check_derivation(&forged, &rules, &edb),
            Err(CertError::RuleHeadMismatch)
        );
    }
}
