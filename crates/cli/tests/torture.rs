//! Crash-torture tests of `magik serve --data-dir`: the server is
//! SIGKILLed at pseudorandom points while mutations are in flight, then
//! restarted, and the recovered session must agree exactly with an
//! in-process oracle engine that replayed the acknowledged ops (the one
//! op whose ack the client never read is allowed to be either durable or
//! lost — but nothing in between, and nothing else may change).
//!
//! Corruption fixtures (garbage or truncated checkpoints, torn WAL
//! tails) additionally pin down that `magik recover` fails *cleanly* —
//! a diagnostic and a nonzero exit, never a panic.
//!
//! `MAGIK_TORTURE_ROUNDS` scales the kill/restart rounds (default 3).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use magik::{DurabilityOptions, Engine, FsyncPolicy};

fn data_dir(name: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "magik-torture-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A deterministic splitmix-style generator: the torture schedule must
/// reproduce from the seed, so `std::random`-style entropy is out.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    /// A random mutation over a 3-predicate, 3-constant universe —
    /// small enough that duplicates and retractions of live facts occur.
    fn op(&mut self) -> String {
        let p = self.next() % 3;
        let a = 1 + self.next() % 3;
        let b = 1 + self.next() % 3;
        match self.next() % 8 {
            0 => format!("compl p{p}(X, Y) ; true."),
            1 => format!("compl p{p}(X, Y) ; p{}(Y, Z).", (p + 1) % 3),
            2..=5 => format!("assert p{p}(c{a}, c{b})."),
            _ => format!("retract p{p}(c{a}, c{b})."),
        }
    }
}

/// Queries probing both the recovered facts and the recovered TCS.
const PROBES: [&str; 3] = [
    "q(X, Y) :- p0(X, Y).",
    "q(X) :- p1(X, Y), p2(Y, Z).",
    "q(X, Z) :- p2(X, Y), p0(Y, Z).",
];

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Spawns `magik serve` over `dir` and waits for its listening
    /// address; small segments force WAL rotation mid-run.
    fn spawn(dir: &Path) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_magik"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--threads",
                "1",
                "--data-dir",
            ])
            .arg(dir)
            .args([
                "--fsync",
                "always",
                "--checkpoint-every",
                "8",
                "--segment-bytes",
                "512",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("serve spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve prints its address before exiting")
                .expect("serve stdout is text");
            if let Some(rest) = line.split("serving on ").nth(1) {
                break rest.split_whitespace().next().expect("address").to_string();
            }
        };
        ServerProc { child, addr }
    }

    /// SIGKILL — no shutdown hook runs, exactly like a crash.
    fn kill(&mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("reap");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn req(&mut self, line: &str) -> String {
        self.send(line);
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    }

    /// Fire an op without waiting for its ack — the in-flight victim.
    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
    }
}

fn recover(dir: &Path, verify: bool) -> Output {
    let mut args = vec!["recover", "--data-dir"];
    let dir = dir.to_str().expect("utf-8 dir");
    args.push(dir);
    if verify {
        args.push("--verify");
    }
    Command::new(env!("CARGO_BIN_EXE_magik"))
        .args(&args)
        .output()
        .expect("recover runs")
}

/// The epochs the WAL under `dir` recovers to, per `magik recover`.
fn recovered_epochs(dir: &Path) -> (u64, u64) {
    let out = recover(dir, false);
    assert!(out.status.success(), "recover failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let tail = stdout
        .split("reaching epochs (tcs=")
        .nth(1)
        .unwrap_or_else(|| panic!("unexpected recover output: {stdout}"));
    let te = tail.split(',').next().unwrap().parse().unwrap();
    let de = tail
        .split("data=")
        .nth(1)
        .unwrap()
        .split(')')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    (te, de)
}

fn oracle_epochs_line(oracle: &Engine) -> String {
    let (te, de) = oracle.epochs();
    format!("ok tcs={te} data={de}")
}

/// The headline test: kill `magik serve` mid-write at pseudorandom
/// points, restart it over the same directory, and require the recovered
/// session to be byte-for-byte the acknowledged history (modulo the one
/// unacked in-flight op, which may land or vanish atomically).
#[test]
fn killed_server_recovers_exactly_the_acknowledged_ops() {
    let rounds: u64 = std::env::var("MAGIK_TORTURE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let dir = data_dir("kill");
    let mut rng = Lcg(0x5eed_cafe);
    let oracle = Engine::new();
    for round in 0..rounds {
        let mut server = ServerProc::spawn(&dir);
        let mut conn = Conn::connect(&server.addr);
        // The restarted server must sit exactly where the oracle sits.
        assert_eq!(
            conn.req("epochs"),
            oracle_epochs_line(&oracle),
            "round {round}"
        );
        for probe in PROBES {
            let ev = format!("eval {probe}");
            assert_eq!(conn.req(&ev), oracle.handle(&ev), "round {round}: {ev}");
            let ck = format!("check {probe}");
            assert_eq!(conn.req(&ck), oracle.handle(&ck), "round {round}: {ck}");
        }
        // Drive acknowledged mutations; the server must answer exactly
        // like the in-memory oracle at every step.
        for _ in 0..(8 + rng.next() % 12) {
            let op = rng.op();
            assert_eq!(conn.req(&op), oracle.handle(&op), "round {round}: {op}");
        }
        // Fire one op, don't wait for the ack, and SIGKILL after a
        // pseudorandom beat — the op is in flight when the process dies.
        let inflight = rng.op();
        conn.send(&inflight);
        std::thread::sleep(Duration::from_micros(rng.next() % 4000));
        server.kill();
        // The directory must verify cleanly whatever the kill point hit.
        let out = recover(&dir, true);
        assert!(
            out.status.success(),
            "round {round}: recover --verify failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The in-flight op either reached the log (atomically) or it
        // didn't; fold the oracle forward only in the first case.
        if recovered_epochs(&dir) != oracle.epochs() {
            oracle.handle(&inflight);
            assert_eq!(
                recovered_epochs(&dir),
                oracle.epochs(),
                "round {round}: recovered state is neither acked nor acked+inflight"
            );
        }
    }
    // One final restart closes the loop on the last kill.
    let mut server = ServerProc::spawn(&dir);
    let mut conn = Conn::connect(&server.addr);
    assert_eq!(conn.req("epochs"), oracle_epochs_line(&oracle));
    for probe in PROBES {
        let ev = format!("eval {probe}");
        assert_eq!(conn.req(&ev), oracle.handle(&ev), "{ev}");
    }
    server.kill();
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds a durable directory with enough history for checkpoints.
fn seeded_dir(name: &str, checkpoint_every: u64) -> PathBuf {
    let dir = data_dir(name);
    let opts = DurabilityOptions {
        fsync: FsyncPolicy::Always,
        segment_bytes: 256,
        checkpoint_every,
    };
    let (engine, _) =
        Engine::open_durable(&dir, opts, magik::Executor::Sequential).expect("virgin dir opens");
    engine.handle("compl p0(X, Y) ; true.");
    for i in 0..6 {
        engine.handle(&format!("assert p0(c{i}, c{}).", i + 1));
    }
    engine.shutdown_durability().expect("clean shutdown");
    dir
}

fn snap_files(dir: &Path) -> Vec<PathBuf> {
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("data dir listable")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    snaps.sort();
    snaps
}

#[test]
fn recover_rejects_garbage_checkpoints_cleanly() {
    let dir = seeded_dir("garbage-ckpt", 2);
    let snaps = snap_files(&dir);
    assert!(!snaps.is_empty(), "seed run produced no checkpoints");
    for snap in &snaps {
        std::fs::write(snap, b"this is not a checkpoint").expect("overwrite");
    }
    let out = recover(&dir, false);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("corrupt"),
        "diagnostic names the cause: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "no panic: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_rejects_truncated_checkpoints_cleanly() {
    let dir = seeded_dir("trunc-ckpt", 2);
    for snap in snap_files(&dir) {
        let bytes = std::fs::read(&snap).expect("read snap");
        std::fs::write(&snap, &bytes[..bytes.len().min(10)]).expect("truncate");
    }
    let out = recover(&dir, true);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("corrupt"),
        "diagnostic names the cause: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "no panic: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_discards_a_torn_tail_and_still_verifies() {
    // No checkpoints: the whole history lives in the WAL tail.
    let dir = seeded_dir("torn", 0);
    let mut logs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("data dir listable")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    logs.sort();
    let newest = logs.last().expect("wal segments exist");
    let bytes = std::fs::read(newest).expect("read wal");
    std::fs::write(newest, &bytes[..bytes.len() - 3]).expect("tear tail");
    let out = recover(&dir, true);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("torn tail:"), "{stdout}");
    assert!(stdout.contains("byte(s) discarded"), "{stdout}");
    assert!(stdout.contains("verify: OK"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_requires_a_data_dir() {
    let out = Command::new(env!("CARGO_BIN_EXE_magik"))
        .args(["recover", "--verify"])
        .output()
        .expect("recover runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data-dir"));
}
