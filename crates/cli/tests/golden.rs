//! Golden-output tests: every CLI command's output on the checked-in
//! documents is compared byte-for-byte against `testdata/golden/`.
//!
//! To regenerate after an intentional output change:
//!
//! ```sh
//! for cmd in check generalize eval bounds why explain simulate; do
//!   cargo run -p magik-cli -- $cmd testdata/school.magik > testdata/golden/school_$cmd.txt
//! done
//! cargo run -p magik-cli -- specialize testdata/school.magik -k 1 \
//!   > testdata/golden/school_specialize_k1.txt
//! cargo run -p magik-cli -- check testdata/classes.magik > testdata/golden/classes_check.txt
//! cargo run -p magik-cli -- explain testdata/classes.magik > testdata/golden/classes_explain.txt
//! for f in school joins; do
//!   cargo run -p magik-cli -- explain-plan testdata/$f.magik \
//!     > testdata/golden/${f}_explain_plan.txt
//!   cargo run -p magik-cli -- explain-plan testdata/$f.magik --format json \
//!     > testdata/golden/${f}_explain_plan.json
//! done
//! for f in school repair; do
//!   cargo run -p magik-cli -- check testdata/$f.magik --why \
//!     > testdata/golden/${f}_check_why.txt
//!   cargo run -p magik-cli -- check testdata/$f.magik --why --format json \
//!     > testdata/golden/${f}_check_why.json
//! done
//! ```

use std::process::Command;

fn testdata(rel: &str) -> String {
    format!("{}/../../testdata/{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn assert_golden(args: &[&str], golden: &str) {
    let out = Command::new(env!("CARGO_BIN_EXE_magik"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "command {args:?} failed");
    let actual = String::from_utf8_lossy(&out.stdout);
    let expected = std::fs::read_to_string(testdata(&format!("golden/{golden}")))
        .unwrap_or_else(|e| panic!("missing golden file {golden}: {e}"));
    assert_eq!(
        actual, expected,
        "output of {args:?} diverged from golden/{golden}"
    );
}

#[test]
fn school_outputs_match_goldens() {
    let file = testdata("school.magik");
    for cmd in [
        "check",
        "generalize",
        "eval",
        "bounds",
        "why",
        "explain",
        "simulate",
    ] {
        assert_golden(&[cmd, &file], &format!("school_{cmd}.txt"));
    }
    assert_golden(
        &["specialize", &file, "-k", "1"],
        "school_specialize_k1.txt",
    );
}

#[test]
fn classes_outputs_match_goldens() {
    let file = testdata("classes.magik");
    assert_golden(&["check", &file], "classes_check.txt");
    assert_golden(&["explain", &file], "classes_explain.txt");
}

/// `check --why` output (text and JSON) is golden-pinned on the school
/// document (one complete query with a witness, one incomplete with a
/// single-statement repair) and the repair document, whose query needs a
/// two-statement repair — the golden records both the counterexample and
/// the minimality footnote.
#[test]
fn check_why_outputs_match_goldens() {
    for fixture in ["school", "repair"] {
        let file = testdata(&format!("{fixture}.magik"));
        assert_golden(
            &["check", &file, "--why"],
            &format!("{fixture}_check_why.txt"),
        );
        assert_golden(
            &["check", &file, "--why", "--format", "json"],
            &format!("{fixture}_check_why.json"),
        );
    }
}

/// Every certificate the CLI renders must have passed magik-cert —
/// guard against the goldens silently recording an invalid one.
#[test]
fn check_why_goldens_record_valid_certificates() {
    for golden in ["school_check_why", "repair_check_why"] {
        let text = std::fs::read_to_string(testdata(&format!("golden/{golden}.txt"))).unwrap();
        assert!(!text.contains("INVALID"), "{golden}.txt: {text}");
        let json = std::fs::read_to_string(testdata(&format!("golden/{golden}.json"))).unwrap();
        assert!(json.contains(r#""certificate_valid":true"#), "{json}");
        assert!(!json.contains(r#""certificate_valid":false"#), "{json}");
    }
}

/// `explain-plan` output (text and JSON) is golden-pinned on two
/// fixtures: the school document (nested-loop joins throughout) and the
/// joins document, sized so the cost model picks a hash join for its
/// two-column join — the golden asserts the operator choice and the
/// batch counters, not just the plan shape.
#[test]
fn explain_plan_outputs_match_goldens() {
    for fixture in ["school", "joins"] {
        let file = testdata(&format!("{fixture}.magik"));
        assert_golden(
            &["explain-plan", &file],
            &format!("{fixture}_explain_plan.txt"),
        );
        assert_golden(
            &["explain-plan", &file, "--format", "json"],
            &format!("{fixture}_explain_plan.json"),
        );
    }
}

/// The joins golden really does exercise the hash path — guard against
/// the fixture silently degrading to nested-loop after a cost-model
/// retune (the golden would then still "match", just prove nothing).
#[test]
fn joins_golden_records_a_hash_join() {
    let text = std::fs::read_to_string(testdata("golden/joins_explain_plan.txt")).unwrap();
    assert!(text.contains("join=hash_join"), "{text}");
    let json = std::fs::read_to_string(testdata("golden/joins_explain_plan.json")).unwrap();
    assert!(json.contains(r#""join":"hash_join""#), "{json}");
}
