//! Multi-process replication e2e: a real `magik serve` primary and real
//! `magik replicate` replica processes talking TCP, exactly as deployed.
//!
//! The scenario the test pins down end to end:
//!
//! 1. two replicas follow a durable primary and converge,
//! 2. all three nodes answer queries byte-identically,
//! 3. one replica is SIGKILLed (no shutdown hook, like a crash),
//! 4. the primary keeps writing until checkpointing prunes the dead
//!    replica's log position away,
//! 5. the replica restarts over its stale data dir, bootstraps from the
//!    primary's shipped checkpoint, and converges again,
//! 6. verdicts are byte-identical across all three nodes once more.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn data_dir(name: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "magik-repl-e2e-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let start = Instant::now();
    while !pred() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A `magik` server process (primary or replica) plus the address it
/// bound, parsed from its startup banner.
struct Proc {
    child: Child,
    addr: String,
    /// Banner lines printed before the serving line — the restart
    /// scenario asserts the checkpoint-bootstrap line appears here.
    banner: Vec<String>,
}

impl Proc {
    /// Spawns a durable primary with aggressive checkpointing and tiny
    /// segments, so the log's front is pruned quickly mid-test.
    fn primary(dir: &Path) -> Proc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_magik"));
        cmd.args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--threads",
            "1",
        ])
        .arg("--data-dir")
        .arg(dir)
        .args([
            "--fsync",
            "always",
            "--checkpoint-every",
            "8",
            "--segment-bytes",
            "512",
        ]);
        Proc::spawn(cmd, "serving on ")
    }

    /// Spawns a read-only replica of `primary` over `dir`.
    fn replica(dir: &Path, primary: &str) -> Proc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_magik"));
        cmd.args(["replicate", "--from", primary])
            .arg("--data-dir")
            .arg(dir)
            .args(["--addr", "127.0.0.1:0", "--workers", "2", "--threads", "1"]);
        Proc::spawn(cmd, "serving read-only on ")
    }

    fn spawn(mut cmd: Command, marker: &str) -> Proc {
        let mut child = cmd
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("magik spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let mut banner = Vec::new();
        let addr = loop {
            let line = lines
                .next()
                .expect("magik prints its address before exiting")
                .expect("magik stdout is text");
            if let Some(rest) = line.split(marker).nth(1) {
                break rest.split_whitespace().next().expect("address").to_string();
            }
            banner.push(line);
        };
        Proc {
            child,
            addr,
            banner,
        }
    }

    /// SIGKILL — no shutdown hook runs, exactly like a crash.
    fn kill(&mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("reap");
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn req(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    }
}

/// Whether the primary would answer a `replicate` handshake at history
/// position `(te, de)` with a checkpoint instead of a log stream — i.e.
/// checkpointing has pruned that position out of the retained log. Uses
/// the public wire protocol only; the probe connection is then dropped.
fn position_pruned(primary: &str, te: u64, de: u64) -> bool {
    let mut probe = Conn::connect(primary);
    probe
        .req(&format!("replicate {te} {de}"))
        .starts_with("ok replicate snapshot")
}

/// The queries every node must answer byte-identically.
const PROBES: [&str; 4] = [
    "check q(S) :- school(S, primary, bz).",
    "check q(N) :- pupil(N, C, S), school(S, primary, bz).",
    "eval q(S) :- school(S, primary, bz).",
    "eval q(N) :- pupil(N, c1, hofer).",
];

fn assert_nodes_agree(primary: &mut Conn, replicas: &mut [(&str, &mut Conn)]) {
    for q in PROBES {
        let expect = primary.req(q);
        for (name, conn) in replicas.iter_mut() {
            assert_eq!(conn.req(q), expect, "{name} diverges from primary on `{q}`");
        }
    }
}

/// Polls a replica's `replication` status until it reports the expected
/// local position with zero lag while connected.
fn await_converged(conn: &mut Conn, name: &str, te: u64, de: u64) {
    let tail = format!(" tcs={te} data={de} lag=0");
    wait_until(
        &format!("{name} convergence to ({te}, {de})"),
        Duration::from_secs(30),
        || {
            let status = conn.req("replication");
            status.starts_with("ok role=replica connected=true") && status.ends_with(&tail)
        },
    );
}

#[test]
fn killed_replica_rejoins_from_a_checkpoint_and_reconverges() {
    let primary_dir = data_dir("primary");
    let replica1_dir = data_dir("replica1");
    let replica2_dir = data_dir("replica2");

    let primary = Proc::primary(&primary_dir);
    let mut p = Conn::connect(&primary.addr);
    assert_eq!(p.req("compl school(S, T, D) ; true."), "ok epoch=1");
    for i in 0..40 {
        assert_eq!(
            p.req(&format!("assert school(s{i}, primary, bz).")),
            "ok inserted"
        );
    }

    // Two replica processes join and converge on (1, 40).
    let mut replica1 = Proc::replica(&replica1_dir, &primary.addr);
    let replica2 = Proc::replica(&replica2_dir, &primary.addr);
    let mut r1 = Conn::connect(&replica1.addr);
    let mut r2 = Conn::connect(&replica2.addr);
    await_converged(&mut r1, "replica1", 1, 40);
    await_converged(&mut r2, "replica2", 1, 40);
    assert_nodes_agree(&mut p, &mut [("replica1", &mut r1), ("replica2", &mut r2)]);

    // Replicas refuse writes on their own wire.
    let refused = r1.req("assert school(rogue, primary, bz).");
    assert!(
        refused.starts_with("err readonly"),
        "replica1 accepted a write: {refused}"
    );

    // Crash replica1 (SIGKILL: no shutdown hook, its data dir keeps
    // whatever was durable), then write until checkpointing has pruned
    // its last position (1, 40) out of the primary's retained log.
    drop(r1);
    replica1.kill();
    for i in 0..300 {
        assert_eq!(
            p.req(&format!("assert pupil(p{i}, c1, hofer).")),
            "ok inserted"
        );
    }
    wait_until(
        "the primary to prune position (1, 40)",
        Duration::from_secs(30),
        || position_pruned(&primary.addr, 1, 40),
    );

    // Restart over the stale dir: the replica must bootstrap from the
    // primary's shipped checkpoint (the log alone can no longer serve
    // it) and then stream the tail to full convergence.
    let replica1 = Proc::replica(&replica1_dir, &primary.addr);
    assert!(
        replica1
            .banner
            .iter()
            .any(|l| l.contains("installed checkpoint")),
        "rejoining replica did not bootstrap from a checkpoint; banner: {:?}",
        replica1.banner
    );
    let mut r1 = Conn::connect(&replica1.addr);
    await_converged(&mut r1, "replica1 (rejoined)", 1, 340);

    // The survivor converges too, and all three nodes agree byte for
    // byte — including on the facts written while replica1 was down.
    await_converged(&mut r2, "replica2", 1, 340);
    assert_nodes_agree(&mut p, &mut [("replica1", &mut r1), ("replica2", &mut r2)]);

    for dir in [primary_dir, replica1_dir, replica2_dir] {
        std::fs::remove_dir_all(dir).ok();
    }
}
