//! End-to-end tests of `magik analyze`: multi-input aggregation, --fix,
//! suppression, baselines, SARIF, --explain, and the deny gate.

use std::process::{Command, Output};

fn magik(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_magik"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn testdata(rel: &str) -> String {
    format!("{}/../../testdata/{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("magik-analyze-cli").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn multiple_files_aggregate_to_the_worst_exit_code() {
    // school.magik is clean (exit 0); m006 has an error (exit 3).
    let out = magik(&[
        "analyze",
        &testdata("school.magik"),
        &testdata("analyze/m006.magik"),
    ]);
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[M006]"), "{stdout}");
    // Order independence of aggregation: clean last still exits 3.
    let out = magik(&[
        "analyze",
        &testdata("analyze/m006.magik"),
        &testdata("school.magik"),
    ]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn directory_input_recurses_and_aggregates() {
    // testdata/analyze holds per-code fixtures, several with errors.
    let out = magik(&["analyze", &testdata("analyze")]);
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Files are visited in sorted order, so both ends of the suite show.
    assert!(stdout.contains("m001.magik"), "{stdout}");
    assert!(stdout.contains("m017.magik"), "{stdout}");
}

#[test]
fn trap_spec_is_still_denied() {
    let out = magik(&["analyze", &testdata("bad/trap.magik")]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn fix_is_idempotent_on_the_fixable_fixture() {
    let dir = scratch_dir("fix-idempotent");
    let file = dir.join("fixable.magik");
    std::fs::copy(testdata("fix/fixable.magik"), &file).unwrap();
    let path = file.to_str().unwrap();

    let first = magik(&["analyze", path, "--fix"]);
    let err = String::from_utf8_lossy(&first.stderr);
    assert!(err.contains("applied 2 fix(es)"), "{err}");
    let fixed = std::fs::read_to_string(&file).unwrap();

    // Second pass: no edits, file byte-identical.
    let second = magik(&["analyze", path, "--fix"]);
    let err = String::from_utf8_lossy(&second.stderr);
    assert!(!err.contains("applied"), "second --fix not a no-op: {err}");
    assert_eq!(std::fs::read_to_string(&file).unwrap(), fixed);
    // The fixed file is clean of machine-applicable findings: the
    // duplicate (M001) and the unsafe head (M006) are gone.
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(!stdout.contains("[M001]"), "{stdout}");
    assert!(!stdout.contains("[M006]"), "{stdout}");
    assert_eq!(second.status.code(), Some(0));
}

#[test]
fn inline_allow_directives_suppress_diagnostics() {
    let dir = scratch_dir("suppress");
    let file = dir.join("allowed.magik");
    std::fs::write(
        &file,
        "compl p(X) ; true.\n\
         % magik: allow(M001)\n\
         compl p(Y) ; true.\n\
         query q(X) :- p(X).\n",
    )
    .unwrap();
    let out = magik(&["analyze", file.to_str().unwrap(), "--deny", "warnings"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("[M001]"), "{stdout}");
    assert!(stdout.contains("1 suppressed"), "{stdout}");
    assert_eq!(out.status.code(), Some(0));

    // Without the directive the same document is denied.
    let bare = dir.join("bare.magik");
    std::fs::write(
        &bare,
        "compl p(X) ; true.\ncompl p(Y) ; true.\nquery q(X) :- p(X).\n",
    )
    .unwrap();
    let out = magik(&["analyze", bare.to_str().unwrap(), "--deny", "warnings"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn baseline_round_trip_accepts_preexisting_findings() {
    let dir = scratch_dir("baseline");
    let file = dir.join("legacy.magik");
    std::fs::write(
        &file,
        "compl p(X) ; true.\ncompl p(Y) ; true.\nquery q(X) :- p(X).\n",
    )
    .unwrap();
    let path = file.to_str().unwrap();
    let baseline = dir.join("baseline.json");
    let bpath = baseline.to_str().unwrap();

    // Record the current findings...
    let out = magik(&["analyze", path, "--write-baseline", bpath]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("wrote baseline"), "{err}");
    assert!(std::fs::read_to_string(&baseline)
        .unwrap()
        .contains("\"M001\""));

    // ...then the baseline turns the deny gate green.
    let out = magik(&["analyze", path, "--deny", "warnings", "--baseline", bpath]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("[M001]"), "{stdout}");
    assert!(stdout.contains("baselined"), "{stdout}");
    assert_eq!(out.status.code(), Some(0));

    // A *new* finding in the same file is still reported and denied.
    std::fs::write(
        &file,
        "compl p(X) ; true.\ncompl p(Y) ; true.\ncompl p(Z) ; true.\nquery q(X) :- p(X).\n",
    )
    .unwrap();
    let out = magik(&["analyze", path, "--deny", "warnings", "--baseline", bpath]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[M001]"), "{stdout}");
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn sarif_output_is_one_run_over_all_inputs() {
    let out = magik(&[
        "analyze",
        &testdata("analyze/m001.magik"),
        &testdata("analyze/m006.magik"),
        "--format",
        "sarif",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"version\":\"2.1.0\""), "{stdout}");
    assert_eq!(stdout.matches("\"runs\":[").count(), 1, "{stdout}");
    // Both files land in the single run, with their rules and regions.
    assert!(stdout.contains("m001.magik"), "{stdout}");
    assert!(stdout.contains("m006.magik"), "{stdout}");
    assert!(stdout.contains("\"ruleId\":\"M001\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\":\"M006\""), "{stdout}");
    assert!(stdout.contains("\"startLine\""), "{stdout}");
    // The deny gate still applies to SARIF runs.
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn explain_prints_the_catalogue_entry() {
    let out = magik(&["analyze", "--explain", "M001"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("### M001"), "{stdout}");
    assert!(stdout.contains("duplicate"), "{stdout}");
    // Live-session codes are catalogued too.
    let out = magik(&["analyze", "--explain", "M022"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("### M022"), "{stdout}");

    let out = magik(&["analyze", "--explain", "M999"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn fix_refuses_stdin() {
    let out = magik(&["analyze", "-", "--fix"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--fix requires file paths"), "{err}");
}
