//! Golden-output tests for `magik analyze`: one fixture per diagnostic
//! code, compared byte-for-byte (message, caret excerpt, span columns)
//! against `testdata/golden/analyze/`.
//!
//! The subprocess runs from the repository root with *relative* fixture
//! paths so the `--> path:line:col` lines are machine-independent. To
//! regenerate after an intentional output change:
//!
//! ```sh
//! for f in testdata/analyze/m*.magik; do
//!   cargo run -p magik-cli -- analyze "$f" \
//!     > "testdata/golden/analyze/$(basename "$f" .magik).txt"
//! done
//! ```
//!
//! M012 (arity conflict) has no fixture: the parser rejects mixed
//! arities before analysis can see them, so the code is reachable only
//! for programmatically built documents — its exact rendering is pinned
//! by a unit test in `magik-analyze`.

use std::process::Command;

fn repo_root() -> String {
    format!("{}/../..", env!("CARGO_MANIFEST_DIR"))
}

/// Every code with a CLI-reachable fixture (M001–M017 minus M012).
const CODES: [&str; 16] = [
    "m001", "m002", "m003", "m004", "m005", "m006", "m007", "m008", "m009", "m010", "m011", "m013",
    "m014", "m015", "m016", "m017",
];

#[test]
fn analyzer_outputs_match_goldens() {
    for name in CODES {
        let fixture = format!("testdata/analyze/{name}.magik");
        let out = Command::new(env!("CARGO_BIN_EXE_magik"))
            .current_dir(repo_root())
            .args(["analyze", &fixture])
            .output()
            .expect("binary runs");
        // Fixtures with error-severity diagnostics exit 3 under the
        // default deny level; everything else exits 0.
        assert!(
            matches!(out.status.code(), Some(0 | 3)),
            "unexpected exit for {fixture}: {:?}",
            out.status
        );
        let actual = String::from_utf8_lossy(&out.stdout);
        let golden_path = format!("{}/testdata/golden/analyze/{name}.txt", repo_root());
        let expected = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
        assert_eq!(
            actual, expected,
            "analyze output for {fixture} diverged from its golden"
        );
        // The golden itself must pin the code, its caret excerpt, and a
        // resolved span (except M012, which is spanless and absent here).
        let code = name.to_uppercase();
        assert!(expected.contains(&format!("[{code}]")), "{golden_path}");
        assert!(expected.contains('^'), "{golden_path} has no caret line");
        assert!(
            expected.contains(&format!("testdata/analyze/{name}.magik:")),
            "{golden_path} has no span location"
        );
    }
}
