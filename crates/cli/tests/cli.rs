//! End-to-end tests of the `magik` binary.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn magik(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_magik"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn school_file() -> String {
    format!("{}/../../testdata/school.magik", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_reports_verdicts() {
    let out = magik(&["check", &school_file()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("COMPLETE: q_ppb(N)"));
    assert!(stdout.contains("INCOMPLETE: q_pbl(N)"));
}

#[test]
fn generalize_prints_the_mcg() {
    let out = magik(&["generalize", &school_file()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("already complete: q_ppb(N)"));
    assert!(stdout.contains("MCG: q_pbl(N) :- pupil(N, C, S), school(S, primary, merano)"));
}

#[test]
fn specialize_prints_mcss_and_stats() {
    let out = magik(&["specialize", &school_file(), "-k", "0"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("learns(N, english)"));
    assert!(stdout.contains("unification calls"));
    // The naive engine agrees.
    let naive = magik(&["specialize", &school_file(), "--naive"]);
    let naive_out = String::from_utf8_lossy(&naive.stdout);
    assert!(naive_out.contains("learns(N, english)"));
}

#[test]
fn eval_counts_answers() {
    let out = magik(&["eval", &school_file()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 answers for q_ppb(N)"));
    assert!(stdout.contains("1 answers for q_pbl(N)"));
    assert!(stdout.contains("(john)"));
}

#[test]
fn explain_reports_acyclicity_and_bounds() {
    let out = magik(&["explain", &school_file()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 statement(s)"));
    assert!(stdout.contains("acyclic"));
    assert!(stdout.contains("signature: {school, pupil, learns}"));
    assert!(stdout.contains("Theorem 18"));
}

#[test]
fn bounds_reports_certainty_and_publishable_counts() {
    let out = magik(&["bounds", &school_file()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // q_ppb is complete: exact count.
    assert!(stdout.contains("ideal answer count: exactly 2"));
    // q_pbl: john is certain (learns english); mary is possible.
    assert!(stdout.contains("certain answers (1)"));
    assert!(stdout.contains("(john)"));
    assert!(stdout.contains("possible further answers (1)"));
    assert!(stdout.contains("(mary)"));
    assert!(stdout.contains("ideal answer count: between 1 and 2"));
    assert!(stdout.contains("learns(N, english)| = 1"));
}

#[test]
fn why_explains_verdicts_with_witnesses() {
    let out = magik(&["why", &school_file()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("guaranteed by [1] compl pupil(N, C, S)"));
    assert!(stdout.contains("condition matched on school(S, primary, merano)"));
    assert!(stdout.contains("- learns(N, L)  not guaranteed by any statement"));
    assert!(stdout.contains("counterexample"));
    assert!(stdout.contains("lost answer"));
}

#[test]
fn check_honors_finite_domain_constraints() {
    let file = format!(
        "{}/../../testdata/classes.magik",
        env!("CARGO_MANIFEST_DIR")
    );
    let out = magik(&["check", &file]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("COMPLETE: q(N)"),
        "the domain constraint makes q complete: {stdout}"
    );
    let out = magik(&["explain", &file]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("finite-domain constraint"));
    assert!(stdout.contains("domain class[3] in {halfDay, fullDay}"));
}

#[test]
fn check_honors_key_constraints() {
    let file = format!("{}/../../testdata/keyed.magik", env!("CARGO_MANIFEST_DIR"));
    let out = magik(&["check", &file]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("COMPLETE: q(N)"),
        "the key chase makes q complete: {stdout}"
    );
    let out = magik(&["explain", &file]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("key pupil[0]"));
}

#[test]
fn simulate_reports_at_risk_answers() {
    let out = magik(&["simulate", &school_file()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // john learns english -> guaranteed; mary has no learns record, so
    // the facts-as-ideal scenario shows nothing at risk for q_ppb...
    assert!(stdout.contains("q_ppb(N)"));
    assert!(stdout.contains("2 ideal answer(s), 2 guaranteed, 0 at risk"));
    // ... while q_pbl keeps john (english learner at a primary school).
    assert!(stdout.contains("1 ideal answer(s), 1 guaranteed, 0 at risk"));
}

#[test]
fn explain_reports_lints_for_flawed_sets() {
    let dir = std::env::temp_dir().join("magik-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("lints.magik");
    std::fs::write(
        &file,
        "compl p(X, Y) ; true.
         compl p(X, b) ; q(X).
         compl conn(X, Y) ; conn(Y, Z).",
    )
    .unwrap();
    let out = magik(&["explain", file.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lint(s):"));
    assert!(stdout.contains("is subsumed by"));
    assert!(stdout.contains("conditions on its own relation"));
    assert!(stdout.contains("no statement guarantees"));
}

#[test]
fn repl_runs_a_seeded_session() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_magik"))
        .args(["repl", &school_file()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b"check q(N) :- pupil(N, C, S), school(S, primary, merano).\n\
              mcs q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).\n\
              quit\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("loaded 2 queries, 3 statements, 5 facts"));
    assert!(stdout.contains("COMPLETE"));
    assert!(stdout.contains("learns(N, english)"));
}

#[test]
fn explain_plan_prints_ops_and_counters() {
    let out = magik(&["explain-plan", &school_file()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The planner starts both queries from the doubly-constant school
    // probe, then joins the rest.
    assert!(stdout.contains("query q_ppb(N)"), "{stdout}");
    assert!(
        stdout.contains("school(S, primary, merano)  probe col 1 = primary"),
        "{stdout}"
    );
    assert!(stdout.contains("entered="), "{stdout}");
    assert!(stdout.contains("totals: probes="), "{stdout}");
    // rows in totals equal the eval answer counts (2 and 1).
    assert!(stdout.contains("rows=2"), "{stdout}");
    assert!(stdout.contains("rows=1"), "{stdout}");
}

#[test]
fn explain_plan_emits_json_and_survives_unsafe_queries() {
    let out = magik(&["explain-plan", &school_file(), "--format", "json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_end().starts_with('['), "{stdout}");
    assert!(stdout.contains(r#""access":{"kind":"probe""#), "{stdout}");
    assert!(stdout.contains(r#""totals":{"probes":"#), "{stdout}");

    // An unsafe query is reported, not fatal.
    let dir = std::env::temp_dir().join("magik-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("unsafe.magik");
    std::fs::write(&file, "query q(X, Y) :- p(X). fact p(a).").unwrap();
    let out = magik(&["explain-plan", file.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cannot plan"), "{stdout}");
    let out = magik(&["explain-plan", file.to_str().unwrap(), "--format", "json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(r#""error":"#), "{stdout}");
}

#[test]
fn usage_errors_exit_nonzero() {
    let out = magik(&[]);
    assert_eq!(out.status.code(), Some(1));
    let out = magik(&["frobnicate", &school_file()]);
    assert_eq!(out.status.code(), Some(1));
    let out = magik(&["check"]);
    assert_eq!(out.status.code(), Some(1));
    let out = magik(&["check", "/nonexistent/file.magik"]);
    assert_eq!(out.status.code(), Some(1));
    let out = magik(&["specialize", &school_file(), "-k", "banana"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn parse_errors_exit_with_code_2() {
    let dir = std::env::temp_dir().join("magik-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.magik");
    std::fs::write(&bad, "query q(X) :- p(X). query r() :- p(X, Y).").unwrap();
    let out = magik(&["check", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("arity"));
}
