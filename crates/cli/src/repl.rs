//! An interactive session: build up statements, facts and constraints,
//! and ask completeness questions about ad-hoc queries.

use std::io::{BufRead, Write};

use magik::{
    answers, count_bounds, counterexample, explain_check, is_complete, is_complete_under, k_mcs,
    mcg, mcg_under, parse_document, parse_query, print_document, render_counterexample,
    render_explanation, DisplayWith, Document, KMcsOptions, Query, Vocabulary,
};

const REPL_HELP: &str = "commands:
  compl <atom> ; <cond>.        add a table-completeness statement
  fact <atom>.                  add a ground fact
  domain <pattern> in {..}.     add a finite-domain constraint
  query <q>.                    add a named query to the session
  load <file>                   load a document file into the session
  show                          print the session document
  check <q>.                    is the query complete?
  mcg <q>.                      minimal complete generalization
  mcs [k] <q>.                  k-MCSs (default k = 0)
  why <q>.                      per-atom explanation (+ counterexample)
  eval <q>.                     evaluate over the session facts
  bounds <q>.                   certain count bounds over the facts
  clear                         drop all session state
  help                          this text
  quit                          leave";

/// The interactive session state.
pub struct Repl {
    vocab: Vocabulary,
    doc: Document,
}

impl Repl {
    /// Creates an empty session.
    pub fn new() -> Self {
        Repl {
            vocab: Vocabulary::new(),
            doc: Document::default(),
        }
    }

    /// Loads a document file into the session (the `load` command).
    pub fn load_file(&mut self, path: &str, out: &mut dyn Write) -> std::io::Result<()> {
        self.dispatch(&format!("load {path}"), out).map(|_| ())
    }

    /// Runs the loop until EOF or `quit`, reading from `input` and writing
    /// to `output`.
    pub fn run(&mut self, input: &mut dyn BufRead, output: &mut dyn Write) -> std::io::Result<()> {
        let mut line = String::new();
        loop {
            write!(output, "magik> ")?;
            output.flush()?;
            line.clear();
            if input.read_line(&mut line)? == 0 {
                writeln!(output)?;
                return Ok(());
            }
            let line = line.trim();
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            match self.dispatch(line, output)? {
                Flow::Continue => {}
                Flow::Quit => return Ok(()),
            }
        }
    }

    fn parse_inline_query(&mut self, src: &str) -> Result<Query, String> {
        parse_query(src, &mut self.vocab).map_err(|e| e.to_string())
    }

    fn dispatch(&mut self, line: &str, out: &mut dyn Write) -> std::io::Result<Flow> {
        let (cmd, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match cmd {
            "quit" | "exit" => return Ok(Flow::Quit),
            "help" => writeln!(out, "{REPL_HELP}")?,
            "clear" => {
                self.doc = Document::default();
                writeln!(out, "session cleared")?;
            }
            "show" => write!(out, "{}", print_document(&self.doc, &self.vocab))?,
            "load" => match std::fs::read_to_string(rest) {
                Ok(src) => match parse_document(&src, &mut self.vocab) {
                    Ok(loaded) => {
                        let (nq, nc, nf, nd) = (
                            loaded.queries.len(),
                            loaded.tcs.len(),
                            loaded.facts.len(),
                            loaded.constraints.domains().len(),
                        );
                        self.doc.queries.extend(loaded.queries);
                        for c in loaded.tcs.statements() {
                            self.doc.tcs.push(c.clone());
                        }
                        self.doc.facts.extend_from(&loaded.facts);
                        for d in loaded.constraints.domains() {
                            self.doc.constraints.push(d.clone());
                        }
                        writeln!(
                            out,
                            "loaded {nq} queries, {nc} statements, {nf} facts, {nd} constraints"
                        )?;
                    }
                    Err(e) => writeln!(out, "error: {e}")?,
                },
                Err(e) => writeln!(out, "error: cannot read `{rest}`: {e}")?,
            },
            "compl" | "fact" | "domain" | "query" => match parse_document(line, &mut self.vocab) {
                Ok(item) => {
                    self.doc.queries.extend(item.queries);
                    for c in item.tcs.statements() {
                        self.doc.tcs.push(c.clone());
                    }
                    self.doc.facts.extend_from(&item.facts);
                    for d in item.constraints.domains() {
                        self.doc.constraints.push(d.clone());
                    }
                    writeln!(out, "ok")?;
                }
                Err(e) => writeln!(out, "error: {e}")?,
            },
            "check" => match self.parse_inline_query(rest) {
                Ok(q) => {
                    let complete = if self.doc.constraints.is_empty() {
                        is_complete(&q, &self.doc.tcs)
                    } else {
                        is_complete_under(&q, &self.doc.tcs, &self.doc.constraints)
                    };
                    writeln!(out, "{}", if complete { "COMPLETE" } else { "INCOMPLETE" })?;
                }
                Err(e) => writeln!(out, "error: {e}")?,
            },
            "mcg" => match self.parse_inline_query(rest) {
                Ok(q) => {
                    let m = if self.doc.constraints.is_empty() {
                        mcg(&q, &self.doc.tcs)
                    } else {
                        mcg_under(&q, &self.doc.tcs, &self.doc.constraints)
                    };
                    match m {
                        Some(m) => writeln!(out, "{}", m.display(&self.vocab))?,
                        None => writeln!(out, "no complete generalization")?,
                    }
                }
                Err(e) => writeln!(out, "error: {e}")?,
            },
            "mcs" => {
                // Optional leading k.
                let (k, qsrc) = match rest.split_once(char::is_whitespace) {
                    Some((first, tail)) => match first.parse::<usize>() {
                        Ok(k) => (k, tail.trim()),
                        Err(_) => (0, rest),
                    },
                    None => (0, rest),
                };
                match self.parse_inline_query(qsrc) {
                    Ok(q) => {
                        let outcome =
                            k_mcs(&q, &self.doc.tcs, &mut self.vocab, KMcsOptions::new(k));
                        if outcome.queries.is_empty() {
                            writeln!(
                                out,
                                "no complete specialization within {} atoms",
                                q.size() + k
                            )?;
                        }
                        for m in &outcome.queries {
                            writeln!(out, "{}", m.display(&self.vocab))?;
                        }
                    }
                    Err(e) => writeln!(out, "error: {e}")?,
                }
            }
            "why" => match self.parse_inline_query(rest) {
                Ok(q) => {
                    let e = explain_check(&q, &self.doc.tcs);
                    write!(
                        out,
                        "{}",
                        render_explanation(&q, &self.doc.tcs, &e, &self.vocab)
                    )?;
                    if !e.complete {
                        if let Some(db) = counterexample(&q, &self.doc.tcs) {
                            write!(out, "{}", render_counterexample(&q, &db, &self.vocab))?;
                        }
                    }
                }
                Err(e) => writeln!(out, "error: {e}")?,
            },
            "eval" => match self.parse_inline_query(rest) {
                Ok(q) => match answers(&q, &self.doc.facts) {
                    Ok(ans) => {
                        for t in &ans {
                            writeln!(out, "{}", t.display(&self.vocab))?;
                        }
                        writeln!(out, "{} answer(s)", ans.len())?;
                    }
                    Err(e) => writeln!(out, "error: {e}")?,
                },
                Err(e) => writeln!(out, "error: {e}")?,
            },
            "bounds" => match self.parse_inline_query(rest) {
                Ok(q) => match count_bounds(&q, &self.doc.tcs, &self.doc.facts) {
                    Ok(b) => match b.upper {
                        Some(u) if b.exact => writeln!(out, "ideal count: exactly {u}")?,
                        Some(u) => writeln!(out, "ideal count: between {} and {u}", b.lower)?,
                        None => writeln!(out, "ideal count: at least {}", b.lower)?,
                    },
                    Err(e) => writeln!(out, "error: {e}")?,
                },
                Err(e) => writeln!(out, "error: {e}")?,
            },
            other => writeln!(out, "unknown command `{other}` (try `help`)")?,
        }
        Ok(Flow::Continue)
    }
}

impl Default for Repl {
    fn default() -> Self {
        Repl::new()
    }
}

enum Flow {
    Continue,
    Quit,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_script(script: &str) -> String {
        let mut repl = Repl::new();
        let mut input = std::io::BufReader::new(script.as_bytes());
        let mut output = Vec::new();
        repl.run(&mut input, &mut output).unwrap();
        String::from_utf8(output).unwrap()
    }

    #[test]
    fn session_builds_statements_and_checks() {
        let out = run_script(
            "compl school(S, primary, D) ; true.
             compl pupil(N, C, S) ; school(S, T, merano).
             check q(N) :- pupil(N, C, S), school(S, primary, merano).
             check q(N) :- pupil(N, C, S), school(S, primary, bolzano).
             quit",
        );
        assert!(out.contains("COMPLETE"));
        assert!(out.contains("INCOMPLETE"));
    }

    #[test]
    fn session_mcg_and_mcs() {
        let out = run_script(
            "compl school(S, primary, D) ; true.
             compl pupil(N, C, S) ; school(S, T, merano).
             compl learns(N, english) ; pupil(N, C, S), school(S, primary, D).
             mcg q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).
             mcs q(N) :- pupil(N, C, S), school(S, primary, merano), learns(N, L).
             quit",
        );
        assert!(out.contains("q(N) :- pupil(N, C, S), school(S, primary, merano)\n"));
        assert!(out.contains("learns(N, english)"));
    }

    #[test]
    fn session_eval_and_bounds() {
        let out = run_script(
            "compl school(S, primary, D) ; true.
             fact school(goethe, primary, merano).
             fact school(dante, middle, bolzano).
             eval q(S) :- school(S, T, D).
             bounds q(S) :- school(S, primary, D).
             quit",
        );
        assert!(out.contains("2 answer(s)"));
        assert!(out.contains("ideal count: exactly 1"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = run_script(
            "check q(N) :- p(N.
             frobnicate
             help
             quit",
        );
        assert!(out.contains("error:"));
        assert!(out.contains("unknown command `frobnicate`"));
        assert!(out.contains("commands:"));
    }

    #[test]
    fn show_and_clear() {
        let out = run_script(
            "fact p(a).
             show
             clear
             show
             quit",
        );
        assert!(out.contains("fact p(a)."));
        assert!(out.contains("session cleared"));
    }
}
